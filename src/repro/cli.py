"""Command-line interface: ``repro-mis``.

Subcommands
-----------
``compute``    static MIS of a SNAP edge-list file (OIMIS or DisMIS, either
               engine), printing size + cost meters, optionally the members.
``maintain``   stream an update file (``ins u v`` / ``del u v`` lines)
               through the DOIMIS maintainer, optionally from/to a
               checkpoint, printing the maintenance meters.
``generate``   write a synthetic graph (er / ba / chung_lu / dataset
               stand-in) as an edge list, and optionally a delete-reinsert
               workload for it.
``datasets``   list the 16 paper-dataset stand-ins.
``bench``      run one experiment driver (table2..fig13, chaos) and print
               its table.
``chaos``      sweep seeded fault-injection schedules (worker crashes,
               dropped/duplicated/reordered sync records, stragglers) over
               Fig. 10/11 workloads and assert the convergence oracle:
               bit-identical final set and logical meters.
``serve``      run the durable ingestion service (:mod:`repro.serve`) on a
               seeded bursty trace: WAL + admission control + adaptive
               windowing + retry/quarantine, with ``--check`` auditing
               exactly-once accounting and ``--chaos`` running the
               kill-and-recover bit-identity oracle.  ``--read-mix R``
               interleaves a seeded query stream (fraction R of traffic)
               against the epoch-consistent read path and reports read
               latency percentiles + staleness.
``query``      answer point/batch/neighbourhood/why-not MIS queries
               against a maintainer checkpoint through the epoch snapshot
               read path (deterministic output — no wall numbers).
``rebalance``  script voluntary worker joins/drains at mid-stream barriers
               and assert the elastic-membership oracle: members and
               logical meters bit-identical to the static-membership run,
               every movement cost on the ``rebalance_*`` family.
``bench-perf`` run the seeded perf microbenchmarks, writing (or, with
               ``--check``, diffing against) the committed
               ``BENCH_core.json`` baseline.
``lint``       statically check vertex programs and the runtime layer for
               BSP discipline violations (non-deterministic iteration,
               double-buffer breaches, activation discipline, sync hygiene,
               and the parallel-safety P family: sweep purity, barrier
               ordering, frame hygiene, merge-once); exits non-zero when
               findings remain.
``sanitize``   replay chaos workloads with the superstep race sanitizer
               wrapped around the execution backend; exits non-zero on any
               recorded race or bit-identity drift vs the inline reference.

Examples
--------
::

    repro-mis generate ba --n 1000 --param 4 -o graph.txt --workload 200
    repro-mis compute graph.txt --algorithm dismis --workers 8
    repro-mis maintain graph.txt.updates --graph graph.txt --batch-size 50 --verify
    repro-mis bench table2
    repro-mis lint src/repro --format json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.activation import ActivationStrategy
from repro.core.dismis import run_dismis
from repro.core.maintainer import MISMaintainer
from repro.core.oimis import run_oimis, run_oimis_pregel
from repro.errors import ReproError
from repro.graph import datasets, generators
from repro.graph.io import (
    read_edge_list,
    read_update_stream,
    write_edge_list,
    write_update_stream,
)

_STRATEGIES = {
    "all": ActivationStrategy.ALL,
    "lr": ActivationStrategy.LOWER_RANKING,
    "ss": ActivationStrategy.SAME_STATUS,
}


def _resolve_cli_runtime(args: argparse.Namespace):
    """Build the execution backend the ``--runtime``/``--procs`` flags ask
    for (``None`` keeps the engines' inline default)."""
    if args.runtime != "process":
        if args.procs is not None:
            print("note: --procs only applies with --runtime process",
                  file=sys.stderr)
        return None
    from repro.runtime import ParallelRuntime

    return ParallelRuntime(procs=args.procs)


def _print_metrics(label: str, metrics) -> None:
    summary = metrics.summary()
    print(f"{label}:")
    for key in ("supersteps", "active_vertices", "communication_mb",
                "memory_mb", "wall_time_s"):
        print(f"  {key:18} {summary[key]}")


# ---------------------------------------------------------------------------
# subcommand implementations
# ---------------------------------------------------------------------------
def _cmd_compute(args: argparse.Namespace) -> int:
    representation = getattr(args, "representation", None)
    if representation == "csr" and args.algorithm != "oimis":
        print("error: --representation csr is only supported for "
              "--algorithm oimis", file=sys.stderr)
        return 2
    graph = read_edge_list(args.graph)
    print(f"loaded {graph}")
    runtime = _resolve_cli_runtime(args)
    try:
        if args.algorithm == "oimis":
            if args.engine == "pregel":
                run = run_oimis_pregel(
                    graph, num_workers=args.workers, runtime=runtime,
                    representation=representation,
                )
            else:
                run = run_oimis(
                    graph, num_workers=args.workers,
                    strategy=_STRATEGIES[args.strategy], runtime=runtime,
                    representation=representation,
                )
            members = run.independent_set
            metrics = run.metrics
        else:
            run = run_dismis(
                graph, num_workers=args.workers, engine=args.engine,
                runtime=runtime,
            )
            members = run.independent_set
            metrics = run.metrics
    finally:
        if runtime is not None:
            runtime.close()
    print(f"independent set size: {len(members)}")
    _print_metrics("metrics", metrics)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for u in sorted(members):
                handle.write(f"{u}\n")
        print(f"members written to {args.output}")
    return 0


def _cmd_maintain(args: argparse.Namespace) -> int:
    runtime = _resolve_cli_runtime(args)
    representation = getattr(args, "representation", None)
    if args.resume:
        # an explicit --workers must match the checkpoint's partitioning —
        # load() raises CheckpointError("partition mismatch: ...") otherwise
        maintainer = MISMaintainer.load(
            args.resume, num_workers=args.workers, runtime=runtime,
            representation=representation,
        )
        print(f"resumed checkpoint: {maintainer.graph}, |M|={len(maintainer)}")
    else:
        graph = read_edge_list(args.graph)
        maintainer = MISMaintainer(
            graph,
            num_workers=args.workers if args.workers is not None else 10,
            strategy=_STRATEGIES[args.strategy],
            runtime=runtime,
            representation=representation,
        )
        print(f"loaded {maintainer.graph}; initial |M|={len(maintainer)}")
    with maintainer:
        return _run_maintain(args, maintainer)


def _run_maintain(args: argparse.Namespace, maintainer) -> int:
    ops = read_update_stream(args.updates)
    print(f"applying {len(ops)} updates in batches of {args.batch_size}")
    if args.checkpoint_every:
        # periodic saves: if the stream dies mid-way (bad op, fault
        # escalation, crash of this process), the file on disk holds the
        # state after the last completed group — resume with --resume
        from repro.bench.workloads import batched

        batches_done = 0
        for batch in batched(ops, args.batch_size):
            maintainer.apply_batch(batch)
            batches_done += 1
            if batches_done % args.checkpoint_every == 0:
                maintainer.save(args.checkpoint)
                print(
                    f"checkpoint written to {args.checkpoint} "
                    f"(after {batches_done} batches, "
                    f"{maintainer.updates_applied} updates)"
                )
    else:
        maintainer.apply_stream(ops, batch_size=args.batch_size)
    print(f"final independent set size: {len(maintainer)}")
    _print_metrics("maintenance", maintainer.update_metrics)
    if args.verify:
        maintainer.verify()
        print("verification passed")
    if args.checkpoint:
        maintainer.save(args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for u in sorted(maintainer.independent_set()):
                handle.write(f"{u}\n")
        print(f"members written to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.model == "er":
        m = args.edges if args.edges is not None else 3 * args.n
        graph = generators.erdos_renyi(args.n, m, seed=args.seed)
    elif args.model == "ba":
        graph = generators.barabasi_albert(args.n, int(args.param), seed=args.seed)
    elif args.model == "chung_lu":
        graph = generators.chung_lu(args.n, args.param, seed=args.seed)
    else:  # dataset stand-in
        graph = datasets.load_dataset(args.dataset)
    write_edge_list(graph, args.output)
    print(f"wrote {graph} to {args.output}")
    if args.workload:
        from repro.bench.workloads import delete_reinsert_workload

        ops = delete_reinsert_workload(graph, args.workload, seed=args.seed)
        path = args.output + ".updates"
        write_update_stream(ops, path)
        print(f"wrote {len(ops)}-op delete-reinsert workload to {path}")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'tag':6} {'name':12} {'paper |V|':>12} {'paper |E|':>15} "
          f"{'standin n':>10} {'standin m':>10} {'group':>6}")
    for tag in datasets.dataset_tags():
        spec = datasets.dataset_spec(tag)
        print(
            f"{spec.tag:6} {spec.name:12} {spec.paper_vertices:>12,} "
            f"{spec.paper_edges:>15,} {spec.n:>10} {spec.m:>10} {spec.group:>6}"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_paths, render_json, render_sarif, render_text

    rules = None
    if args.rules or args.family:
        rules = [r for chunk in args.rules for r in chunk.split(",")]
        rules.extend(args.family)
    try:
        findings = lint_paths(args.paths or None, rules=rules)
    except ValueError as exc:  # unknown rule id
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderers = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }
    print(renderers[args.format](findings))
    return 1 if findings else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.analysis.parallel import sanitize_suite
    from repro.faults.chaos import CHAOS_WORKLOADS, PLAN_PRESETS

    presets = args.preset or ["none"]
    for preset in presets:
        if preset not in PLAN_PRESETS:
            print(
                f"error: unknown chaos preset {preset!r}; "
                f"known: {', '.join(PLAN_PRESETS)}",
                file=sys.stderr,
            )
            return 2
    workloads = CHAOS_WORKLOADS
    if args.workload:
        by_name = {w.name: w for w in CHAOS_WORKLOADS}
        missing = [name for name in args.workload if name not in by_name]
        if missing:
            print(
                f"error: unknown workload(s) {missing}; "
                f"known: {', '.join(by_name)}",
                file=sys.stderr,
            )
            return 2
        workloads = tuple(by_name[name] for name in args.workload)
    results = sanitize_suite(
        presets=presets,
        seeds=args.seed or list(range(args.seeds)),
        procs=args.procs,
        workloads=workloads,
        start_method=args.start_method,
        representation=getattr(args, "representation", None),
    )
    if args.format == "json":
        print(json.dumps([r.as_dict() for r in results], indent=2))
    else:
        print(f"{'workload':20} {'preset':16} {'seed':>4} {'procs':>5} "
              f"{'checked':>8} {'races':>6} {'verdict'}")
        for r in results:
            verdict = "ok" if r.ok else "FAIL"
            print(f"{r.workload:20} {r.preset:16} {r.seed:>4} {r.procs:>5} "
                  f"{r.supersteps_checked:>8} {len(r.races):>6} {verdict}  "
                  f"trace={r.trace_digest}")
            for race in r.races:
                print(f"    - {race}")
            for failure in r.failures:
                print(f"    - {failure}")
    bad = [r for r in results if not r.ok]
    summary_stream = sys.stderr if args.format == "json" else sys.stdout
    if bad:
        print(f"{len(bad)}/{len(results)} sanitize case(s) reported races "
              "or broke bit-identity", file=sys.stderr)
        return 1
    print(f"ok: {len(results)} sanitize case(s) ran race-free and "
          "bit-identical to the inline reference", file=summary_stream)
    return 0


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    from repro.bench import perf

    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    names = tuple(args.scenario or ())
    document = perf.run_suite(
        names, repeat=args.repeat, profile_dir=args.profile
    )
    if args.check:
        try:
            baseline = perf.load_baseline(args.output)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        problems = perf.check_against(baseline, document)
        if problems:
            for problem in problems:
                print(f"DRIFT {problem}")
            print(f"{len(problems)} drift(s) against {args.output}")
            return 1
        checked = len(document["scenarios"])
        print(f"ok: {checked} scenario(s) match {args.output}")
        return 0
    perf.write_baseline(args.output, document)
    print(f"wrote {len(document['scenarios'])} scenario(s) to {args.output}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import chaos

    presets = args.preset or list(chaos.PLAN_PRESETS)
    seeds = args.seed or list(range(args.seeds))
    membership = None
    if (args.phi_threshold is not None or args.audit_every is not None
            or args.delta_log_depth is not None):
        from repro.faults.membership import MembershipConfig

        overrides = {}
        if args.phi_threshold is not None:
            overrides["phi_threshold"] = args.phi_threshold
        if args.audit_every is not None:
            overrides["audit_every"] = args.audit_every
        if args.delta_log_depth is not None:
            overrides["delta_log_depth"] = args.delta_log_depth
        membership = MembershipConfig(**overrides)
    results = chaos.chaos_suite(
        presets=presets, seeds=seeds, membership=membership,
        representation=getattr(args, "representation", None),
    )
    if args.format == "json":
        print(json.dumps([r.as_dict() for r in results], indent=2))
    else:
        print(f"{'workload':20} {'preset':16} {'seed':>4} {'injected':>8} "
              f"{'recovery':>8} {'repaired':>8} {'verdict'}")
        for r in results:
            recovery = int(r.recovery.get("recovery_crashes", 0)
                           + r.recovery.get("recovery_failovers", 0)
                           + r.recovery.get("recovery_sync_retries", 0)
                           + r.recovery.get("recovery_sync_duplicates", 0)
                           + r.recovery.get("recovery_reorders", 0))
            repaired = int(r.divergence.get("divergence_repaired", 0))
            verdict = "ok" if r.ok else "FAIL"
            print(f"{r.workload:20} {r.preset:16} {r.seed:>4} "
                  f"{r.injected_total:>8} {recovery:>8} {repaired:>8} "
                  f"{verdict}")
            for failure in r.failures:
                print(f"    - {failure}")
    bad = [r for r in results if not r.ok]
    if bad:
        print(f"{len(bad)}/{len(results)} chaos case(s) violated the "
              "convergence oracle", file=sys.stderr)
        return 1
    # keep stdout machine-readable under --format json
    summary_stream = sys.stderr if args.format == "json" else sys.stdout
    print(f"ok: {len(results)} chaos case(s) converged to the fault-free "
          "fixpoint with bit-identical logical meters", file=summary_stream)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import random
    import shutil
    import tempfile
    from time import perf_counter

    from repro.errors import BackpressureError
    from repro.graph.datasets import load_dataset
    from repro.serve import (
        AdaptiveWindowController,
        AdmissionConfig,
        FixedWindowController,
        IngestionService,
        RetryPolicy,
        TraceConfig,
        WindowConfig,
        audit_log,
        bursty_trace,
    )

    representation = getattr(args, "representation", None)

    if args.chaos:
        from repro.faults.chaos import serve_crash_replay

        runtime_factory = None
        if args.runtime == "process":
            from repro.runtime import ParallelRuntime

            runtime_factory = lambda: ParallelRuntime(procs=args.procs)
        result = serve_crash_replay(
            tag=args.dataset, num_ops=args.ops, seed=args.seed,
            poison_prob=args.poison_prob,
            runtime_factory=runtime_factory,
            representation=representation,
        )
        if args.format == "json":
            print(json.dumps(result.as_dict(), indent=2))
        else:
            print(f"serve crash/replay: dataset={result.tag} "
                  f"ops={result.num_ops} seed={result.seed}")
            print(f"  crashed after     {result.crashed_after} event(s)")
            print(f"  replayed          {result.replayed_windows} window(s) "
                  f"/ {result.replayed_events} event(s)")
            print(f"  quarantined       {result.quarantined}")
            for failure in result.failures:
                print(f"  FAIL {failure}")
        stream = sys.stderr if args.format == "json" else sys.stdout
        if result.ok:
            print("ok: recovered run is bit-identical to the uninterrupted "
                  "run (members + cumulative logical meters)", file=stream)
            return 0
        print(f"{len(result.failures)} crash/replay oracle violation(s)",
              file=sys.stderr)
        return 1

    if args.fixed_window is not None:
        controller = FixedWindowController(args.fixed_window)
    else:
        controller = AdaptiveWindowController(WindowConfig(
            min_window=args.window_min, max_window=args.window_max,
            initial_window=args.window_init,
        ))
    trace_graph = load_dataset(args.dataset)
    operations, timestamps = bursty_trace(trace_graph, TraceConfig(
        num_ops=args.ops, seed=args.seed, poison_prob=args.poison_prob,
    ))
    runtime = _resolve_cli_runtime(args)
    maintainer = MISMaintainer(
        load_dataset(args.dataset), num_workers=args.workers,
        runtime=runtime, representation=representation,
    )
    wal_dir = args.wal_dir or tempfile.mkdtemp(prefix="repro-serve-")
    try:
        service = IngestionService(
            maintainer, wal_dir, controller=controller,
            admission=AdmissionConfig(
                policy=args.admission, high_watermark=args.high_watermark,
                low_watermark=args.low_watermark,
            ),
            retry=RetryPolicy(
                max_retries=args.retries, backoff_base_s=args.backoff,
            ),
            fsync=args.fsync, checkpoint_every=args.checkpoint_every,
            autoscale=args.autoscale,
            target_utilization=args.target_utilization,
            serve_reads=args.read_mix > 0,
        )
        # seeded read interleaving: an accumulator turns the requested
        # read fraction R into reads-per-write R/(1-R), so e.g. 0.99
        # issues ~99 queries between consecutive submissions
        read_rng = random.Random(args.seed + 0x5EED) if args.read_mix else None
        read_ratio = (args.read_mix / (1.0 - args.read_mix)
                      if args.read_mix else 0.0)
        read_acc = 0.0
        start = perf_counter()
        for i, op in enumerate(operations):
            try:
                service.submit(op, timestamps[i])
            except BackpressureError:
                # the error policy pushes overload onto the producer; the
                # trace runner's answer is to drop and move on (the
                # rejection is already on the admission account)
                continue
            if read_rng is not None:
                read_acc += read_ratio
                while read_acc >= 1.0:
                    read_acc -= 1.0
                    ids = service.reads.latest().ids
                    if not ids.size:
                        break
                    if args.read_batch > 1:
                        service.query_batch([
                            int(ids[read_rng.randrange(ids.size)])
                            for _ in range(args.read_batch)
                        ])
                    else:
                        vertex = int(ids[read_rng.randrange(ids.size)])
                        if read_rng.random() < 0.1:
                            service.query_why_not(vertex)
                        else:
                            service.query_point(vertex)
        service.drain()
        ingest_wall = perf_counter() - start
        service.close()
        problems, audit = audit_log(wal_dir)
        summary = service.stats_summary()
        session = summary["session"]
        if args.format == "json":
            document = dict(summary)
            document["audit"] = {"problems": problems, **audit}
            document["ingest_wall_s"] = round(ingest_wall, 3)
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            throughput = (audit["applied"] / ingest_wall
                          if ingest_wall else 0.0)
            print(f"serve: dataset={args.dataset} ops={args.ops} "
                  f"seed={args.seed} poison={args.poison_prob} "
                  f"admission={args.admission}")
            print(f"  accepted          {summary['accepted']}")
            print(f"  shed              {summary['shed']}")
            print(f"  rejected          {summary['rejected']}")
            print(f"  blocked           {summary['blocked']}")
            print(f"  applied           {audit['applied']} "
                  f"in {audit['commits']} window(s)")
            print(f"  quarantined       {summary['quarantined']} "
                  f"(window failures {summary['window_failures']}, "
                  f"bisections {summary['bisections']})")
            print(f"  throughput        {throughput:.1f} updates/s")
            print(f"  window wall p50   {session['wall_time_p50_s']:.5f} s")
            print(f"  window wall p95   {session['wall_time_p95_s']:.5f} s")
            print(f"  window wall p99   {session['wall_time_p99_s']:.5f} s")
            print(f"  max pending       {session['max_pending']}")
            ctl = summary["controller"]
            print(f"  controller        window={ctl['window_size']} "
                  f"grows={ctl['grows']} shrinks={ctl['shrinks']}")
            if "autoscale" in summary:
                scale = summary["autoscale"]
                print(f"  autoscale         pool={scale['pool_size']} "
                      f"ups={summary['scale_ups']} "
                      f"downs={summary['scale_downs']} "
                      f"u={scale['utilization']} skew={scale['skew']}")
            if "reads" in summary:
                reads = summary["reads"]
                served = reads["reads_served"]
                reads_per_s = reads["reads_per_s"]
                print(f"  reads served      {served} "
                      f"({reads['point_queries']} point, "
                      f"{reads['batch_queries']} batch, "
                      f"{reads['why_not_queries']} why-not) "
                      f"@ {reads_per_s:.1f} reads/s")
                print(f"  read lat p50      {reads['latency_p50_ms']:.4f} ms")
                print(f"  read lat p95      {reads['latency_p95_ms']:.4f} ms")
                print(f"  read lat p99      {reads['latency_p99_ms']:.4f} ms")
                samples = reads["staleness_samples"] or 1
                print(f"  staleness         max={reads['staleness_max']} "
                      f"mean={reads['staleness_sum'] / samples:.2f} "
                      f"(epochs {reads['epochs_published']})")
                print(f"  read epoch        {reads['epoch']} "
                      f"(watermark {reads['watermark']})")
            print(f"  |MIS|             {len(maintainer.independent_set())}")
            print(f"  wal               {wal_dir}"
                  f"{'' if args.wal_dir else ' (temporary)'}")
        if args.check:
            expected = audit["applied"] + audit["quarantined"]
            if summary["accepted"] != expected or audit["pending"]:
                problems.append(
                    f"accounting: accepted={summary['accepted']} != "
                    f"applied={audit['applied']} + "
                    f"quarantined={audit['quarantined']} "
                    f"(pending {audit['pending']})"
                )
            if args.read_mix:
                reads = summary.get("reads") or {}
                if not reads.get("reads_served"):
                    problems.append(
                        "read path: no reads served despite --read-mix"
                    )
                if reads.get("watermark") != summary["applied_watermark"]:
                    problems.append(
                        "read path: final epoch watermark "
                        f"{reads.get('watermark')} is not the committed "
                        f"watermark {summary['applied_watermark']} — reads "
                        "were not served from committed epochs"
                    )
            if problems:
                for problem in problems:
                    print(f"AUDIT {problem}", file=sys.stderr)
                print(f"{len(problems)} audit problem(s)", file=sys.stderr)
                return 1
            stream = sys.stderr if args.format == "json" else sys.stdout
            print("ok: exactly-once audit clean (every accepted event "
                  "applied or quarantined, none twice)", file=stream)
        return 0
    finally:
        if args.wal_dir is None:
            shutil.rmtree(wal_dir, ignore_errors=True)


def _cmd_query(args: argparse.Namespace) -> int:
    """Serve ad-hoc queries from a checkpoint via the snapshot read path.

    Output is deterministic (no wall-clock numbers, sorted JSON keys) so
    CI can diff runs across hash seeds and platforms.
    """
    from repro.serve import QueryEngine, SnapshotRegistry

    runtime = _resolve_cli_runtime(args)
    representation = getattr(args, "representation", None)
    maintainer = MISMaintainer.load(
        args.checkpoint, num_workers=args.workers, runtime=runtime,
        representation=representation,
    )
    registry = None
    try:
        registry = SnapshotRegistry(maintainer)
        snapshot = registry.publish(
            epoch=0, watermark=maintainer.updates_applied
        )
        engine = QueryEngine(registry)
        document = {
            "checkpoint": args.checkpoint,
            "epoch": snapshot.epoch,
            "watermark": snapshot.watermark,
            "vertices": snapshot.num_vertices,
            "set_size": snapshot.set_size,
        }
        if args.vertex:
            document["point"] = [engine.point(v) for v in args.vertex]
        if args.batch:
            vertices = [int(x) for x in args.batch.split(",") if x.strip()]
            if not vertices:
                raise ReproError(f"--batch {args.batch!r} names no vertices")
            document["batch"] = engine.batch(vertices)
        if args.neighborhood is not None:
            document["neighborhood"] = engine.neighborhood(
                args.neighborhood, hops=args.hops
            )
        if args.why_not is not None:
            document["why_not"] = engine.why_not(args.why_not)
        if args.format == "json":
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(f"query: checkpoint={args.checkpoint} "
                  f"epoch={document['epoch']} "
                  f"watermark={document['watermark']} "
                  f"|V|={document['vertices']} |M|={document['set_size']}")
            for answer in document.get("point", ()):
                verdict = "member" if answer["member"] else "non-member"
                print(f"  vertex {answer['vertex']:<10} {verdict}")
            if "batch" in document:
                batch = document["batch"]
                hits = sum(batch["members"])
                print(f"  batch             {hits}/{len(batch['members'])} "
                      f"member(s) of {batch['vertices']}")
            if "neighborhood" in document:
                hood = document["neighborhood"]
                print(f"  neighborhood      {len(hood['members'])} member(s) "
                      f"within {hood['hops']} hop(s) of {hood['vertex']}: "
                      f"{hood['members']}")
            if "why_not" in document:
                cert = document["why_not"]
                if cert["member"]:
                    detail = "member (no ≺-smaller in-set neighbour)"
                elif cert["blocker"] is None:
                    detail = "non-member (no blocker at this epoch)"
                else:
                    detail = f"blocked by in-set neighbour {cert['blocker']}"
                print(f"  why-not {cert['vertex']:<9} {detail}")
        return 0
    finally:
        if registry is not None:
            registry.close()
        maintainer.close()


def _parse_transition(text: str):
    """``WORKER[@RUN]`` → ``(worker, run)`` (run defaults to 1)."""
    worker, _, run = text.partition("@")
    try:
        return int(worker), int(run) if run else 1
    except ValueError:
        raise ReproError(
            f"bad transition {text!r}: expected WORKER or WORKER@RUN"
        ) from None


def _cmd_rebalance(args: argparse.Namespace) -> int:
    """Scripted elastic transitions on one workload + the identity oracle."""
    from repro.bench.workloads import delete_reinsert_workload
    from repro.faults import DrainSpec, FaultInjector, FaultPlan, JoinSpec
    from repro.faults.chaos import LOGICAL_METERS
    from repro.graph.datasets import load_dataset

    drains = tuple(
        DrainSpec(superstep=0, worker=w, run=r)
        for w, r in (_parse_transition(t) for t in args.drain or ())
    )
    joins = tuple(
        JoinSpec(superstep=0, worker=w, run=r)
        for w, r in (_parse_transition(t) for t in args.join or ())
    )
    if not drains and not joins:
        raise ReproError(
            "rebalance needs at least one --drain or --join (WORKER[@RUN])"
        )
    plan = FaultPlan(seed=0, drains=drains, joins=joins)
    representation = getattr(args, "representation", None)

    def run_once(faults):
        runtime = _resolve_cli_runtime(args)
        maintainer = MISMaintainer(
            load_dataset(args.dataset), num_workers=args.workers,
            strategy=ActivationStrategy.SAME_STATUS,
            faults=faults, runtime=runtime,
            representation=representation,
        )
        ops = delete_reinsert_workload(
            load_dataset(args.dataset), args.k, seed=args.seed
        )
        try:
            maintainer.apply_stream(ops, batch_size=args.batch_size)
        finally:
            if runtime is not None:
                maintainer.close()
        return maintainer

    reference = run_once(None)
    elastic = run_once(FaultInjector(plan))

    failures: List[str] = []
    if sorted(elastic.independent_set()) != \
            sorted(reference.independent_set()):
        failures.append("members diverged from the static-membership run")
    for name in LOGICAL_METERS:
        ours = getattr(elastic.update_metrics, name)
        theirs = getattr(reference.update_metrics, name)
        if ours != theirs:
            failures.append(
                f"logical meter {name} drifted: elastic={ours} "
                f"static={theirs}"
            )

    failover = elastic.failover
    events = failover.transitions if failover is not None else []
    rebalance = elastic.update_metrics.rebalance_summary()
    # post-transition residency skew under the effective placement
    skew = 1.0
    members = []
    if failover is not None:
        members = failover.view.members()
        counts = {w: 0 for w in members}
        for u in sorted(elastic.graph.vertices()):
            counts[failover.worker_of(u)] = \
                counts.get(failover.worker_of(u), 0) + 1
        loads = [c for c in counts.values()]
        mean = sum(loads) / len(loads) if loads else 0.0
        skew = max(loads) / mean if mean else 1.0

    if args.format == "json":
        print(json.dumps({
            "dataset": args.dataset,
            "k": args.k,
            "batch_size": args.batch_size,
            "workers": args.workers,
            "drains": [[s.worker, s.run] for s in drains],
            "joins": [[s.worker, s.run] for s in joins],
            "epoch": failover.epoch if failover is not None else 0,
            "members": len(members),
            "transitions": [
                {"superstep": e.superstep, "joined": list(e.joined),
                 "drained": list(e.drained), "moved": e.moved,
                 "epoch": e.epoch, "stall_s": e.stall_s}
                for e in events
            ],
            "rebalance": rebalance,
            "post_skew": round(skew, 4),
            "ok": not failures,
            "failures": failures,
        }, indent=2, sort_keys=True))
    else:
        print(f"rebalance: dataset={args.dataset} k={args.k} "
              f"batch={args.batch_size} workers={args.workers}")
        print(f"  joins             "
              f"{[f'{s.worker}@{s.run}' for s in joins] or '-'}")
        print(f"  drains            "
              f"{[f'{s.worker}@{s.run}' for s in drains] or '-'}")
        print(f"  epoch             "
              f"{failover.epoch if failover is not None else 0} "
              f"({len(events)} transition(s), {len(members)} member(s))")
        print(f"  moved             "
              f"{rebalance['rebalance_moved_vertices']} vertex(es)")
        print(f"  resync            {rebalance['rebalance_resync_bytes']} B "
              f"/ {rebalance['rebalance_resync_messages']} message(s), "
              f"{rebalance['rebalance_rank_entries']} rank entr(ies)")
        print(f"  stall             {rebalance['rebalance_stall_s']} s "
              f"(modelled)")
        print(f"  post skew         {skew:.4f} (max/mean residents)")
        for failure in failures:
            print(f"  FAIL {failure}")
    stream = sys.stderr if args.format == "json" else sys.stdout
    if failures:
        print(f"{len(failures)} rebalance oracle violation(s)",
              file=sys.stderr)
        return 1
    print("ok: elastic run is bit-identical to the static-membership run "
          "(members + logical meters); all costs on rebalance_*",
          file=stream)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import harness
    from repro.bench.reporting import format_table

    drivers = {
        "table2": (harness.table2_order_independence, {}),
        "table3": (harness.table3_optimizations, {}),
        "table4": (harness.table4_effectiveness, {"k": args.k}),
        "fig10": (harness.fig10_efficiency, {"k": args.k}),
        "fig11": (harness.fig11_batch_size, {"k": args.k}),
        "fig12": (harness.fig12_machines, {"k": args.k}),
        "fig13": (harness.fig13_updates, {}),
        "chaos": (harness.chaos_oracle, {}),
    }
    driver, kwargs = drivers[args.experiment]
    rows = driver(**kwargs)
    columns = list(rows[0].keys())
    print(format_table(rows, columns, title=f"experiment {args.experiment}"))
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description="Distributed near-maximum independent set maintenance "
        "(OIMIS/DOIMIS, ICDE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compute = sub.add_parser("compute", help="static MIS of an edge-list file")
    compute.add_argument("graph", help="SNAP-style edge-list file")
    compute.add_argument("--algorithm", choices=("oimis", "dismis"), default="oimis")
    compute.add_argument("--engine", choices=("scaleg", "pregel"), default="scaleg")
    compute.add_argument("--workers", type=int, default=10)
    compute.add_argument("--strategy", choices=sorted(_STRATEGIES), default="ss")
    compute.add_argument(
        "--runtime", choices=("inline", "process"), default="inline",
        help="execution backend: inline (serial, default) or process "
        "(multi-core worker pool; bit-identical results)",
    )
    compute.add_argument(
        "--procs", type=int, default=None, metavar="N",
        help="worker process count for --runtime process "
        "(default: os.cpu_count())",
    )
    compute.add_argument(
        "--representation", choices=("dict", "csr"), default=None,
        help="partition-local layout: dict (reference, default) or csr "
        "(flat numpy arrays; bit-identical meters, oimis only; "
        "default from REPRO_REPRESENTATION)",
    )
    compute.add_argument("--output", "-o", help="write member ids to this file")
    compute.set_defaults(fn=_cmd_compute)

    maintain = sub.add_parser("maintain", help="apply an update stream")
    maintain.add_argument("updates", help="update stream (ins/del u v lines)")
    maintain.add_argument("--graph", help="SNAP-style edge-list file to start from")
    maintain.add_argument(
        "--workers", type=int, default=None,
        help="worker count (default 10; with --resume it must match the "
        "checkpoint's partitioning)",
    )
    maintain.add_argument("--strategy", choices=sorted(_STRATEGIES), default="ss")
    maintain.add_argument("--batch-size", type=int, default=1)
    maintain.add_argument("--verify", action="store_true")
    maintain.add_argument("--checkpoint", help="write a checkpoint after the stream")
    maintain.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="also write the checkpoint every N batches (needs --checkpoint)",
    )
    maintain.add_argument("--resume", help="resume from a checkpoint instead of a graph")
    maintain.add_argument(
        "--runtime", choices=("inline", "process"), default="inline",
        help="execution backend: inline (serial, default) or process "
        "(multi-core worker pool; bit-identical results)",
    )
    maintain.add_argument(
        "--procs", type=int, default=None, metavar="N",
        help="worker process count for --runtime process "
        "(default: os.cpu_count())",
    )
    maintain.add_argument(
        "--representation", choices=("dict", "csr"), default=None,
        help="partition-local layout: dict (reference, default) or csr "
        "(flat numpy arrays; bit-identical meters; "
        "default from REPRO_REPRESENTATION)",
    )
    maintain.add_argument("--output", "-o", help="write member ids to this file")
    maintain.set_defaults(fn=_cmd_maintain)

    generate = sub.add_parser("generate", help="write a synthetic graph")
    generate.add_argument("model", choices=("er", "ba", "chung_lu", "dataset"))
    generate.add_argument("--n", type=int, default=1000)
    generate.add_argument("--edges", type=int, help="edge count (er only)")
    generate.add_argument("--param", type=float, default=3.0,
                          help="attach count (ba) or average degree (chung_lu)")
    generate.add_argument("--dataset", choices=datasets.dataset_tags(),
                          help="stand-in tag when model=dataset")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", "-o", required=True)
    generate.add_argument("--workload", type=int, default=0,
                          help="also write a delete-reinsert workload of this k")
    generate.set_defaults(fn=_cmd_generate)

    ds = sub.add_parser("datasets", help="list the 16 dataset stand-ins")
    ds.set_defaults(fn=_cmd_datasets)

    bench = sub.add_parser("bench", help="run one experiment driver")
    bench.add_argument("experiment", choices=(
        "table2", "table3", "table4", "fig10", "fig11", "fig12", "fig13",
        "chaos"))
    bench.add_argument("--k", type=int, default=100)
    bench.set_defaults(fn=_cmd_bench)

    chaos = sub.add_parser(
        "chaos",
        help="sweep seeded fault schedules, assert the convergence oracle",
    )
    chaos.add_argument(
        "--preset", action="append", metavar="NAME",
        help="fault preset to run (repeatable; default: all — "
        "none/crash/drop/duplicate/straggler/reorder/composed/"
        "worker-loss/cascading-loss/loss-under-stream/corrupt-guest)",
    )
    chaos.add_argument(
        "--seeds", type=int, default=1,
        help="sweep plan seeds 0..N-1 (default: 1)",
    )
    chaos.add_argument(
        "--seed", action="append", type=int, metavar="S",
        help="run exactly this plan seed (repeatable; overrides --seeds)",
    )
    chaos.add_argument(
        "--phi-threshold", type=float, default=None,
        help="failure-detector suspicion threshold (default: 8.0)",
    )
    chaos.add_argument(
        "--audit-every", type=int, default=None,
        help="guest-copy anti-entropy sampling window in supersteps "
        "(0 disables; default: 4)",
    )
    chaos.add_argument(
        "--delta-log-depth", type=int, default=None,
        help="uncompacted delta-log frames kept for solitary-vertex "
        "reconstruction (default: 8)",
    )
    chaos.add_argument(
        "--representation", choices=("dict", "csr"), default=None,
        help="partition-local layout for every case (default dict, or "
        "REPRO_REPRESENTATION)",
    )
    chaos.add_argument("--format", choices=("table", "json"), default="table")
    chaos.set_defaults(fn=_cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="run the durable ingestion service on a seeded bursty trace "
        "(WAL + recovery, admission control, retry/quarantine, adaptive "
        "windowing)",
    )
    serve.add_argument(
        "--dataset", default="AM", metavar="TAG",
        help="stand-in dataset tag the trace runs over (default: AM)",
    )
    serve.add_argument("--ops", type=int, default=500,
                       help="trace length (default: 500)")
    serve.add_argument("--seed", type=int, default=0,
                       help="trace seed (default: 0)")
    serve.add_argument(
        "--poison-prob", type=float, default=0.0,
        help="probability an event is a poison operation destined for the "
        "dead-letter log (default: 0)",
    )
    serve.add_argument("--workers", type=int, default=10)
    serve.add_argument(
        "--window-min", type=int, default=4,
        help="adaptive window lower bound (default: 4)")
    serve.add_argument(
        "--window-max", type=int, default=256,
        help="adaptive window upper bound (default: 256)")
    serve.add_argument(
        "--window-init", type=int, default=16,
        help="adaptive window starting size (default: 16)")
    serve.add_argument(
        "--fixed-window", type=int, default=None, metavar="N",
        help="disable adaptation and use a constant window of N ops",
    )
    serve.add_argument(
        "--admission", choices=("block", "shed", "error"), default="block",
        help="what happens above the high watermark: block the producer "
        "while draining, shed the event, or raise (default: block)",
    )
    serve.add_argument("--high-watermark", type=int, default=512)
    serve.add_argument("--low-watermark", type=int, default=128)
    serve.add_argument(
        "--retries", type=int, default=2,
        help="failed-window retries before bisection (default: 2)")
    serve.add_argument(
        "--backoff", type=float, default=0.5,
        help="base retry backoff in event-time seconds (default: 0.5)")
    serve.add_argument(
        "--checkpoint-every", type=int, default=8, metavar="N",
        help="maintainer checkpoint every N committed windows "
        "(0: only the initial and closing checkpoints; default: 8)",
    )
    serve.add_argument(
        "--fsync", choices=("always", "commit", "never"), default="commit",
        help="WAL durability: always (every record), commit (control "
        "records only, default), never (OS-buffered)",
    )
    serve.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="log directory to create (kept afterwards; default: a "
        "temporary directory, removed on exit)",
    )
    serve.add_argument(
        "--runtime", choices=("inline", "process"), default="inline",
        help="execution backend (bit-identical results either way)",
    )
    serve.add_argument("--procs", type=int, default=None, metavar="N")
    serve.add_argument(
        "--representation", choices=("dict", "csr"), default=None,
        help="partition-local layout (default dict, or "
        "REPRO_REPRESENTATION)",
    )
    serve.add_argument(
        "--read-mix", type=float, default=0.0, metavar="R",
        help="fraction of traffic served as reads, in [0, 1): interleave "
        "a seeded query stream (R/(1-R) reads per accepted write) against "
        "the epoch-consistent snapshot read path (default: 0 — read path "
        "off)",
    )
    serve.add_argument(
        "--read-batch", type=int, default=1, metavar="N",
        help="vertices per interleaved read: 1 issues point/why-not "
        "queries, N>1 issues vectorized batch lookups of N vertices "
        "(default: 1)",
    )
    serve.add_argument(
        "--check", action="store_true",
        help="audit the WAL after the run: exit non-zero unless every "
        "accepted event applied or quarantined exactly once (with "
        "--read-mix, also assert reads were served from committed epochs)",
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help="run the crash/replay oracle instead: kill the service "
        "mid-window, recover from the WAL, assert bit-identity with an "
        "uninterrupted run",
    )
    serve.add_argument(
        "--autoscale", action="store_true",
        help="consult the target-utilization autoscale policy between "
        "windows, growing/shrinking the process pool (results stay "
        "bit-identical at any pool size)",
    )
    serve.add_argument(
        "--target-utilization", type=float, default=None, metavar="U",
        help="autoscale utilization target in (0, 1] (default 0.7)",
    )
    serve.add_argument("--format", choices=("table", "json"), default="table")
    serve.set_defaults(fn=_cmd_serve)

    query = sub.add_parser(
        "query",
        help="answer point/batch/neighbourhood/why-not MIS queries against "
        "a maintainer checkpoint through the epoch snapshot read path",
    )
    query.add_argument("checkpoint",
                       help="maintainer checkpoint (JSON) to serve from")
    query.add_argument(
        "--vertex", action="append", type=int, metavar="V",
        help="point membership query (repeatable)",
    )
    query.add_argument(
        "--batch", metavar="V1,V2,...",
        help="comma-separated vertex ids for one vectorized batch lookup",
    )
    query.add_argument(
        "--neighborhood", type=int, default=None, metavar="V",
        help="list the maintained set within --hops of V",
    )
    query.add_argument(
        "--hops", type=int, default=1,
        help="neighbourhood radius (default: 1)",
    )
    query.add_argument(
        "--why-not", dest="why_not", type=int, default=None, metavar="V",
        help="membership certificate: the ≺-smaller in-set neighbour "
        "blocking V, or confirmation that V is a member",
    )
    query.add_argument(
        "--workers", type=int, default=None,
        help="worker count (must match the checkpoint's partitioning)",
    )
    query.add_argument(
        "--runtime", choices=("inline", "process"), default="inline",
    )
    query.add_argument("--procs", type=int, default=None, metavar="N")
    query.add_argument(
        "--representation", choices=("dict", "csr"), default=None,
    )
    query.add_argument("--format", choices=("table", "json"),
                       default="table")
    query.set_defaults(fn=_cmd_query)

    rebalance = sub.add_parser(
        "rebalance",
        help="script voluntary worker joins/drains mid-stream and assert "
        "the elastic-membership oracle (bit-identity + rebalance_* "
        "quarantine)",
    )
    rebalance.add_argument(
        "--dataset", choices=datasets.dataset_tags(), default="AM",
    )
    rebalance.add_argument("--k", type=int, default=25,
                           help="edges deleted then re-inserted (2k ops)")
    rebalance.add_argument("--batch-size", type=int, default=1)
    rebalance.add_argument("--workers", type=int, default=10)
    rebalance.add_argument("--seed", type=int, default=0,
                           help="workload seed")
    rebalance.add_argument(
        "--drain", action="append", metavar="WORKER[@RUN]",
        help="drain WORKER at the barrier of update run RUN (default 1); "
        "repeatable",
    )
    rebalance.add_argument(
        "--join", action="append", metavar="WORKER[@RUN]",
        help="join WORKER at the barrier of update run RUN (default 1); "
        "repeatable",
    )
    rebalance.add_argument(
        "--runtime", choices=("inline", "process"), default="inline",
    )
    rebalance.add_argument("--procs", type=int, default=None, metavar="N")
    rebalance.add_argument(
        "--representation", choices=("dict", "csr"), default=None,
    )
    rebalance.add_argument("--format", choices=("table", "json"),
                           default="table")
    rebalance.set_defaults(fn=_cmd_rebalance)

    bench_perf = sub.add_parser(
        "bench-perf",
        help="seeded perf microbenchmarks (write or --check BENCH_core.json)",
    )
    bench_perf.add_argument(
        "--output", "-o", default="BENCH_core.json",
        help="baseline JSON path (default: BENCH_core.json)",
    )
    bench_perf.add_argument(
        "--check", action="store_true",
        help="compare a fresh run against the baseline instead of writing it",
    )
    bench_perf.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    bench_perf.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run each scenario N times and record median/min wall time "
        "(default: 1; logical sections must be identical across repeats)",
    )
    bench_perf.add_argument(
        "--profile", metavar="DIR",
        help="also profile each scenario run with cProfile and dump "
        "<scenario>.pstats files into DIR",
    )
    bench_perf.set_defaults(fn=_cmd_bench_perf)

    lint = sub.add_parser(
        "lint", help="statically check vertex programs for BSP discipline"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the engine surface — "
        "src/repro plus src/repro/runtime and src/repro/faults)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (sarif emits SARIF 2.1.0 for CI annotation)",
    )
    lint.add_argument(
        "--rules", action="append", default=[], metavar="IDS",
        help="comma-separated rule ids to enable (default: all of "
        "D1,B1,A1,S1,P1..P4)",
    )
    lint.add_argument(
        "--family", action="append", default=[], metavar="LETTER",
        help="enable a whole rule family by letter (e.g. --family P for "
        "P1..P4; repeatable, combines with --rules)",
    )
    lint.set_defaults(fn=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="run chaos workloads under the superstep race sanitizer and "
        "assert zero races + bit-identity with the inline reference",
    )
    sanitize.add_argument(
        "preset", nargs="*",
        help="chaos preset(s) to run under the sanitizer (default: none — "
        "the fault-free schedule)",
    )
    sanitize.add_argument(
        "--procs", type=int, default=2, metavar="N",
        help="worker process count for the sanitized run (1 = inline; "
        "default: 2)",
    )
    sanitize.add_argument(
        "--workload", action="append", metavar="NAME",
        help="run only this chaos workload (repeatable; default: all)",
    )
    sanitize.add_argument(
        "--seeds", type=int, default=1,
        help="sweep plan seeds 0..N-1 (default: 1)",
    )
    sanitize.add_argument(
        "--seed", action="append", type=int, metavar="S",
        help="run exactly this plan seed (repeatable; overrides --seeds)",
    )
    sanitize.add_argument(
        "--start-method", choices=("spawn", "fork", "forkserver"),
        default=None,
        help="multiprocessing start method for the worker pool "
        "(default: spawn)",
    )
    sanitize.add_argument(
        "--representation", choices=("dict", "csr"), default=None,
        help="partition-local layout for the sanitized run (default dict, "
        "or REPRO_REPRESENTATION; the inline reference always runs dict)",
    )
    sanitize.add_argument("--format", choices=("table", "json"), default="table")
    sanitize.set_defaults(fn=_cmd_sanitize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "maintain":
        if bool(args.resume) == bool(args.graph):
            parser.error("maintain needs exactly one of --graph or --resume")
        if args.checkpoint_every < 0:
            parser.error("--checkpoint-every must be >= 0")
        if args.checkpoint_every and not args.checkpoint:
            parser.error("--checkpoint-every needs --checkpoint PATH")
    if args.command == "generate" and args.model == "dataset" and not args.dataset:
        parser.error("generate dataset needs --dataset TAG")
    if args.command == "serve" and not args.chaos:
        if not 0.0 <= args.read_mix < 1.0:
            parser.error("--read-mix must be in [0, 1)")
        if args.read_batch < 1:
            parser.error("--read-batch must be >= 1")
    if args.command == "query":
        if (not args.vertex and not args.batch
                and args.neighborhood is None and args.why_not is None):
            parser.error("query needs at least one of --vertex, --batch, "
                         "--neighborhood, --why-not")
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
