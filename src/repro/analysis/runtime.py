"""Opt-in runtime contract checking for the BSP engines.

The static rules catch discipline violations the AST can prove; this module
catches the rest at runtime.  A :class:`ContractChecker`, when attached to
an engine run, asserts:

- **double-buffer isolation** (per superstep): between the start of a
  superstep and its barrier, no state in the read set (active vertices plus,
  on ScaleG, their neighbours) may change.  All writes must go through
  ``ctx.set_state`` and land only when the engine applies the barrier
  update.  A violation means a program mutated shared state in place or
  wrote engine internals directly — the exact failure mode the B1/S1 lint
  rules guard against, now caught even when it hides behind dynamic code.
- **convergence invariants** (per run): if the program computes an
  independent set (:meth:`contract_members` returns members), the reported
  set must be independent and maximal on the current graph — the paper's
  Theorems 4.1/6.1 made executable.

Enabling: pass ``contracts=True`` (or a :class:`ContractChecker`) to an
engine constructor, or set ``REPRO_CONTRACTS=1`` in the environment to turn
checking on process-wide.  The checker is designed to stay well under 2x
run time: snapshots are value-level only for the touched read set, and the
convergence sweep is a single O(n + m) pass per run.

Violations raise :class:`repro.errors.ContractViolation` with superstep and
vertex context.
"""

from __future__ import annotations

import copy
import os
from enum import Enum
from typing import Any, Dict, Iterable, Optional, Set, Union

from repro.errors import ContractViolation

#: state types whose snapshot can be the value itself
_IMMUTABLE_TYPES = (bool, int, float, str, bytes, frozenset, type(None), Enum)

_ENV_FLAG = "REPRO_CONTRACTS"
_TRUTHY = {"1", "true", "yes", "on"}

#: sentinel distinguishing "vertex disappeared" from any real state
_MISSING = object()


def contracts_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether the ``REPRO_CONTRACTS`` environment flag turns checking on."""
    env = os.environ if environ is None else environ
    return env.get(_ENV_FLAG, "").strip().lower() in _TRUTHY


def resolve_contracts(
    contracts: Union[None, bool, "ContractChecker"],
) -> Optional["ContractChecker"]:
    """Normalize an engine's ``contracts`` argument to a checker or None.

    ``None`` defers to the ``REPRO_CONTRACTS`` environment flag; ``True``
    creates a default checker; ``False`` disables checking regardless of the
    environment; a :class:`ContractChecker` instance is used as-is.
    """
    if contracts is None:
        return ContractChecker() if contracts_enabled() else None
    if contracts is True:
        return ContractChecker()
    if contracts is False:
        return None
    return contracts


def _snapshot(state: Any) -> Any:
    if isinstance(state, _IMMUTABLE_TYPES):
        return state
    if isinstance(state, tuple):
        return state if all(isinstance(x, _IMMUTABLE_TYPES) for x in state) else copy.deepcopy(state)
    return copy.deepcopy(state)


class ContractChecker:
    """Asserts BSP invariants at superstep barriers and at convergence.

    One checker may be shared across runs and engines; it keeps counters
    (:attr:`supersteps_checked`, :attr:`runs_checked`) so tests can assert
    it actually ran.
    """

    def __init__(
        self, check_isolation: bool = True, check_convergence: bool = True
    ):
        self.check_isolation = check_isolation
        self.check_convergence = check_convergence
        self.supersteps_checked = 0
        self.runs_checked = 0
        self._snap: Dict[int, Any] = {}

    # -- double-buffer isolation ----------------------------------------
    def begin_superstep(
        self, superstep: int, read_set: Iterable[int], states: Dict[int, Any]
    ) -> None:
        """Snapshot the states every compute of this superstep may read."""
        if not self.check_isolation:
            return
        self._snap = {
            u: _snapshot(states[u]) for u in read_set if u in states
        }

    def at_barrier(self, superstep: int, states: Dict[int, Any]) -> None:
        """Called at the barrier *before* buffered writes are applied."""
        if not self.check_isolation:
            return
        for u, before in self._snap.items():
            current = states.get(u, _MISSING)
            if current is _MISSING or current != before:
                raise ContractViolation(
                    contract="double-buffer",
                    detail=(
                        f"state of vertex {u} changed mid-superstep "
                        f"({before!r} -> "
                        f"{'<removed>' if current is _MISSING else repr(current)}); "
                        "writes must go through ctx.set_state and land at "
                        "the barrier"
                    ),
                    superstep=superstep,
                    vertex=u,
                )
        self._snap = {}
        self.supersteps_checked += 1

    # -- convergence invariants -----------------------------------------
    def at_convergence(self, graph, members: Iterable[int]) -> None:
        """Assert independence + maximality of the program's reported set.

        ``graph`` is the engine's :class:`~repro.graph.dynamic_graph.DynamicGraph`;
        ``members`` the set reported by ``contract_members``.  One O(n + m)
        sweep; raises on the first offending vertex/edge.
        """
        if not self.check_convergence:
            return
        member_set: Set[int] = set(members)
        for u in sorted(member_set):
            if not graph.has_vertex(u):
                raise ContractViolation(
                    contract="independence",
                    detail=f"reported member {u} is not a vertex of the graph",
                    vertex=u,
                )
            for v in graph.neighbors(u):
                if v in member_set:
                    raise ContractViolation(
                        contract="independence",
                        detail=(
                            f"reported set contains adjacent vertices "
                            f"{min(u, v)} and {max(u, v)}"
                        ),
                        vertex=u,
                    )
        for u in graph.sorted_vertices():
            if u in member_set:
                continue
            if not any(v in member_set for v in graph.neighbors(u)):
                raise ContractViolation(
                    contract="maximality",
                    detail=(
                        f"vertex {u} has no neighbour in the reported set "
                        "and could be added — the set is not maximal"
                    ),
                    vertex=u,
                )
        self.runs_checked += 1
