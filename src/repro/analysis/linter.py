"""Linter orchestration: walk files, parse, run rules, filter, sort.

Public API:

- :func:`lint_source` — lint one module given as text (used by tests).
- :func:`lint_file` — lint one file on disk.
- :func:`lint_paths` — lint files and directory trees (what the CLI calls).

Rule selection is by id (``D1``, ``B1``, ``A1``, ``S1``, ``P1``..``P4``)
or by family letter (``P`` expands to every P rule); the ``E0`` parse
finding is always emitted for unparseable files so a lint run can never
silently skip code.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import (
    Finding,
    apply_suppressions,
    parse_suppressions,
    statement_extents,
)
from repro.analysis.parallel.rules import check_parallel
from repro.analysis.rules_contract import check_contracts
from repro.analysis.rules_determinism import check_determinism

#: rule families enabled when no explicit selection is given
DEFAULT_RULES = ("D1", "B1", "A1", "S1", "P1", "P2", "P3", "P4")

#: what ``lint_paths(None)`` (and the bare CLI) targets, relative to the
#: repo root: the whole engine surface — vertex programs, both engines,
#: the execution backends, and the fault/recovery machinery.  Overlapping
#: entries are harmless (files dedupe by real path); listing ``runtime``
#: and ``faults`` explicitly keeps them covered even if the tree is ever
#: linted from a narrower checkout.
DEFAULT_LINT_PATHS = ("src/repro", "src/repro/runtime", "src/repro/faults")

#: directory names never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".ruff_cache"}


def _normalize_rules(rules: Optional[Iterable[str]]) -> Set[str]:
    """Uppercase, expand family letters, and validate a rule selection."""
    if rules is None:
        return set(DEFAULT_RULES)
    known = set(DEFAULT_RULES)
    normalized: Set[str] = set()
    for token in rules:
        if not token or not token.strip():
            continue
        token = token.strip().upper()
        family = {r for r in known if r.startswith(token)}
        if token in known:
            normalized.add(token)
        elif family:
            normalized.update(family)
        else:
            raise ValueError(
                f"unknown lint rule(s) [{token!r}]; "
                f"known: {list(DEFAULT_RULES)}"
            )
    return normalized


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns findings sorted by location."""
    enabled = _normalize_rules(rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="E0",
                path=path,
                line=exc.lineno or 0,
                col=(exc.offset or 0),
                symbol="syntax",
                message=f"could not parse: {exc.msg}",
                hint="fix the syntax error before linting",
            )
        ]
    findings: List[Finding] = []
    if "D1" in enabled:
        findings.extend(check_determinism(tree, path, source))
    findings.extend(check_contracts(tree, path, enabled))
    findings.extend(check_parallel(tree, path, source, enabled))
    findings = apply_suppressions(
        findings, parse_suppressions(source), statement_extents(tree)
    )
    return sorted(_dedupe(findings), key=lambda f: f.sort_key)


def _dedupe(findings: Iterable[Finding]) -> List[Finding]:
    """One finding per ``(rule, path, line, col)`` — however many entry
    modules or rule passes reported it, it renders once."""
    seen: Set[tuple] = set()
    unique: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.col)
        if key in seen:
            continue
        seen.add(key)
        unique.append(finding)
    return unique


def lint_file(path: str, rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, rules=rules)


def _iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    seen: Set[str] = set()

    def once(candidate: str) -> Optional[str]:
        real = os.path.realpath(candidate)
        if real in seen:
            return None
        seen.add(real)
        return candidate

    for path in paths:
        if os.path.isfile(path):
            kept = once(path)
            if kept is not None:
                yield kept
            continue
        if not os.path.isdir(path):
            # a typo'd path must not lint as "no findings"
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in _SKIP_DIRS and not d.endswith(".egg-info")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    kept = once(os.path.join(root, name))
                    if kept is not None:
                        yield kept


def default_lint_paths() -> List[str]:
    """The existing entries of :data:`DEFAULT_LINT_PATHS` (cwd-relative)."""
    existing = [p for p in DEFAULT_LINT_PATHS if os.path.isdir(p)]
    return existing or ["."]


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint files and directory trees; returns all findings, sorted.

    ``paths=None`` (or empty) lints :data:`DEFAULT_LINT_PATHS`.  The same
    file reached through two entry paths (overlapping directories, a
    symlink, an explicit file inside a listed tree) is linted — and its
    findings rendered — exactly once.
    """
    if not paths:
        paths = default_lint_paths()
    enabled = _normalize_rules(rules)
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=enabled))
    return sorted(_dedupe(findings), key=lambda f: f.sort_key)
