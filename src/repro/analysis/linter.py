"""Linter orchestration: walk files, parse, run rules, filter, sort.

Public API:

- :func:`lint_source` — lint one module given as text (used by tests).
- :func:`lint_file` — lint one file on disk.
- :func:`lint_paths` — lint files and directory trees (what the CLI calls).

Rule selection is by id (``D1``, ``B1``, ``A1``, ``S1``); the ``E0`` parse
finding is always emitted for unparseable files so a lint run can never
silently skip code.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import (
    Finding,
    apply_suppressions,
    parse_suppressions,
)
from repro.analysis.rules_contract import check_contracts
from repro.analysis.rules_determinism import check_determinism

#: rule families enabled when no explicit selection is given
DEFAULT_RULES = ("D1", "B1", "A1", "S1")

#: directory names never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".ruff_cache"}


def _normalize_rules(rules: Optional[Iterable[str]]) -> Set[str]:
    if rules is None:
        return set(DEFAULT_RULES)
    normalized = {r.strip().upper() for r in rules if r and r.strip()}
    unknown = normalized - set(DEFAULT_RULES)
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {sorted(unknown)}; known: {list(DEFAULT_RULES)}"
        )
    return normalized


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns findings sorted by location."""
    enabled = _normalize_rules(rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="E0",
                path=path,
                line=exc.lineno or 0,
                col=(exc.offset or 0),
                symbol="syntax",
                message=f"could not parse: {exc.msg}",
                hint="fix the syntax error before linting",
            )
        ]
    findings: List[Finding] = []
    if "D1" in enabled:
        findings.extend(check_determinism(tree, path, source))
    findings.extend(check_contracts(tree, path, enabled))
    findings = apply_suppressions(findings, parse_suppressions(source))
    return sorted(findings, key=lambda f: f.sort_key)


def lint_file(path: str, rules: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, rules=rules)


def _iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            # a typo'd path must not lint as "no findings"
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in _SKIP_DIRS and not d.endswith(".egg-info")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_paths(
    paths: Sequence[str], rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint files and directory trees; returns all findings, sorted."""
    enabled = _normalize_rules(rules)
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=enabled))
    return sorted(findings, key=lambda f: f.sort_key)
