"""Rule families B1 / A1 / S1 — the BSP vertex-program contract.

These rules apply to vertex-program classes: any class whose bases name
``PregelProgram``/``ScaleGProgram`` (directly or via an intermediate
``*Program`` subclass).  The engine kind is inferred from base names or the
``compute`` context annotation (``ScaleGContext`` vs ``PregelContext``).

- **B1 (double-buffer violations)** — a program must read neighbour state
  only through the context (``ctx.neighbor_state``/``ctx.rank_of`` on
  ScaleG, ``ctx.messages`` on Pregel) and must never mutate the graph or
  reach into engine internals.  Reaching through (``ctx._engine``,
  ``ctx._states``, ``dgraph._adj``) both breaks the double buffer (reads
  can observe same-superstep writes) and silently evades the compute-cost
  meter the experiments bill against.
- **A1 (activation discipline)** — on the ScaleG engine a vertex runs only
  when something activated it; a program whose methods call ``set_state``
  but never ``activate`` can change state invisibly, which breaks fixpoint
  convergence (the re-evaluation cascade of Algorithm 2 never starts).
  Pregel programs are exempt: message delivery auto-activates recipients,
  so one-shot programs that only set state are legitimate there.
- **S1 (sync hygiene)** — mutable state objects are shared across
  supersteps (and, on ScaleG, with guest copies until the next sync), so a
  program must copy before mutating and republish via ``ctx.set_state``.
  In-place mutation of ``ctx.state`` (or any alias of it) corrupts the
  previous superstep's buffer for every concurrent reader.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.analysis.findings import Finding, make_finding

#: base-class names that mark a vertex program exactly
_PROGRAM_BASES = {"PregelProgram", "ScaleGProgram"}

#: method calls that mutate the graph topology
_GRAPH_MUTATORS = {"add_edge", "remove_edge", "add_vertex", "remove_vertex"}

#: method calls that mutate a container in place
_CONTAINER_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
}

#: methods a changed vertex uses to make its change visible
_ACTIVATION_CALLS = {"activate", "send", "broadcast"}


def _base_names(node: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


@dataclass
class ProgramClass:
    """A vertex-program class discovered in a module."""

    node: ast.ClassDef
    kind: str  # "scaleg" | "pregel" | "unknown"


def discover_program_classes(tree: ast.AST) -> List[ProgramClass]:
    """Find vertex-program classes and classify their engine kind."""
    programs: List[ProgramClass] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = _base_names(node)
        if not any(b in _PROGRAM_BASES or b.endswith("Program") for b in bases):
            continue
        kind = "unknown"
        joined = " ".join(bases)
        if "ScaleG" in joined:
            kind = "scaleg"
        elif "Pregel" in joined:
            kind = "pregel"
        else:
            annotation = _compute_ctx_annotation(node)
            if annotation and "ScaleG" in annotation:
                kind = "scaleg"
            elif annotation and "Pregel" in annotation:
                kind = "pregel"
        programs.append(ProgramClass(node=node, kind=kind))
    return programs


def _compute_ctx_annotation(node: ast.ClassDef) -> Optional[str]:
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "compute":
            params = item.args.args
            if len(params) >= 2 and params[1].annotation is not None:
                return ast.dump(params[1].annotation)
    return None


def _ctx_param_name(func: ast.FunctionDef) -> Optional[str]:
    """The context parameter of a program method, if any."""
    for arg in func.args.args[1:]:  # skip self
        annotation = arg.annotation
        if annotation is not None and "Context" in ast.dump(annotation):
            return arg.arg
        if arg.arg == "ctx":
            return arg.arg
    return None


# ---------------------------------------------------------------------------
# B1 — double-buffer violations
# ---------------------------------------------------------------------------
def _check_b1(program: ProgramClass, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(program.node):
        if isinstance(node, ast.Attribute):
            attr = node.attr
            if (
                attr.startswith("_")
                and not attr.startswith("__")
                and not (isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"))
            ):
                findings.append(
                    make_finding(
                        "B1",
                        path,
                        node,
                        attr,
                        f"reach-through to private '{attr}' bypasses the "
                        "context API (double buffer + compute-cost meter)",
                    )
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _GRAPH_MUTATORS:
                findings.append(
                    make_finding(
                        "B1",
                        path,
                        node,
                        attr,
                        f"vertex program calls graph mutator '{attr}' — "
                        "topology changes belong to the update path, not "
                        "compute",
                    )
                )
            elif attr in ("add", "update", "discard", "remove", "clear"):
                # mutating the live neighbour view returned by neighbors()
                receiver = node.func.value
                if (
                    isinstance(receiver, ast.Call)
                    and isinstance(receiver.func, ast.Attribute)
                    and receiver.func.attr == "neighbors"
                ):
                    findings.append(
                        make_finding(
                            "B1",
                            path,
                            node,
                            f"neighbors().{attr}",
                            "mutates the live neighbour view returned by "
                            "neighbors()",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# A1 — activation discipline (ScaleG only)
# ---------------------------------------------------------------------------
def _check_a1(program: ProgramClass, path: str) -> List[Finding]:
    if program.kind != "scaleg":
        return []
    set_state_calls: List[ast.Call] = []
    has_activation = False
    for node in ast.walk(program.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "set_state":
                set_state_calls.append(node)
            elif node.func.attr in _ACTIVATION_CALLS:
                has_activation = True
    if set_state_calls and not has_activation:
        first = min(set_state_calls, key=lambda n: (n.lineno, n.col_offset))
        return [
            make_finding(
                "A1",
                path,
                first,
                program.node.name,
                f"'{program.node.name}' sets vertex state but never calls "
                "ctx.activate — on ScaleG the change is invisible to "
                "neighbours and convergence breaks",
            )
        ]
    return []


# ---------------------------------------------------------------------------
# S1 — sync hygiene (no in-place mutation of shared state)
# ---------------------------------------------------------------------------
def _is_state_expr(node, ctx_name: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "state"
        and isinstance(node.value, ast.Name)
        and node.value.id == ctx_name
    )


def _collect_state_aliases(func: ast.FunctionDef, ctx_name: str) -> Set[str]:
    """Names provably aliasing ``ctx.state`` (or a mutable part of it).

    ``x = ctx.state`` and ``y = x["nbr"]`` alias; wrapping the right-hand
    side in any call (``dict(...)``, ``copy.deepcopy(...)``, ``sorted(...)``)
    copies, so the target is not an alias.  Names rebound to non-aliases
    anywhere in the method are excluded (order-free, conservative).
    """

    def is_alias_expr(node, aliases: Set[str]) -> bool:
        if _is_state_expr(node, ctx_name):
            return True
        if isinstance(node, ast.Name):
            return node.id in aliases
        if isinstance(node, (ast.Subscript, ast.Attribute)):
            return is_alias_expr(node.value, aliases)
        return False

    evidence: Set[str] = set()
    tainted: Set[str] = set()
    for _ in range(2):
        for stmt in ast.walk(func):
            targets: Sequence = ()
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if is_alias_expr(value, evidence):
                    evidence.add(target.id)
                else:
                    tainted.add(target.id)
    return evidence - tainted


def _check_s1(program: ProgramClass, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for item in program.node.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        ctx_name = _ctx_param_name(item)
        if ctx_name is None:
            continue
        aliases = _collect_state_aliases(item, ctx_name)

        def is_shared(node) -> bool:
            if _is_state_expr(node, ctx_name):
                return True
            if isinstance(node, ast.Name):
                return node.id in aliases
            if isinstance(node, (ast.Subscript, ast.Attribute)):
                return is_shared(node.value)
            return False

        for node in ast.walk(item):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CONTAINER_MUTATORS
                and is_shared(node.func.value)
            ):
                findings.append(
                    make_finding(
                        "S1",
                        path,
                        node,
                        node.func.attr,
                        f"in-place '{node.func.attr}' on (an alias of) "
                        "ctx.state mutates the shared previous-superstep "
                        "buffer",
                    )
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript) and is_shared(target.value):
                        findings.append(
                            make_finding(
                                "S1",
                                path,
                                node,
                                "subscript-store",
                                "subscript assignment into (an alias of) "
                                "ctx.state mutates the shared "
                                "previous-superstep buffer",
                            )
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and is_shared(target.value):
                        findings.append(
                            make_finding(
                                "S1",
                                path,
                                node,
                                "del",
                                "deletion from (an alias of) ctx.state "
                                "mutates the shared previous-superstep "
                                "buffer",
                            )
                        )
    return findings


def check_contracts(
    tree: ast.AST, path: str, rules: Set[str]
) -> List[Finding]:
    """Run the enabled B1/A1/S1 rules over one parsed module."""
    findings: List[Finding] = []
    for program in discover_program_classes(tree):
        if "B1" in rules:
            findings.extend(_check_b1(program, path))
        if "A1" in rules:
            findings.extend(_check_a1(program, path))
        if "S1" in rules:
            findings.extend(_check_s1(program, path))
    return findings
