"""Static and runtime correctness tooling for vertex programs and engines.

The paper's central results (Theorems 4.1/4.2/6.1) are *determinism*
claims: OIMIS/DOIMIS converge to the unique greedy fixpoint of the total
order ``≺`` regardless of execution or update order.  The proofs lean on a
coding discipline the engines cannot enforce by construction — deterministic
neighbour iteration, double-buffered state reads, activate-on-change,
no cross-superstep aliasing of mutable state.  This package enforces that
discipline three ways:

- :mod:`repro.analysis.linter` — an AST-based static linter over vertex
  programs and engine modules, reporting typed :class:`~repro.analysis.findings.Finding`
  objects for the rule families D1 (non-deterministic iteration), B1
  (double-buffer violations), A1 (activation discipline), S1 (sync
  hygiene) and the parallel-safety P family — P1 (sweep purity), P2
  (barrier ordering), P3 (frame hygiene), P4 (merge-once) from
  :mod:`repro.analysis.parallel.rules`.  Exposed on the CLI as
  ``repro-mis lint``.
- :mod:`repro.analysis.runtime` — an opt-in :class:`ContractChecker` the
  engines call at superstep barriers (double-buffer isolation) and at
  convergence (independence + maximality of the reported set).  Enable with
  ``REPRO_CONTRACTS=1`` or an explicit ``contracts=`` engine argument.
- :mod:`repro.analysis.parallel` — an opt-in :class:`RaceSanitizer` that
  wraps the execution backend to record per-worker read/write vertex sets
  each superstep and flag races (write–write overlap, non-owned writes,
  mid-superstep commits, meter double-merges) with a keyed-hash trace log.
  Enable with ``REPRO_SANITIZE=1`` or an explicit ``sanitize=`` engine
  argument; drive over chaos scenarios with ``repro-mis sanitize``.
"""

from repro.analysis.findings import (
    RULES,
    Finding,
    Rule,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.linter import (
    DEFAULT_LINT_PATHS,
    DEFAULT_RULES,
    default_lint_paths,
    lint_paths,
    lint_source,
)
from repro.analysis.parallel.sanitizer import (
    RaceSanitizer,
    SanitizedBackend,
    resolve_sanitizer,
    sanitize_enabled,
)
from repro.analysis.runtime import (
    ContractChecker,
    contracts_enabled,
    resolve_contracts,
)

__all__ = [
    "RULES",
    "Rule",
    "Finding",
    "render_text",
    "render_json",
    "render_sarif",
    "DEFAULT_RULES",
    "DEFAULT_LINT_PATHS",
    "default_lint_paths",
    "lint_paths",
    "lint_source",
    "ContractChecker",
    "contracts_enabled",
    "resolve_contracts",
    "RaceSanitizer",
    "SanitizedBackend",
    "resolve_sanitizer",
    "sanitize_enabled",
]
