"""Static and runtime correctness tooling for vertex programs.

The paper's central results (Theorems 4.1/4.2/6.1) are *determinism*
claims: OIMIS/DOIMIS converge to the unique greedy fixpoint of the total
order ``≺`` regardless of execution or update order.  The proofs lean on a
coding discipline the engines cannot enforce by construction — deterministic
neighbour iteration, double-buffered state reads, activate-on-change,
no cross-superstep aliasing of mutable state.  This package enforces that
discipline two ways:

- :mod:`repro.analysis.linter` — an AST-based static linter over vertex
  programs and engine modules, reporting typed :class:`~repro.analysis.findings.Finding`
  objects for the rule families D1 (non-deterministic iteration), B1
  (double-buffer violations), A1 (activation discipline) and S1 (sync
  hygiene).  Exposed on the CLI as ``repro-mis lint``.
- :mod:`repro.analysis.runtime` — an opt-in :class:`ContractChecker` the
  engines call at superstep barriers (double-buffer isolation) and at
  convergence (independence + maximality of the reported set).  Enable with
  ``REPRO_CONTRACTS=1`` or an explicit ``contracts=`` engine argument.
"""

from repro.analysis.findings import (
    RULES,
    Finding,
    Rule,
    render_json,
    render_text,
)
from repro.analysis.linter import DEFAULT_RULES, lint_paths, lint_source
from repro.analysis.runtime import (
    ContractChecker,
    contracts_enabled,
    resolve_contracts,
)

__all__ = [
    "RULES",
    "Rule",
    "Finding",
    "render_text",
    "render_json",
    "DEFAULT_RULES",
    "lint_paths",
    "lint_source",
    "ContractChecker",
    "contracts_enabled",
    "resolve_contracts",
]
