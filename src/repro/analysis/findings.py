"""Typed lint findings, the rule registry, suppressions, and rendering.

A :class:`Finding` pins one rule violation to ``path:line:col`` with the
offending symbol and a fix hint.  Findings are value objects so tests can
assert on exact ``(rule, line)`` pairs and the CLI can render them as text
or JSON without reformatting.

Suppression: a violation is silenced by a trailing comment on its line::

    for v in candidates:  # repro-lint: disable=D1
    x = hash(key)         # repro-lint: disable=all
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Set


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule family."""

    id: str
    name: str
    summary: str
    hint: str


#: registry of every rule the linter can emit, keyed by rule id
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="D1",
            name="non-deterministic-iteration",
            summary=(
                "iteration over an unordered set (or use of hash()/id()/"
                "unseeded random) where order can leak into results"
            ),
            hint=(
                "wrap the iterable in sorted(...) (by the paper's order ≺ "
                "where relevant); seed randomness via random.Random(seed)"
            ),
        ),
        Rule(
            id="B1",
            name="double-buffer-violation",
            summary=(
                "vertex program reaches past the context API (engine/state "
                "internals, graph mutation), bypassing the double buffer "
                "and the compute-cost meter"
            ),
            hint=(
                "read neighbours only via ctx.neighbor_state / ctx.rank_of "
                "(ScaleG) or ctx.messages (Pregel); never touch _engine, "
                "_states, or mutate the graph from compute"
            ),
        ),
        Rule(
            id="A1",
            name="activation-discipline",
            summary=(
                "ScaleG program sets vertex state but never activates: a "
                "state change invisible to neighbours breaks fixpoint "
                "convergence (the engine never auto-activates)"
            ),
            hint=(
                "on state change, call ctx.activate(v) for every neighbour "
                "the change can influence (cf. Lemmas 5.1/5.2 for the "
                "+LR/+SS filters)"
            ),
        ),
        Rule(
            id="S1",
            name="sync-hygiene",
            summary=(
                "in-place mutation of the (aliased) vertex state object: "
                "mutable state shared across supersteps must be copied "
                "before modification, then republished via ctx.set_state"
            ),
            hint=(
                "copy first (e.g. new = dict(ctx.state)), mutate the copy, "
                "then ctx.set_state(new)"
            ),
        ),
        Rule(
            id="E0",
            name="parse-error",
            summary="file could not be parsed as Python",
            hint="fix the syntax error before linting",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    hint: str = field(default="")

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def format(self) -> str:
        hint = f"  [fix: {self.hint}]" if self.hint else ""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"({RULES[self.rule].name}) {self.message}{hint}"
        )


def make_finding(rule: str, path: str, node, symbol: str, message: str) -> Finding:
    """Build a finding from an AST node, inheriting the rule's fix hint."""
    return Finding(
        rule=rule,
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0) + 1,
        symbol=symbol,
        message=message,
        hint=RULES[rule].hint,
    )


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (``None`` means all rules)."""
    suppressed: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = {tok.strip().upper() for tok in match.group(1).split(",") if tok.strip()}
        suppressed[lineno] = None if "ALL" in rules else rules
    return suppressed


def apply_suppressions(
    findings: Sequence[Finding], suppressed: Dict[int, Optional[Set[str]]]
) -> List[Finding]:
    """Drop findings whose line carries a matching disable comment."""
    kept: List[Finding] = []
    for finding in findings:
        rules = suppressed.get(finding.line, ())
        if rules is None or finding.rule in rules:
            continue
        kept.append(finding)
    return kept


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [finding.format() for finding in findings]
    if findings:
        per_rule: Dict[str, int] = {}
        for finding in findings:
            per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(f"{r}={n}" for r, n in sorted(per_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable field names, sorted input order)."""
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
        },
        indent=2,
    )
