"""Typed lint findings, the rule registry, suppressions, and rendering.

A :class:`Finding` pins one rule violation to ``path:line:col`` with the
offending symbol and a fix hint.  Findings are value objects so tests can
assert on exact ``(rule, line)`` pairs and the CLI can render them as text
or JSON without reformatting.

Suppression: a violation is silenced by a trailing comment on its line::

    for v in candidates:  # repro-lint: disable=D1
    x = hash(key)         # repro-lint: disable=all
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Set


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule family."""

    id: str
    name: str
    summary: str
    hint: str


#: registry of every rule the linter can emit, keyed by rule id
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            id="D1",
            name="non-deterministic-iteration",
            summary=(
                "iteration over an unordered set (or use of hash()/id()/"
                "unseeded random) where order can leak into results"
            ),
            hint=(
                "wrap the iterable in sorted(...) (by the paper's order ≺ "
                "where relevant); seed randomness via random.Random(seed)"
            ),
        ),
        Rule(
            id="B1",
            name="double-buffer-violation",
            summary=(
                "vertex program reaches past the context API (engine/state "
                "internals, graph mutation), bypassing the double buffer "
                "and the compute-cost meter"
            ),
            hint=(
                "read neighbours only via ctx.neighbor_state / ctx.rank_of "
                "(ScaleG) or ctx.messages (Pregel); never touch _engine, "
                "_states, or mutate the graph from compute"
            ),
        ),
        Rule(
            id="A1",
            name="activation-discipline",
            summary=(
                "ScaleG program sets vertex state but never activates: a "
                "state change invisible to neighbours breaks fixpoint "
                "convergence (the engine never auto-activates)"
            ),
            hint=(
                "on state change, call ctx.activate(v) for every neighbour "
                "the change can influence (cf. Lemmas 5.1/5.2 for the "
                "+LR/+SS filters)"
            ),
        ),
        Rule(
            id="S1",
            name="sync-hygiene",
            summary=(
                "in-place mutation of the (aliased) vertex state object: "
                "mutable state shared across supersteps must be copied "
                "before modification, then republished via ctx.set_state"
            ),
            hint=(
                "copy first (e.g. new = dict(ctx.state)), mutate the copy, "
                "then ctx.set_state(new)"
            ),
        ),
        Rule(
            id="P1",
            name="sweep-purity",
            summary=(
                "worker-side sweep code mutates engine/graph/metrics state "
                "it did not create; writes must flow only through the "
                "returned sweep delta"
            ),
            hint=(
                "build the write into the ScaleGSweep/PregelSweep result "
                "(new_states, changed, requests) and let the engine apply "
                "it at the barrier; keep worker-local scratch self-rooted"
            ),
        ),
        Rule(
            id="P2",
            name="barrier-ordering",
            summary=(
                "barrier reduce iterates worker/partition replies in "
                "insertion or hash order; the fold must run in sorted "
                "key order to stay bit-identical to the inline sweep"
            ),
            hint=(
                "iterate sorted(d) or sorted(d.items()); never fold "
                "d.values() — the key is lost and the order can never be "
                "reimposed"
            ),
        ),
        Rule(
            id="P3",
            name="frame-hygiene",
            summary=(
                "nondeterministic or unpicklable material on the worker "
                "side of a pickle frame: closures, open handles, locks, "
                "os.environ/wall-clock/unseeded-random reads"
            ),
            hint=(
                "ship only module-level functions/classes and plain data; "
                "draw randomness from a seeded generator or keyed hash "
                "carried in the frame; keep clocks and environ on the "
                "master"
            ),
        ),
        Rule(
            id="P4",
            name="merge-once",
            summary=(
                "a RunMetrics.merge_delta site is reachable more than once "
                "per worker per superstep (nested loops or a looped call "
                "into a looping merger), double-folding a worker's meters"
            ),
            hint=(
                "merge each worker's delta exactly once per barrier, in "
                "ascending worker order; hoist the merge out of inner "
                "loops or guard the call path"
            ),
        ),
        Rule(
            id="E0",
            name="parse-error",
            summary="file could not be parsed as Python",
            hint="fix the syntax error before linting",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    hint: str = field(default="")

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def format(self) -> str:
        hint = f"  [fix: {self.hint}]" if self.hint else ""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"({RULES[self.rule].name}) {self.message}{hint}"
        )


def make_finding(rule: str, path: str, node, symbol: str, message: str) -> Finding:
    """Build a finding from an AST node, inheriting the rule's fix hint."""
    return Finding(
        rule=rule,
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0) + 1,
        symbol=symbol,
        message=message,
        hint=RULES[rule].hint,
    )


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (``None`` means all rules)."""
    suppressed: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = {tok.strip().upper() for tok in match.group(1).split(",") if tok.strip()}
        suppressed[lineno] = None if "ALL" in rules else rules
    return suppressed


def statement_extents(tree) -> Dict[int, int]:
    """Map continuation lines to the first physical line of their statement.

    A disable comment lives on the *first* line of a wrapped statement, but
    a finding inside the wrapped expression anchors to the line of its own
    AST node — possibly a continuation line.  This maps every continuation
    line of a multi-line statement to the statement's first line, with the
    *innermost* covering statement winning, so a comment on a compound
    header (``for``/``with``) covers its wrapped header expression but
    never leaks into the body statements (each maps to its own first line).
    """
    import ast

    spans = []
    starts: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        starts.add(node.lineno)
        end = getattr(node, "end_lineno", None) or node.lineno
        if end > node.lineno:
            spans.append((node.lineno, end))
    extents: Dict[int, int] = {}
    # ascending start order: inner (later-starting) statements overwrite
    # the outer statement's claim on their lines
    for start, end in sorted(spans):
        for line in range(start + 1, end + 1):
            extents[line] = start
    # a line that begins its own statement is never a continuation line
    for line in sorted(starts):
        extents.pop(line, None)
    return extents


def apply_suppressions(
    findings: Sequence[Finding],
    suppressed: Dict[int, Optional[Set[str]]],
    extents: Optional[Dict[int, int]] = None,
) -> List[Finding]:
    """Drop findings silenced by a matching disable comment.

    A comment silences findings on its own line and — when ``extents`` (from
    :func:`statement_extents`) is given — findings anchored to continuation
    lines of the statement it heads.
    """

    def silenced(line: int, rule: str) -> bool:
        rules = suppressed.get(line, ())
        return rules is None or rule in rules

    kept: List[Finding] = []
    for finding in findings:
        if silenced(finding.line, finding.rule):
            continue
        if extents:
            first = extents.get(finding.line)
            if first is not None and silenced(first, finding.rule):
                continue
        kept.append(finding)
    return kept


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [finding.format() for finding in findings]
    if findings:
        per_rule: Dict[str, int] = {}
        for finding in findings:
            per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(f"{r}={n}" for r, n in sorted(per_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable field names, sorted input order)."""
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
        },
        indent=2,
    )


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 report (what CI uses to annotate PR diffs).

    Built from the same :class:`Finding` objects as the text/JSON
    renderers — the finding stays the single source of truth; this only
    reshapes it into the SARIF ``runs[].results[]`` schema.  Every
    registered rule is declared in the driver's rule table so viewers can
    show the summary/hint even for rules with no findings in this run.
    """
    results = []
    for finding in findings:
        message = finding.message
        if finding.hint:
            message = f"{message} [fix: {finding.hint}]"
        results.append(
            {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": max(finding.col, 1),
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproLint/v1": (
                        f"{finding.rule}:{finding.path}:"
                        f"{finding.line}:{finding.col}:{finding.symbol}"
                    ),
                },
            }
        )
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                                "help": {"text": rule.hint},
                            }
                            for rule in RULES.values()
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
