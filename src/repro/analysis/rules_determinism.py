"""Rule family D1 — non-deterministic iteration and hashing.

Theorem 4.2's order-independence makes the *final fixpoint* immune to
execution order, but the cost meters, message/sync schedules, and every
intermediate structure are not: a ``for`` loop over a raw ``set`` whose body
does anything order-sensitive makes runs irreproducible, and turns latent
bugs (e.g. an activation filter that strands a conflict only under one
interleaving) into heisenbugs.  D1 therefore flags:

- ``for`` loops (and list/generator comprehensions feeding order-sensitive
  consumers) over provably unordered iterables, unless the loop body is
  itself order-insensitive (pure set accumulation / counters / constant
  returns);
- ``hash()`` and ``id()`` calls — both vary across processes
  (``PYTHONHASHSEED``, allocator), so any decision based on them is
  irreproducible;
- unseeded module-level ``random`` calls (``random.random()``,
  ``from random import shuffle; shuffle(...)``); seeded ``random.Random``
  instances are the sanctioned source of randomness.

The fix for iteration findings is ``sorted(...)`` — by vertex id, or by the
paper's total order ``≺`` where rank matters.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.findings import Finding, make_finding
from repro.analysis.settypes import SetNameCollector, expression_is_set

#: callables that consume an iterable order-insensitively
_ORDER_FREE_CONSUMERS = {
    "any", "all", "sum", "min", "max", "len", "sorted", "set", "frozenset",
    "Counter", "dict",
}

#: set-mutator methods allowed in an order-insensitive loop body
_ACCUMULATORS = {"add", "update", "discard"}

#: module-level ``random`` functions that are allowed (seeded generators)
_RANDOM_ALLOWED = {"Random", "SystemRandom", "seed", "getstate", "setstate"}


def _source(node, source: str) -> str:
    try:
        segment = ast.get_source_segment(source, node)
    except Exception:  # pragma: no cover - defensive
        segment = None
    if not segment:
        return "<expr>"
    segment = " ".join(segment.split())
    return segment if len(segment) <= 60 else segment[:57] + "..."


def _returns_constant(node: ast.Return) -> bool:
    return node.value is None or isinstance(node.value, ast.Constant)


def _body_order_insensitive(stmts) -> bool:
    """Whether executing ``stmts`` in any order yields identical effects.

    Recognized order-insensitive statements: set accumulation
    (``s.add/update/discard``), augmented assignments (counters), guards
    (``if``/``continue``/``pass``/``assert``), constant returns, raises, and
    nested loops built from the same.  Anything else — notably subscript
    assignment, list appends, sends — is treated as order-sensitive.
    """
    for stmt in stmts:
        if isinstance(stmt, (ast.Continue, ast.Pass, ast.Raise, ast.Assert)):
            continue
        if isinstance(stmt, ast.AugAssign):
            continue
        if isinstance(stmt, ast.Return):
            if _returns_constant(stmt):
                continue
            return False
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Constant):  # docstring
                continue
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _ACCUMULATORS
            ):
                continue
            return False
        if isinstance(stmt, ast.If):
            if _body_order_insensitive(stmt.body) and _body_order_insensitive(
                stmt.orelse
            ):
                continue
            return False
        if isinstance(stmt, (ast.For, ast.While)):
            if _body_order_insensitive(stmt.body) and _body_order_insensitive(
                stmt.orelse
            ):
                continue
            return False
        return False
    return True


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.findings: List[Finding] = []
        self._scope_known: List[Set[str]] = [set()]
        self._parents: Dict[ast.AST, ast.AST] = {}
        self._random_names: Set[str] = set()

    # -- scope handling -------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self._scope_known = [SetNameCollector(node).known]
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        self._scope_known.append(SetNameCollector(node).known)
        self.generic_visit(node)
        self._scope_known.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @property
    def _known(self) -> Set[str]:
        return self._scope_known[-1]

    # -- imports (for ``from random import shuffle``) --------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_ALLOWED:
                    self._random_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- iteration ------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if expression_is_set(node.iter, self._known) and not _body_order_insensitive(
            node.body
        ):
            self.findings.append(
                make_finding(
                    "D1",
                    self.path,
                    node,
                    _source(node.iter, self.source),
                    "iteration over unordered set "
                    f"'{_source(node.iter, self.source)}' with an "
                    "order-sensitive body",
                )
            )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        parent = self._parents.get(node)
        if isinstance(parent, ast.Call) and (
            (
                isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_FREE_CONSUMERS
            )
            or (
                # s.update(genexp) / s.add / s.discard: set accumulation is
                # order-free, matching the leniency _body_order_insensitive
                # grants the equivalent for-loop body
                isinstance(parent.func, ast.Attribute)
                and parent.func.attr in _ACCUMULATORS
            )
        ):
            self.generic_visit(node)
            return
        self._check_comprehension(node, "generator")
        self.generic_visit(node)

    def _check_comprehension(self, node, kind: str) -> None:
        for gen in node.generators:
            if expression_is_set(gen.iter, self._known):
                self.findings.append(
                    make_finding(
                        "D1",
                        self.path,
                        node,
                        _source(gen.iter, self.source),
                        f"{kind} built by iterating unordered set "
                        f"'{_source(gen.iter, self.source)}'",
                    )
                )

    # -- hashing / randomness -------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("hash", "id") and node.args:
                self.findings.append(
                    make_finding(
                        "D1",
                        self.path,
                        node,
                        func.id,
                        f"call to {func.id}() — value varies across "
                        "processes (PYTHONHASHSEED / allocator)",
                    )
                )
            elif func.id in self._random_names:
                self.findings.append(
                    make_finding(
                        "D1",
                        self.path,
                        node,
                        func.id,
                        f"unseeded random.{func.id}() call — use a seeded "
                        "random.Random instance",
                    )
                )
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr not in _RANDOM_ALLOWED
        ):
            self.findings.append(
                make_finding(
                    "D1",
                    self.path,
                    node,
                    f"random.{func.attr}",
                    f"unseeded random.{func.attr}() call — use a seeded "
                    "random.Random instance",
                )
            )
        self.generic_visit(node)


def check_determinism(tree: ast.AST, path: str, source: str) -> List[Finding]:
    """Run the D1 rule family over one parsed module."""
    visitor = _DeterminismVisitor(path, source)
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            visitor._parents[child] = parent
    visitor.visit(tree)
    return visitor.findings
