"""Parallel-safety analysis: static P-family rules + the race sanitizer.

Two halves of one guard-rail for the runtime layer:

- :mod:`repro.analysis.parallel.rules` — the **P family** of static AST
  rules (P1 sweep purity, P2 barrier ordering, P3 frame hygiene, P4
  merge-once), run by the linter over the engines and execution backends.
- :mod:`repro.analysis.parallel.sanitizer` — the **RaceSanitizer**, an
  opt-in (``REPRO_SANITIZE=1``) backend wrapper that records per-worker
  read/write vertex sets each superstep and flags races at runtime, with
  a keyed-hash trace log that replays under any ``PYTHONHASHSEED``.
- :mod:`repro.analysis.parallel.sanitize` — the ``repro-mis sanitize``
  driver: chaos workloads under the sanitizer, asserting zero races and
  bit-identity with the inline reference.
"""

from repro.analysis.parallel.rules import check_parallel
from repro.analysis.parallel.sanitizer import (
    RaceSanitizer,
    SanitizedBackend,
    SuperstepTrace,
    resolve_sanitizer,
    sanitize_enabled,
)

#: the sanitize driver imports the chaos harness (maintainer, datasets) —
#: load it lazily so engine construction, which resolves the sanitizer
#: through this package, never pulls the whole bench stack in
_DRIVER_EXPORTS = ("SanitizeCaseResult", "run_sanitize_case", "sanitize_suite")


def __getattr__(name):
    if name in _DRIVER_EXPORTS:
        from repro.analysis.parallel import sanitize

        return getattr(sanitize, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "check_parallel",
    "RaceSanitizer",
    "SanitizedBackend",
    "SuperstepTrace",
    "resolve_sanitizer",
    "sanitize_enabled",
    "SanitizeCaseResult",
    "run_sanitize_case",
    "sanitize_suite",
]
