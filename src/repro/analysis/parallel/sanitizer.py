"""Opt-in superstep race sanitizer for the execution backends.

The P-family static rules prove what the AST can see; this module catches
the rest at runtime, the way :class:`~repro.analysis.runtime.ContractChecker`
does for BSP state semantics.  A :class:`RaceSanitizer` wraps any
:class:`~repro.runtime.base.ExecutionBackend` in a
:class:`SanitizedBackend` that records per-worker read/write vertex sets
each superstep and flags, as :class:`~repro.errors.RaceViolation`:

- **mid-superstep-commit** — the sweep's read set (active vertices plus,
  on ScaleG, their neighbours) changed between dispatch and return.  A
  worker committed a write before the barrier instead of returning it in
  the sweep delta — exactly the mutation rule P1 bans statically.
- **write-write-overlap** — two workers returned a write for the same
  vertex in one sweep.  The barrier reduce would silently keep one.
- **non-owned-write** — a sweep returned a write (or force-sync) for a
  vertex that was never dispatched, i.e. a worker wrote into a partition
  slice it does not own this superstep.
- **meter-double-merge** — one logical meter was folded through
  :meth:`~repro.pregel.metrics.RunMetrics.merge_delta` more times between
  two barriers than there are logical workers; some worker's delta merged
  twice, which breaks bit-identity with the inline accumulation order.

Every checked superstep appends a :class:`SuperstepTrace` whose digests
are keyed ``blake2b`` hashes over *sorted* vertex/state material, so a
trace — and :meth:`RaceSanitizer.trace_digest` over a whole run — replays
byte-identically under any ``PYTHONHASHSEED``.  Comparing two trace logs
localizes a divergence to the first superstep whose read or write digest
differs.

Enabling mirrors the contract checker: pass ``sanitize=True`` (or a
:class:`RaceSanitizer`) to an engine/maintainer constructor, or set
``REPRO_SANITIZE=1`` process-wide.  ``strict=True`` (default) raises on
the first violation; ``strict=False`` collects into
:attr:`RaceSanitizer.violations` so a sweep can survey a whole run.
"""

from __future__ import annotations

import os
from hashlib import blake2b
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.errors import RaceViolation
from repro.runtime.base import ExecutionBackend, PregelSweep, ScaleGSweep

_ENV_FLAG = "REPRO_SANITIZE"
_TRUTHY = {"1", "true", "yes", "on"}

#: keyed-hash domain for every trace digest — a fixed key (not the process
#: hash seed) is what makes traces replayable under any ``PYTHONHASHSEED``
_TRACE_KEY = b"repro-race"
_DIGEST_SIZE = 8


def sanitize_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether the ``REPRO_SANITIZE`` environment flag turns checking on."""
    env = os.environ if environ is None else environ
    return env.get(_ENV_FLAG, "").strip().lower() in _TRUTHY


def resolve_sanitizer(
    sanitize: Union[None, bool, "RaceSanitizer"],
) -> Optional["RaceSanitizer"]:
    """Normalize an engine's ``sanitize`` argument to a sanitizer or None.

    ``None`` defers to the ``REPRO_SANITIZE`` environment flag; ``True``
    creates a default (strict) sanitizer; ``False`` disables checking
    regardless of the environment; a :class:`RaceSanitizer` instance is
    used as-is (and may be shared across engines to accumulate one trace).
    """
    if sanitize is None:
        return RaceSanitizer() if sanitize_enabled() else None
    if sanitize is True:
        return RaceSanitizer()
    if sanitize is False:
        return None
    return sanitize


def _digest(material: Iterable[str]) -> str:
    """Keyed hash of an *already canonically ordered* string stream."""
    h = blake2b(key=_TRACE_KEY, digest_size=_DIGEST_SIZE)
    for part in material:
        h.update(part.encode("utf-8", "backslashreplace"))
        h.update(b"\x00")
    return h.hexdigest()


def _state_material(states: Dict[int, Any], read_set: Iterable[int]) -> List[str]:
    """Canonical (sorted, seed-independent) material for a read-set hash.

    ``repr`` of the stock states (ints, tuples, enums) is stable across
    hash seeds; sets are sorted before rendering so set-typed states
    cannot leak iteration order into the digest.
    """
    parts: List[str] = []
    for u in sorted(read_set):
        state = states.get(u, "<absent>")
        if isinstance(state, (set, frozenset)):
            state = sorted(state)
        parts.append(f"{u}={state!r}")
    return parts


@dataclass
class SuperstepTrace:
    """One checked superstep's keyed-hash record (replayable evidence)."""

    superstep: int
    mode: str  # "scaleg" | "pregel"
    #: keyed hash of the dispatched read set's (vertex, state) pairs
    read_digest: str
    #: logical worker -> keyed hash of its sorted written-vertex ids
    write_digests: Dict[int, str] = field(default_factory=dict)
    active_count: int = 0
    write_count: int = 0
    #: meter -> merge_delta folds observed between this barrier and the last
    merge_counts: Dict[str, int] = field(default_factory=dict)
    #: whether this sweep's barrier committed (False = rolled back/replayed)
    committed: bool = False

    def digest(self) -> str:
        """One keyed hash summarizing the whole entry."""
        return _digest(
            [
                str(self.superstep),
                self.mode,
                self.read_digest,
                *(
                    f"{w}:{d}"
                    for w, d in sorted(self.write_digests.items())
                ),
                str(self.active_count),
                str(self.write_count),
                *(
                    f"{name}={n}"
                    for name, n in sorted(self.merge_counts.items())
                ),
                "C" if self.committed else "A",
            ]
        )


class RaceSanitizer:
    """Records per-superstep read/write evidence and flags races.

    One sanitizer may be shared across engines and runs; counters
    (:attr:`supersteps_checked`, :attr:`runs_checked`) let tests assert it
    actually ran, :attr:`trace` holds the keyed-hash log, and
    :attr:`violations` collects findings when ``strict=False``.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.supersteps_checked = 0
        self.runs_checked = 0
        self.trace: List[SuperstepTrace] = []
        self.violations: List[RaceViolation] = []
        self._num_workers = 0
        self._merge_counts: Dict[str, int] = {}
        self._watched: List[Tuple[Any, Any]] = []

    # -- wiring ----------------------------------------------------------
    def wrap(self, backend: ExecutionBackend) -> "SanitizedBackend":
        """The backend the engine should drive instead of ``backend``."""
        if isinstance(backend, SanitizedBackend):
            return backend
        return SanitizedBackend(backend, self)

    def begin_engine_run(self, metrics, num_workers: int) -> None:
        """Called by an engine at run entry: arm the meter watch."""
        self._num_workers = num_workers
        self._merge_counts = {}
        self.watch_metrics(metrics)
        self.runs_checked += 1

    def end_engine_run(self, metrics) -> None:
        """Disarm the meter watch installed by :meth:`begin_engine_run`."""
        self.release_metrics(metrics)

    def watch_metrics(self, metrics) -> None:
        """Count ``merge_delta`` folds on ``metrics`` between barriers.

        Instruments by shadowing the bound method with an instance
        attribute — the class stays untouched, and :meth:`release_metrics`
        restores the instance exactly.
        """
        for watched, _ in self._watched:
            if watched is metrics:
                return
        original = metrics.merge_delta
        counts = self._merge_counts

        def counted_merge_delta(delta):
            for name in delta:
                counts[name] = counts.get(name, 0) + 1
            return original(delta)

        metrics.merge_delta = counted_merge_delta
        self._watched.append((metrics, original))

    def release_metrics(self, metrics) -> None:
        for i, (watched, _original) in enumerate(self._watched):
            if watched is metrics:
                del self._watched[i]
                # the shadow lives on the instance; removing it re-exposes
                # the class method
                try:
                    del metrics.merge_delta
                except AttributeError:  # pragma: no cover - already clean
                    pass
                return

    # -- evidence --------------------------------------------------------
    def trace_digest(self) -> str:
        """Keyed hash over the whole trace log (replay fingerprint)."""
        return _digest(entry.digest() for entry in self.trace)

    def _report(self, violation: RaceViolation) -> None:
        if self.strict:
            raise violation
        self.violations.append(violation)

    # -- per-superstep checks (driven by SanitizedBackend) ---------------
    def _finalize_pending(self) -> None:
        """A sweep arrived with no barrier since the last one: the previous
        superstep was rolled back (crash replay) — keep its entry, marked
        uncommitted, and drop its merge counts."""
        self._merge_counts = {}

    def check_sweep(
        self,
        mode: str,
        superstep: int,
        active: Iterable[int],
        read_digest_before: str,
        read_digest_after: str,
        writes: List[int],
        forced: Iterable[int],
        worker_of,
    ) -> SuperstepTrace:
        active_set = set(active)
        if read_digest_after != read_digest_before:
            self._report(
                RaceViolation(
                    "mid-superstep-commit",
                    "the sweep's read set changed between dispatch and "
                    "return — a worker committed a write before the "
                    "barrier instead of returning it in the sweep delta",
                    superstep=superstep,
                )
            )
        seen: Set[int] = set()
        per_worker: Dict[int, List[int]] = {}
        for u in writes:
            if u in seen:
                self._report(
                    RaceViolation(
                        "write-write-overlap",
                        f"vertex {u} was written by more than one worker "
                        "in a single sweep",
                        superstep=superstep,
                        vertex=u,
                        worker=worker_of(u),
                    )
                )
            seen.add(u)
            per_worker.setdefault(worker_of(u), []).append(u)
        for u in list(writes) + list(forced):
            if u not in active_set:
                self._report(
                    RaceViolation(
                        "non-owned-write",
                        f"vertex {u} was written without being dispatched "
                        "— a worker wrote into a partition slice it does "
                        "not own this superstep",
                        superstep=superstep,
                        vertex=u,
                        worker=worker_of(u),
                    )
                )
        entry = SuperstepTrace(
            superstep=superstep,
            mode=mode,
            read_digest=read_digest_after,
            write_digests={
                w: _digest(str(u) for u in sorted(ids))
                for w, ids in per_worker.items()
            },
            active_count=len(active_set),
            write_count=len(seen),
        )
        self.trace.append(entry)
        self.supersteps_checked += 1
        return entry

    def check_barrier(self, entry: Optional[SuperstepTrace]) -> None:
        """Called when the engine commits a barrier: close out the entry
        and audit the meter folds recorded since the previous barrier."""
        counts, self._merge_counts = self._merge_counts, {}
        if entry is not None:
            entry.merge_counts = counts
            entry.committed = True
        limit = self._num_workers
        if limit <= 0:
            return
        for name in sorted(counts):
            if counts[name] > limit:
                self._report(
                    RaceViolation(
                        "meter-double-merge",
                        f"meter {name!r} was folded {counts[name]} times "
                        f"between barriers with only {limit} logical "
                        "workers — some worker's delta merged twice",
                        superstep=entry.superstep if entry else None,
                    )
                )


class SanitizedBackend(ExecutionBackend):
    """An :class:`ExecutionBackend` decorator that feeds a sanitizer.

    Transparent to the engine: every lifecycle call forwards to the inner
    backend, ``kind`` reports the inner backend's kind, and unknown
    attributes (``prestart``, ``start_method``) delegate, so wrapping does
    not change which backend the engine believes it runs on.
    """

    def __init__(self, inner: ExecutionBackend, sanitizer: RaceSanitizer):
        self.inner = inner
        self.sanitizer = sanitizer
        self._engine = None
        self._pending: Optional[SuperstepTrace] = None

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.inner.kind

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    # -- lifecycle (forwarded) ------------------------------------------
    def bind(self, engine) -> None:
        self._engine = engine
        self.inner.bind(engine)

    def begin_run(self, program, states: Dict[int, Any]) -> None:
        self._pending = None
        self.inner.begin_run(program, states)

    def predraw(self, injector, superstep: int, num_workers: int):
        return self.inner.predraw(injector, superstep, num_workers)

    def close(self) -> None:
        self.inner.close()

    # -- sweeps (checked) ------------------------------------------------
    def _read_digest(self, states: Dict[int, Any], read_set: Set[int]) -> str:
        return _digest(_state_material(states, read_set))

    def sweep_scaleg(self, active, superstep: int, draws=None) -> ScaleGSweep:
        if self._pending is not None:
            self.sanitizer._finalize_pending()
            self._pending = None
        engine = self._engine
        states = engine._states
        neighbors = engine.dgraph.graph.neighbors
        read_set: Set[int] = set(active)
        for u in active:
            read_set.update(neighbors(u))
        before = self._read_digest(states, read_set)
        sweep = self.inner.sweep_scaleg(active, superstep, draws)
        after = self._read_digest(states, read_set)
        self._pending = self.sanitizer.check_sweep(
            "scaleg",
            superstep,
            active,
            before,
            after,
            sweep.changed,
            sweep.forced,
            engine.dgraph.worker_of,
        )
        return sweep

    def sweep_pregel(
        self, states, active, superstep: int, inbox, draws=None
    ) -> PregelSweep:
        if self._pending is not None:
            self.sanitizer._finalize_pending()
            self._pending = None
        engine = self._engine
        read_set = set(active)
        before = self._read_digest(states, read_set)
        sweep = self.inner.sweep_pregel(states, active, superstep, inbox, draws)
        after = self._read_digest(states, read_set)
        self._pending = self.sanitizer.check_sweep(
            "pregel",
            superstep,
            active,
            before,
            after,
            sorted(sweep.new_states),
            (),
            engine.dgraph.worker_of,
        )
        return sweep

    # -- barrier ---------------------------------------------------------
    def commit(self, new_states: Dict[int, Any]) -> None:
        self.inner.commit(new_states)
        entry, self._pending = self._pending, None
        self.sanitizer.check_barrier(entry)
