"""``repro-mis sanitize`` driver: chaos scenarios under the race sanitizer.

One sanitize case replays a chaos workload (Fig. 10/11 shaped
delete-reinsert stream) under a named fault preset with the
:class:`~repro.analysis.parallel.sanitizer.RaceSanitizer` wrapped around
the execution backend, then asserts the combined oracle:

1. **zero races** — every violation the sanitizer collected is a failure;
2. **bit-identity** — the sanitized run's final set and logical meters
   equal the unsanitized inline reference (the sanitizer observes, never
   perturbs; the parallel backend must stay bit-identical to inline even
   while being watched).

The sanitizer runs in collecting mode (``strict=False``) so one case
surveys a whole run instead of stopping at the first race; each case also
reports the keyed-hash :meth:`trace digest
<repro.analysis.parallel.sanitizer.RaceSanitizer.trace_digest>` so two
hosts (or two ``PYTHONHASHSEED`` values) can diff their evidence logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.faults.chaos import (
    CHAOS_WORKLOADS,
    LOGICAL_METERS,
    ChaosReference,
    ChaosWorkload,
    _logical_fingerprint,
    _run_maintenance,
    plan_for,
    reference_run,
)
from repro.faults.injector import FaultInjector
from repro.analysis.parallel.sanitizer import RaceSanitizer


@dataclass
class SanitizeCaseResult:
    """Outcome of one (workload, preset, seed, procs) sanitized run."""

    workload: str
    preset: str
    seed: int
    procs: int
    supersteps_checked: int = 0
    trace_digest: str = ""
    races: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.races

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "preset": self.preset,
            "seed": self.seed,
            "procs": self.procs,
            "ok": self.ok,
            "supersteps_checked": self.supersteps_checked,
            "trace_digest": self.trace_digest,
            "races": list(self.races),
            "failures": list(self.failures),
        }


def _build_runtime(procs: int, start_method: Optional[str]):
    """The backend a sanitize case runs on (``procs <= 1`` stays inline)."""
    if procs <= 1:
        return None
    from repro.runtime.parallel import ParallelRuntime

    kwargs: Dict[str, Any] = {"procs": procs}
    if start_method is not None:
        kwargs["start_method"] = start_method
    return ParallelRuntime(**kwargs)


def run_sanitize_case(
    workload: ChaosWorkload,
    preset: str,
    seed: int,
    procs: int,
    reference: Optional[ChaosReference] = None,
    start_method: Optional[str] = None,
    representation=None,
) -> SanitizeCaseResult:
    """Replay ``workload`` under ``preset`` with the sanitizer watching.

    Never raises for a race or an oracle violation — both are reported on
    the result so a sweep surveys the whole grid.
    """
    if reference is None:
        reference = reference_run(workload)
    result = SanitizeCaseResult(
        workload=workload.name, preset=preset, seed=seed, procs=procs
    )
    injector = FaultInjector(plan_for(preset, seed))
    sanitizer = RaceSanitizer(strict=False)
    runtime = _build_runtime(procs, start_method)
    try:
        maintainer, metrics = _run_maintenance(
            workload, faults=injector, runtime=runtime, sanitize=sanitizer,
            representation=representation,
        )
    except Exception as exc:  # noqa: BLE001 - survey, don't abort the sweep
        result.failures.append(f"run raised {type(exc).__name__}: {exc}")
        result.races = [str(v) for v in sanitizer.violations]
        result.supersteps_checked = sanitizer.supersteps_checked
        result.trace_digest = sanitizer.trace_digest()
        return result

    maintainer.final_audit()
    result.supersteps_checked = sanitizer.supersteps_checked
    result.trace_digest = sanitizer.trace_digest()
    result.races = [str(v) for v in sanitizer.violations]

    members = sorted(maintainer.independent_set())
    if members != reference.members:
        result.failures.append(
            f"final set diverged from the inline reference: "
            f"|sanitized|={len(members)} |reference|={len(reference.members)}"
        )
    logical = _logical_fingerprint(metrics)
    init_logical = _logical_fingerprint(maintainer.init_metrics)
    for name in LOGICAL_METERS:
        if logical[name] != reference.logical[name]:
            result.failures.append(
                f"logical meter {name} drifted under the sanitizer: "
                f"sanitized={logical[name]} reference={reference.logical[name]}"
            )
        if init_logical[name] != reference.init_logical[name]:
            result.failures.append(
                f"init logical meter {name} drifted under the sanitizer: "
                f"sanitized={init_logical[name]} "
                f"reference={reference.init_logical[name]}"
            )
    return result


def sanitize_suite(
    presets: Sequence[str] = ("none",),
    seeds: Iterable[int] = (0,),
    procs: int = 2,
    workloads: Sequence[ChaosWorkload] = CHAOS_WORKLOADS,
    start_method: Optional[str] = None,
    representation=None,
) -> List[SanitizeCaseResult]:
    """Sweep ``presets x seeds`` over ``workloads`` under the sanitizer.

    The inline fault-free reference is computed once per workload (without
    the sanitizer — it is the bit-identity target, not the subject; it
    always runs on the dict path so a ``csr`` case is checked against the
    reference layout).  Returns one :class:`SanitizeCaseResult` per case;
    callers decide whether any race/failure is fatal (``repro-mis
    sanitize`` exits non-zero).
    """
    results: List[SanitizeCaseResult] = []
    for workload in workloads:
        reference = reference_run(workload)
        for preset in presets:
            for seed in seeds:
                results.append(
                    run_sanitize_case(
                        workload, preset, seed, procs,
                        reference=reference, start_method=start_method,
                        representation=representation,
                    )
                )
    return results
