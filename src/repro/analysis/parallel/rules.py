"""Rule family P1–P4 — parallel safety of the runtime layer.

PR 5's :class:`~repro.runtime.parallel.ParallelRuntime` made the paper's
determinism claims (Theorems 4.1/4.2/6.1) hang on an execution discipline
the engines cannot enforce by construction: worker sweeps must be pure
(writes flow only through returned delta objects), barrier reduces must
fold each worker's replies in a fixed order, nothing nondeterministic may
cross a pickle frame, and every :meth:`RunMetrics.merge_delta` site must be
reachable exactly once per worker per superstep.  These rules check that
discipline statically, the way the B1/A1/S1 family checks vertex programs.

Unlike the vertex-program rules, the P family is scoped **by construct**,
not by class ancestry, so ``repro-mis lint`` can run it over any tree
without false positives outside the runtime layer:

- **P1 (sweep purity)** fires inside *sweep scopes* — ``sweep_scaleg`` /
  ``sweep_pregel`` methods and ``_worker_sweep_*`` functions.  Worker-side
  sweep code may not mutate engine/graph/metrics state it did not create:
  no attribute or subscript stores, no mutator-method calls, no ``del``
  against the engine/host/graph/states/metrics roots (or any alias of
  them).  Writes leave a sweep only through the returned delta object.
- **P2 (barrier ordering)** fires inside *barrier scopes* — methods of
  ``*Engine`` classes and of execution backends, plus ``_worker_*`` and
  ``_merge*`` functions.  A reduce loop must iterate replies in a sorted,
  keyed order: ``dict.values()`` folds are flagged outright (the key is
  lost, so the fold can never be re-sorted), and ``.items()``/``.keys()``
  iteration is flagged when the loop body is order-sensitive and the
  iterable is not wrapped in ``sorted(...)``.
- **P3 (frame hygiene)** fires inside *frame scopes* — ``_worker_*``
  functions and ``_Worker*`` classes (code that lives on the far side of a
  pickle frame), plus the argument lists of frame-shipping calls
  (``_send_msg``/``send_bytes``/``pickle.dumps``).  Flags reads of ambient
  process state that would silently diverge between master and workers —
  ``os.environ``/``os.getenv``, wall-clock calls, unseeded ``random`` —
  plus unpicklable or unshareable resources: ``open(...)`` handles,
  ``threading`` locks, and closures/lambdas shipped across a frame.
- **P4 (merge-once)** fires on every ``merge_delta`` call site, checked via
  a small intraprocedural call-graph walk: a site may sit under at most one
  loop in its own function, a function that reaches a looped merge site may
  not itself be called from inside a loop, and two merge-reaching
  statements in one function must be on mutually exclusive branches.
  Anything else risks folding one worker's meters twice per superstep,
  which silently breaks bit-identity across backends.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, make_finding

#: parameter names treated as foreign (engine-owned) roots in sweep scopes
_FOREIGN_PARAMS = {
    "engine", "host", "graph", "dgraph", "states", "metrics", "inbox",
}

#: method names that mutate their receiver in place
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
    "add_edge", "remove_edge", "add_vertex", "remove_vertex",
}

#: functions that ship their arguments across a pickle frame
_FRAME_CALLS = {"_send_msg", "send_bytes", "dumps"}

#: wall-clock / ambient-state calls banned on the worker side of a frame
_CLOCK_CALLS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "process_time"), ("datetime", "now"), ("datetime", "today"),
    ("datetime", "utcnow"),
}

#: ``random`` module functions that are allowed in frame scopes (seeded
#: generator constructors; instances made from them are fine)
_RANDOM_ALLOWED = {"Random", "SystemRandom"}


def _iter_functions(tree: ast.AST) -> Iterator[Tuple[ast.FunctionDef, Optional[ast.ClassDef]]]:
    """Yield every function with its immediately enclosing class (if any)."""
    class_of: Dict[ast.AST, Optional[ast.ClassDef]] = {}
    for parent in ast.walk(tree):
        enclosing = parent if isinstance(parent, ast.ClassDef) else class_of.get(parent)
        for child in ast.iter_child_nodes(parent):
            class_of[child] = enclosing
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, class_of.get(node)


def _is_sweep_scope(func: ast.FunctionDef, cls: Optional[ast.ClassDef]) -> bool:
    return (
        func.name in ("sweep_scaleg", "sweep_pregel")
        or func.name.startswith("_worker_sweep")
    )


def _is_barrier_scope(func: ast.FunctionDef, cls: Optional[ast.ClassDef]) -> bool:
    if func.name.startswith("_worker") or func.name.startswith("_merge"):
        return True
    if cls is None:
        return False
    if cls.name.endswith("Engine") or cls.name.endswith("Executor"):
        return True
    if cls.name.endswith("Runtime") or cls.name.endswith("Backend"):
        return True
    bases = " ".join(
        b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
        for b in cls.bases
    )
    return "ExecutionBackend" in bases


def _is_frame_scope(func: ast.FunctionDef, cls: Optional[ast.ClassDef]) -> bool:
    if func.name.startswith("_worker"):
        return True
    return cls is not None and cls.name.lstrip("_").startswith("Worker")


def _source(node, source: str) -> str:
    try:
        segment = ast.get_source_segment(source, node)
    except Exception:  # pragma: no cover - defensive
        segment = None
    if not segment:
        return "<expr>"
    segment = " ".join(segment.split())
    return segment if len(segment) <= 60 else segment[:57] + "..."


# ---------------------------------------------------------------------------
# P1 — sweep purity
# ---------------------------------------------------------------------------
def _foreign_roots(func: ast.FunctionDef) -> Set[str]:
    """Names bound at entry that denote engine-owned state."""
    roots: Set[str] = set()
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.arg in _FOREIGN_PARAMS:
            roots.add(arg.arg)
    return roots


def _collect_foreign_aliases(func: ast.FunctionDef, roots: Set[str]) -> Set[str]:
    """Names provably aliasing foreign state (attribute/subscript chains).

    ``states = engine._states`` and ``aggs = host._aggregators`` alias;
    wrapping the right-hand side in any call copies (or at least takes
    responsibility), so the target is no alias.  Mirrors the S1 alias
    analysis: two passes, order-free, rebinding to a non-alias anywhere
    taints the name out of the set.
    """

    def is_foreign_expr(node, aliases: Set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in roots or node.id in aliases
        if isinstance(node, ast.Attribute):
            # self._engine.<...> chains are foreign regardless of roots
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr == "_engine"
            ):
                return True
            return is_foreign_expr(node.value, aliases)
        if isinstance(node, ast.Subscript):
            return is_foreign_expr(node.value, aliases)
        return False

    evidence: Set[str] = set()
    tainted: Set[str] = set()
    for _ in range(2):
        for stmt in ast.walk(func):
            targets = ()
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if is_foreign_expr(value, evidence):
                    evidence.add(target.id)
                else:
                    tainted.add(target.id)
    return evidence - tainted


def _check_p1(func: ast.FunctionDef, path: str, source: str) -> List[Finding]:
    roots = _foreign_roots(func)
    aliases = _collect_foreign_aliases(func, roots)

    def is_foreign(node) -> bool:
        if isinstance(node, ast.Name):
            return node.id in roots or node.id in aliases
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr == "_engine"
            ):
                return True
            return is_foreign(node.value)
        if isinstance(node, ast.Subscript):
            return is_foreign(node.value)
        return False

    findings: List[Finding] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and is_foreign(
                    target.value
                ):
                    findings.append(
                        make_finding(
                            "P1",
                            path,
                            node,
                            _source(target, source),
                            "sweep writes engine-owned state "
                            f"'{_source(target, source)}' in place — worker "
                            "writes must flow through the returned sweep "
                            "delta",
                        )
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and is_foreign(
                    target.value
                ):
                    findings.append(
                        make_finding(
                            "P1",
                            path,
                            node,
                            _source(target, source),
                            "sweep deletes from engine-owned state "
                            f"'{_source(target, source)}'",
                        )
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and is_foreign(node.func.value)
        ):
            findings.append(
                make_finding(
                    "P1",
                    path,
                    node,
                    f"{_source(node.func.value, source)}.{node.func.attr}",
                    f"sweep calls mutator '{node.func.attr}' on engine-owned "
                    f"'{_source(node.func.value, source)}' — worker writes "
                    "must flow through the returned sweep delta",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# P2 — barrier ordering
# ---------------------------------------------------------------------------
def _dict_view_call(node) -> Optional[str]:
    """``d.values()``/``d.items()``/``d.keys()`` -> the view name."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "items", "keys")
        and not node.args
        and not node.keywords
    ):
        return node.func.attr
    return None


def _body_order_insensitive(stmts) -> bool:
    # identical discipline to the D1 body analysis, duplicated locally so
    # the P family has no import-order coupling with rules_determinism
    from repro.analysis.rules_determinism import (
        _body_order_insensitive as _d1_body,
    )

    return _d1_body(stmts)


def _check_p2(func: ast.FunctionDef, path: str, source: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(func):
        iterables: List[Tuple[ast.AST, Optional[list]]] = []
        if isinstance(node, ast.For):
            iterables.append((node.iter, node.body))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                iterables.append((gen.iter, None))
        for iter_expr, body in iterables:
            view = _dict_view_call(iter_expr)
            if view is None:
                continue
            if view == "values":
                findings.append(
                    make_finding(
                        "P2",
                        path,
                        node,
                        _source(iter_expr, source),
                        "barrier reduce folds "
                        f"'{_source(iter_expr, source)}' — a .values() fold "
                        "loses the worker/partition key and can never be "
                        "re-sorted into the inline order",
                    )
                )
            elif body is None or not _body_order_insensitive(body):
                findings.append(
                    make_finding(
                        "P2",
                        path,
                        node,
                        _source(iter_expr, source),
                        "barrier reduce iterates "
                        f"'{_source(iter_expr, source)}' in insertion order "
                        "with an order-sensitive body — wrap in sorted(...) "
                        "to fold replies in worker/partition order",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# P3 — frame hygiene
# ---------------------------------------------------------------------------
def _check_p3_scope(func: ast.FunctionDef, path: str, source: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            if (
                node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
            ):
                findings.append(
                    make_finding(
                        "P3",
                        path,
                        node,
                        "os.environ",
                        "worker-side read of os.environ — ambient process "
                        "state diverges between master and workers",
                    )
                )
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if isinstance(func_expr, ast.Name):
                if func_expr.id == "open":
                    findings.append(
                        make_finding(
                            "P3",
                            path,
                            node,
                            "open",
                            "worker-side open() — file handles cannot cross "
                            "a pickle frame and worker-local I/O breaks "
                            "replayability",
                        )
                    )
            elif isinstance(func_expr, ast.Attribute) and isinstance(
                func_expr.value, ast.Name
            ):
                pair = (func_expr.value.id, func_expr.attr)
                if pair in _CLOCK_CALLS:
                    findings.append(
                        make_finding(
                            "P3",
                            path,
                            node,
                            f"{pair[0]}.{pair[1]}",
                            f"worker-side wall-clock read {pair[0]}."
                            f"{pair[1]}() — frame contents must be a pure "
                            "function of the dispatched delta",
                        )
                    )
                elif pair[0] == "os" and pair[1] in ("getenv", "environ"):
                    findings.append(
                        make_finding(
                            "P3",
                            path,
                            node,
                            f"os.{pair[1]}",
                            "worker-side read of the process environment — "
                            "ambient state diverges between master and "
                            "workers",
                        )
                    )
                elif pair[0] == "random" and pair[1] not in _RANDOM_ALLOWED:
                    findings.append(
                        make_finding(
                            "P3",
                            path,
                            node,
                            f"random.{pair[1]}",
                            "worker-side unseeded random draw — ship a "
                            "seeded random.Random (or keyed-hash draws) in "
                            "the frame instead",
                        )
                    )
                elif pair[0] == "threading" and "Lock" in pair[1]:
                    findings.append(
                        make_finding(
                            "P3",
                            path,
                            node,
                            f"threading.{pair[1]}",
                            "lock created in worker-side frame scope — "
                            "locks are unpicklable and signal shared "
                            "mutable state across the frame",
                        )
                    )
    return findings


def _check_p3_frame_calls(tree: ast.AST, path: str, source: str) -> List[Finding]:
    """Lambdas/closures in the argument list of a frame-shipping call."""
    findings: List[Finding] = []
    local_defs = {
        node.name
        for outer in ast.walk(tree)
        if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(outer)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not outer
    }
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = callee.id if isinstance(callee, ast.Name) else getattr(callee, "attr", "")
        if name not in _FRAME_CALLS:
            continue
        for arg in (*node.args, *(kw.value for kw in node.keywords)):
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda) or (
                    isinstance(sub, ast.Name) and sub.id in local_defs
                ):
                    symbol = (
                        "lambda" if isinstance(sub, ast.Lambda) else sub.id
                    )
                    findings.append(
                        make_finding(
                            "P3",
                            path,
                            sub,
                            symbol,
                            f"closure '{symbol}' shipped across a pickle "
                            "frame — only module-level functions and "
                            "classes may cross",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# P4 — merge-once
# ---------------------------------------------------------------------------
def _loop_depth_map(func: ast.FunctionDef) -> Dict[ast.AST, int]:
    """``for``-loop nesting depth of every node inside ``func`` (0 = none).

    Only ``for`` loops count.  A ``while`` loop is the superstep loop in
    both engines — the merge-once contract is *per superstep*, so a merge
    under ``while active: for w in workers:`` is the sanctioned shape
    (depth 1: one fold per worker per barrier), while a merge under two
    nested ``for`` loops (depth 2) double-folds within one barrier.
    """
    depths: Dict[ast.AST, int] = {}

    def walk(node, depth):
        for child in ast.iter_child_nodes(node):
            child_depth = depth
            if isinstance(child, ast.For):
                child_depth = depth + 1
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested scopes analyzed separately
            depths[child] = child_depth
            walk(child, child_depth)

    walk(func, 0)
    return depths


def _branch_exclusive(func: ast.FunctionDef, a: ast.AST, b: ast.AST) -> bool:
    """Whether ``a`` and ``b`` sit in different arms of one ``if``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        in_body_a = any(a is d or a in ast.walk(d) for d in node.body)
        in_body_b = any(b is d or b in ast.walk(d) for d in node.body)
        in_else_a = any(a is d or a in ast.walk(d) for d in node.orelse)
        in_else_b = any(b is d or b in ast.walk(d) for d in node.orelse)
        if (in_body_a and in_else_b) or (in_else_a and in_body_b):
            return True
    return False


def _check_p4(tree: ast.AST, path: str, source: str) -> List[Finding]:
    findings: List[Finding] = []
    functions = list(_iter_functions(tree))
    #: function name -> max loop depth over its direct merge_delta sites
    merge_depth: Dict[str, int] = {}
    #: function name -> its direct merge_delta call nodes
    direct_sites: Dict[str, List[ast.Call]] = {}

    for func, _cls in functions:
        depths = _loop_depth_map(func)
        sites = [
            node
            for node in depths
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "merge_delta"
        ]
        if not sites:
            continue
        direct_sites[func.name] = sites
        merge_depth[func.name] = max(depths[s] for s in sites)
        for site in sites:
            if depths[site] >= 2:
                findings.append(
                    make_finding(
                        "P4",
                        path,
                        site,
                        "merge_delta",
                        "merge_delta under nested loops — a worker's meters "
                        "would fold more than once per superstep",
                    )
                )
        # two merge-reaching statements on one non-exclusive path
        looped = [s for s in sites if depths[s] >= 1]
        for i, a in enumerate(looped):
            for b in looped[i + 1:]:
                if not _branch_exclusive(func, a, b):
                    findings.append(
                        make_finding(
                            "P4",
                            path,
                            b,
                            "merge_delta",
                            "second looped merge_delta site on the same "
                            "path — each worker's meters must merge exactly "
                            "once per superstep",
                        )
                    )

    # intraprocedural call-graph walk: calling a function whose own merge
    # site already loops, from inside a loop, multiplies the merge count
    looping_mergers = {name for name, d in merge_depth.items() if d >= 1}
    if looping_mergers:
        for func, _cls in functions:
            if func.name in direct_sites:
                continue
            depths = _loop_depth_map(func)
            for node in depths:
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else getattr(callee, "attr", "")
                )
                if name in looping_mergers and depths[node] >= 1:
                    findings.append(
                        make_finding(
                            "P4",
                            path,
                            node,
                            name,
                            f"'{name}' already merges per-worker meters in "
                            "a loop; calling it from inside another loop "
                            "folds each worker's delta more than once per "
                            "superstep",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def check_parallel(
    tree: ast.AST, path: str, source: str, rules: Set[str]
) -> List[Finding]:
    """Run the enabled P1/P2/P3/P4 rules over one parsed module."""
    findings: List[Finding] = []
    for func, cls in _iter_functions(tree):
        if "P1" in rules and _is_sweep_scope(func, cls):
            findings.extend(_check_p1(func, path, source))
        if "P2" in rules and _is_barrier_scope(func, cls):
            findings.extend(_check_p2(func, path, source))
        if "P3" in rules and _is_frame_scope(func, cls):
            findings.extend(_check_p3_scope(func, path, source))
    if "P3" in rules:
        findings.extend(_check_p3_frame_calls(tree, path, source))
    if "P4" in rules:
        findings.extend(_check_p4(tree, path, source))
    return findings
