"""Lightweight set-type inference for the determinism rules.

The D1 rule needs to know whether the iterable of a ``for`` loop (or
comprehension) is an *unordered* container — a ``set``/``frozenset`` —
because Python's set iteration order depends on insertion history and hash
table internals, which is exactly the order-dependence the paper's proofs
exclude.  Full type inference is out of scope; this module implements a
deliberately conservative single-pass, function-local analysis:

- literal sets, set comprehensions, ``set(...)``/``frozenset(...)`` calls;
- set operators (``|``, ``&``, ``-``, ``^``) and set methods
  (``union``/``intersection``/``difference``/``symmetric_difference``) when
  an operand is already known to be a set;
- calls to well-known set-returning APIs in this codebase
  (``*.neighbors(...)``, ``*.touched_vertices()``, ``affected_vertices(...)``);
- names whose assignment or annotation (``Set[...]``, ``set``,
  ``FrozenSet[...]``) proves set-ness, tracked in statement order.

Anything unprovable is assumed ordered — the linter prefers missed findings
over noise.  ``sorted(...)`` always yields a list, so wrapping an iterable
in ``sorted`` is both the fix and what makes the analysis pass.
"""

from __future__ import annotations

import ast
from typing import Set

#: methods on arbitrary receivers that return sets in this codebase
SET_RETURNING_METHODS = {"neighbors", "touched_vertices"}

#: free functions that return sets in this codebase
SET_RETURNING_FUNCTIONS = {"affected_vertices", "independent_set_from_states"}

#: set methods producing new sets (receiver must already be a known set)
_SET_COMBINATORS = {"union", "intersection", "difference", "symmetric_difference", "copy"}

_SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "MutableSet", "AbstractSet"}


def _annotation_is_set(annotation) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in _SET_ANNOTATIONS
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _SET_ANNOTATIONS
    if isinstance(annotation, ast.Subscript):  # Set[int], typing.Set[int]
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        head = annotation.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    return False


def expression_is_set(node, known: Set[str]) -> bool:
    """Whether ``node`` provably evaluates to a set/frozenset.

    ``known`` holds local names already proven to be sets.
    """
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Name):
        return node.id in known
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return expression_is_set(node.left, known) or expression_is_set(
            node.right, known
        )
    if isinstance(node, ast.IfExp):
        return expression_is_set(node.body, known) and expression_is_set(
            node.orelse, known
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return True
            if func.id in SET_RETURNING_FUNCTIONS:
                return True
            return False
        if isinstance(func, ast.Attribute):
            if func.attr in SET_RETURNING_METHODS:
                return True
            if func.attr in _SET_COMBINATORS:
                return expression_is_set(func.value, known)
            return False
    return False


class SetNameCollector:
    """Assignment-order-free analysis of set-typed names in one function.

    A name is treated as a set iff at least one assignment (or annotation)
    proves set-ness AND no assignment anywhere in the function binds it to a
    non-set expression — conservative in both directions, so the result does
    not depend on statement traversal order.
    """

    def __init__(self, func: ast.AST):
        evidence: Set[str] = set()
        tainted: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                if _annotation_is_set(arg.annotation):
                    evidence.add(arg.arg)
        # two passes: names first (so evidence sees annotated/param sets),
        # then expression-based evidence that may chain through those names
        for _ in range(2):
            for stmt in ast.walk(func):
                if isinstance(stmt, ast.Assign):
                    is_set = expression_is_set(stmt.value, evidence)
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            (evidence if is_set else tainted).add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if _annotation_is_set(stmt.annotation) or (
                        stmt.value is not None
                        and expression_is_set(stmt.value, evidence)
                    ):
                        evidence.add(stmt.target.id)
        self.known: Set[str] = evidence - tainted
