"""ScaleG: the synchronization-based vertex-centric runtime."""

from repro.scaleg.engine import ScaleGContext, ScaleGEngine, ScaleGProgram, ScaleGResult
from repro.scaleg.guest import InvertedActivationIndex, build_all_indexes, replication_report

__all__ = [
    "InvertedActivationIndex",
    "ScaleGContext",
    "ScaleGEngine",
    "ScaleGProgram",
    "ScaleGResult",
    "build_all_indexes",
    "replication_report",
]
