"""Guest-copy inspection utilities.

The guest *directory* (which machines replicate which vertex) lives with
:class:`~repro.graph.distributed_graph.DistributedGraph` because it must be
maintained in lock-step with graph mutation.  This module adds the other
half of ScaleG's machinery: the **inverted activation index** — per machine,
``guest vertex → local vertices adjacent to it`` — which is how a state
change of ``u`` activates ``u``'s neighbours on a remote machine with a
single shipped record.

The engine charges costs directly from the directory; the index here is for
analysis, tests, and users who want to inspect replication behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graph.distributed_graph import DistributedGraph


class InvertedActivationIndex:
    """Materialized guest→local-neighbours index for one worker.

    ``index.local_targets(u)`` answers: if vertex ``u`` (hosted elsewhere)
    changes state and its guest on this worker is told to activate, which
    local vertices get activated?
    """

    def __init__(self, dgraph: DistributedGraph, worker: int):
        self.worker = worker
        self._targets: Dict[int, List[int]] = {}
        graph = dgraph.graph
        for v in graph.vertices():
            if dgraph.worker_of(v) != worker:
                continue
            for u in sorted(graph.neighbors(v)):
                if dgraph.worker_of(u) != worker:
                    self._targets.setdefault(u, []).append(v)
        for u in self._targets:
            self._targets[u].sort()

    def guests(self) -> List[int]:
        """All remote vertices with a guest copy on this worker."""
        return sorted(self._targets)

    def local_targets(self, u: int) -> List[int]:
        """Local vertices adjacent to remote vertex ``u`` (empty if none)."""
        return list(self._targets.get(u, ()))

    def __len__(self) -> int:
        return len(self._targets)


def guest_vertices_on(dgraph: DistributedGraph, worker: int) -> List[int]:
    """Vertices (hosted elsewhere) with a guest copy on ``worker``.

    This is exactly the replica set a crash of ``worker`` destroys; the
    recovery path (:mod:`repro.faults.recovery`) rebuilds each copy from the
    owning vertex's host state.  Served straight from the guest directory —
    no graph scan per query beyond the vertex sweep.
    """
    return sorted(
        u for u in dgraph.graph.vertices()
        if dgraph.worker_of(u) != worker and worker in dgraph.guest_machines(u)
    )


def surviving_guest_machines(
    dgraph: DistributedGraph, u: int, worker_of, dead: Set[int]
) -> List[int]:
    """Machines still holding a (barrier-fresh) guest copy of ``u``.

    ``worker_of`` is the *effective* placement to evaluate under — under
    failover that is the coordinator's overlay, not the base partitioner —
    and ``dead`` the workers declared permanently lost.  This is the set
    a :class:`~repro.faults.membership.FailoverCoordinator` reconstructs a
    lost host vertex from: empty means the vertex is solitary (delta log)
    or every replica died with the host (barrier checkpoint).
    """
    if not dgraph.has_vertex(u):
        return []
    home = worker_of(u)
    machines = {worker_of(v) for v in dgraph.neighbors(u)}
    machines.discard(home)
    return sorted(m for m in machines if m not in dead)


def build_all_indexes(dgraph: DistributedGraph) -> Dict[int, InvertedActivationIndex]:
    """One inverted index per worker."""
    return {
        w: InvertedActivationIndex(dgraph, w) for w in range(dgraph.num_workers)
    }


def replication_report(dgraph: DistributedGraph) -> Dict[str, float]:
    """Summary statistics of guest replication (diagnostics for examples)."""
    graph = dgraph.graph
    copies: List[int] = [dgraph.num_guest_copies(u) for u in graph.vertices()]
    if not copies:
        return {"vertices": 0, "replication_factor": 0.0, "max_copies": 0}
    remote_edges = sum(
        1 for u, v in graph.edges() if dgraph.is_remote_pair(u, v)
    )
    total_edges = graph.num_edges
    return {
        "vertices": float(len(copies)),
        "replication_factor": 1.0 + sum(copies) / len(copies),
        "max_copies": float(max(copies)),
        "edge_cut_fraction": (remote_edges / total_edges) if total_edges else 0.0,
    }
