"""ScaleG: synchronization-based vertex-centric engine.

ScaleG (Wang et al., TKDE 2021) is the Pregel variation the paper deploys
on.  Instead of per-edge messages, every vertex ``u`` keeps a *guest copy*
of its state on each other machine hosting a neighbour of ``u``; at the end
of a superstep, changed states are synced **once per machine** and remote
neighbours are activated through the guest's inverted index.  Every vertex
can therefore read all neighbours' states locally in the next superstep —
exactly what OIMIS's line 5 needs.

Semantics implemented here:

- BSP with double-buffered states: ``compute`` for superstep ``s`` reads the
  states as of the end of superstep ``s-1`` (its own included).
- A vertex runs in superstep ``s+1`` iff something activated it during
  superstep ``s`` (programs activate explicitly; the engine never
  auto-activates).
- Cost accounting per superstep:
  * each changed vertex ships ``id + sync_bytes(state)`` (+framing) to each
    guest machine;
  * each remotely-activated neighbour adds a compact activation entry,
    piggybacked on the sync record when the activator changed state, or a
    standalone small message otherwise;
  * worker-local syncs and activations are free on the wire.
- Compute work: one unit per neighbour-state read
  (:meth:`ScaleGContext.neighbor_state` / :meth:`ScaleGContext.rank_of`),
  so an early-``break`` scan (OIMIS line 8) is measurably cheaper than a
  full scan (the SCALL baseline).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import (
    SuperstepLimitExceeded,
    SyncRetryExhausted,
    WorkerFailure,
    WorkerLoss,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.distributed_graph import DistributedGraph
    from repro.graph.rank_cache import RankedAdjacency
from repro.pregel.metrics import (
    ACTIVATION_ENTRY_BYTES,
    MESSAGE_OVERHEAD_BYTES,
    VERTEX_ID_BYTES,
    RunMetrics,
    SuperstepRecord,
)


class ScaleGProgram(ABC):
    """A vertex program for the synchronization-based engine."""

    @abstractmethod
    def initial_state(self, dgraph: "DistributedGraph", u: int) -> Any:
        """State of ``u`` before the first superstep."""

    @abstractmethod
    def compute(self, ctx: "ScaleGContext") -> None:
        """One vertex's superstep: read neighbour states, set own state,
        request activations."""

    @abstractmethod
    def sync_bytes(self, state: Any) -> int:
        """Serialized size of ``state`` when synced to a guest copy."""

    def state_bytes(self, state: Any) -> int:
        """Resident size of ``state`` (memory meter); defaults to sync size."""
        return self.sync_bytes(state)

    def contract_members(self, states: Dict[int, Any]) -> Optional[Set[int]]:
        """Members of the independent set this program maintains, or ``None``.

        Programs that compute an independent set override this so the
        runtime contract checker (:mod:`repro.analysis.runtime`) can assert
        independence + maximality at convergence; ``None`` (the default)
        skips the convergence contract.
        """
        return None

    def rank_cache(self, graph) -> RankedAdjacency:
        """The rank-ordered adjacency cache ``compute`` scans via
        :meth:`ScaleGContext.ranked_neighbors`.

        Defaults to the graph's shared ``(degree, id)`` cache — the paper's
        ``≺``.  Programs driven by a different total order (the weighted
        extension's ``≺_w``) override this with a custom-key cache.
        """
        return graph.rank_cache()

    def csr_kernel(self):
        """Array-native sweep kernel for ``representation="csr"``, or
        ``None`` (the default) when this program only runs the dict path.

        A kernel (e.g. :class:`~repro.graph.csr.OIMISKernel`) replays the
        whole compute sweep as vectorized array passes and must be
        bit-identical to ``compute`` on every meter; programs without one
        silently keep the dict path even under ``representation="csr"``.
        """
        return None

    def uniform_state_bytes(self) -> Optional[int]:
        """Constant resident size per state, or ``None`` if state sizes
        vary.  A constant lets the engine take the O(num_workers)
        closed-form memory snapshot instead of the O(n) per-vertex walk;
        both produce identical integers."""
        return None


class ScaleGContext:
    """Per-vertex view handed to :meth:`ScaleGProgram.compute`."""

    __slots__ = ("_engine", "vertex", "superstep", "_old", "_new", "_changed",
                 "_work", "_activations", "_pred_activations", "_force_sync")

    def __init__(self, engine: "ScaleGEngine", vertex: int, superstep: int,
                 state: Any):
        self._engine = engine
        self.vertex = vertex
        self.superstep = superstep
        self._old = state
        self._new = state
        self._changed = False
        self._work = 0
        #: activation targets without a predicate (the common case — kept
        #: as bare ids so the hot loop allocates no per-activation tuples)
        self._activations: List[int] = []
        #: activation targets whose predicate runs at the barrier
        self._pred_activations: List[Tuple[int, Any]] = []
        self._force_sync = False

    def _reset(self, vertex: int, superstep: int, state: Any) -> None:
        """Rearm for the next vertex (the engine reuses one context across
        the whole active sweep; activation lists are detached on hand-off,
        so they are always empty here)."""
        self.vertex = vertex
        self.superstep = superstep
        self._old = state
        self._new = state
        self._changed = False
        self._work = 0
        self._force_sync = False

    # -- own state -----------------------------------------------------
    @property
    def state(self) -> Any:
        """Own state (the value being written this superstep)."""
        return self._new

    def set_state(self, new_state: Any) -> None:
        self._new = new_state
        self._changed = new_state != self._old

    @property
    def changed(self) -> bool:
        """Whether :meth:`set_state` changed the value this superstep."""
        return self._changed

    # -- neighbour reads (each charged one work unit) -------------------
    def neighbor_state(self, v: int) -> Any:
        """State of neighbour ``v`` as of the previous superstep.

        Served from the local guest copy — free on the wire, one compute
        unit on the meter.
        """
        self._work += 1
        return self._engine._states[v]

    def rank_of(self, v: int) -> Tuple[int, int]:
        """``(degree, id)`` of ``v`` — the paper's total order ``≺`` key.

        Degrees live with the (guest) vertex record, so this is a local
        read; charged with the accompanying state read, not separately.
        """
        return (self._engine.dgraph.degree(v), v)

    def neighbors(self) -> Set[int]:
        return self._engine.dgraph.neighbors(self.vertex)

    def sorted_neighbors(self) -> List[int]:
        """Neighbours in ascending id order (deterministic scans)."""
        return sorted(self._engine.dgraph.neighbors(self.vertex))

    def ranked_neighbors(self) -> List[int]:
        """Neighbours in ascending ``≺`` rank order (a live cached view —
        do not mutate).

        Served from the engine's rank-ordered adjacency cache, which graph
        updates repair incrementally; like the adjacency itself it lives
        with the (guest) vertex records, so reading it is free on the meter.
        Scanning in this order lets Algorithm 2's early ``break`` stop at
        the first dominating in-neighbour — and stop scanning entirely once
        a neighbour no longer precedes this vertex.
        """
        ranked = self._engine._ranked
        if ranked is None:
            # context used outside run() (tests, tools): default ≺ cache
            ranked = self._engine._ranked = self._engine.dgraph.graph.rank_cache()
        return ranked.ranked_neighbors(self.vertex)

    def degree(self) -> int:
        return self._engine.dgraph.degree(self.vertex)

    # -- activation ------------------------------------------------------
    def activate(self, v: int, predicate: Any = None) -> None:
        """Schedule ``v`` to run in the next superstep.

        ``predicate``, if given, is ``f(source_state, target_state) -> bool``
        evaluated *after* every vertex's new state is applied — i.e. against
        the end-of-superstep states, which is what a real ScaleG deployment
        sees when the guest sync lands.  A false predicate drops the
        activation before it is shipped (no wire cost).  The same-status
        optimization (Lemma 5.2) needs exactly this: comparing statuses at
        the end of the superstep, not mid-compute snapshots.
        """
        if predicate is None:
            self._activations.append(v)
        else:
            self._pred_activations.append((v, predicate))

    def force_sync(self) -> None:
        """Ship this vertex's state to its guest copies even if unchanged.

        Models DisMIS's synchronization superstep (Algorithm 1 line 22),
        where still-``Unknown`` vertices re-broadcast ``(id, status, info)``
        each round — the main source of DisMIS's extra communication that
        Table II measures.
        """
        self._force_sync = True

    def charge(self, work: int = 1) -> None:
        """Account extra compute units beyond neighbour reads."""
        self._work += work


@dataclass
class ScaleGResult:
    """Final vertex states plus the run's metrics."""

    states: Dict[int, Any]
    metrics: RunMetrics


class ScaleGEngine:
    """Executes a :class:`ScaleGProgram` over a :class:`DistributedGraph`.

    The engine can be reused across runs on the same (mutating) graph: the
    dynamic maintenance driver keeps one engine, mutates the graph between
    runs, and passes the previous run's states back in.
    """

    def __init__(self, dgraph: "DistributedGraph", contracts=None, faults=None,
                 membership=None, runtime=None, sanitize=None,
                 representation=None):
        """``contracts``: ``None`` defers to the ``REPRO_CONTRACTS`` env
        flag, ``True``/``False`` force runtime contract checking on/off, or
        pass a :class:`~repro.analysis.runtime.ContractChecker` directly.
        ``faults``: a :class:`~repro.faults.plan.FaultPlan` or
        :class:`~repro.faults.injector.FaultInjector` enabling seeded fault
        injection + recovery; ``None`` (or an empty plan) leaves the hot
        loop exactly as in the fault-free build.
        ``membership``: a :class:`~repro.faults.membership.MembershipConfig`
        or :class:`~repro.faults.membership.FailoverCoordinator` enabling
        permanent-loss failover and guest anti-entropy; ``None``
        auto-attaches a default coordinator exactly when the fault plan
        schedules losses or guest corruption.
        ``runtime``: execution backend for the compute sweep — ``None`` /
        ``"inline"`` (serial, the default), ``"process"`` (multi-process
        :class:`~repro.runtime.parallel.ParallelRuntime`), or an
        :class:`~repro.runtime.base.ExecutionBackend` instance (shared
        backends stay owned by the caller).
        ``sanitize``: ``None`` defers to the ``REPRO_SANITIZE`` env flag,
        ``True``/``False`` force the superstep race sanitizer on/off, or
        pass a :class:`~repro.analysis.parallel.RaceSanitizer` directly;
        when on, the backend is wrapped to record per-worker read/write
        sets each superstep and flag races.
        ``representation``: ``"dict"`` (the reference hot path) or
        ``"csr"`` (flat-array partition mirror, vectorized sweeps for
        programs that provide a :meth:`ScaleGProgram.csr_kernel`);
        ``None`` defers to the ``REPRO_REPRESENTATION`` env flag."""
        from repro.analysis.parallel.sanitizer import resolve_sanitizer
        from repro.analysis.runtime import resolve_contracts
        from repro.faults.injector import resolve_faults
        from repro.faults.membership import resolve_membership
        from repro.graph.csr import resolve_representation
        from repro.runtime import resolve_runtime

        self.dgraph = dgraph
        self._states: Dict[int, Any] = {}
        self._ranked: Optional[RankedAdjacency] = None
        self._representation = resolve_representation(representation)
        #: CSR mirror + kernel for the current run (None on the dict path)
        self._csr = None
        self._csr_kernel = None
        #: True when the run can use typed-delta barriers (no faults, no
        #: sanitizer, no isolation snapshots)
        self._csr_fast = False
        self._contracts = resolve_contracts(contracts)
        self._faults = resolve_faults(faults)
        self._membership = membership
        self._failover = resolve_membership(membership, self._faults, dgraph)
        self._sanitizer = resolve_sanitizer(sanitize)
        backend = resolve_runtime(runtime)
        if self._sanitizer is not None:
            backend = self._sanitizer.wrap(backend)
        self._runtime = backend

    @property
    def failover(self):
        """The attached failover coordinator (``None`` when neither the
        fault plan nor the caller asked for membership tracking)."""
        return self._failover

    @property
    def runtime(self):
        """The execution backend driving this engine's compute sweeps."""
        return self._runtime

    @property
    def sanitizer(self):
        """The attached race sanitizer (``None`` when sanitizing is off)."""
        return self._sanitizer

    @property
    def representation(self) -> str:
        """Partition representation driving the sweeps (``dict``/``csr``)."""
        return self._representation

    def close(self) -> None:
        """Release the execution backend's resources (worker processes,
        published shared-memory frames)."""
        self._runtime.close()
        part = getattr(self.dgraph, "_csr_partition", None)
        if part is not None:
            part.release_shared()

    def run(
        self,
        program: ScaleGProgram,
        initial_active: Optional[Iterable[int]] = None,
        max_supersteps: Optional[int] = None,
        states: Optional[Dict[int, Any]] = None,
        metrics: Optional[RunMetrics] = None,
        keep_records: bool = True,
        faults=None,
    ) -> ScaleGResult:
        """Run ``program`` until no vertex is active.

        ``initial_active`` defaults to all vertices (static computation).
        ``states`` resumes from existing states (dynamic maintenance).
        ``metrics`` lets callers accumulate multiple runs into one meter.
        ``keep_records`` disables per-superstep record retention for very
        long update streams (the aggregate counters still accumulate).
        ``faults`` overrides the engine's fault injector for this run.

        Exception safety: if the run raises (:class:`SuperstepLimitExceeded`,
        an unrecoverable :class:`WorkerFailure`, a contract violation), every
        entry of ``states`` is restored to its value at run entry — no
        partially converged superstep leaks into a caller's resumed states.
        """
        from repro.faults.injector import resolve_faults
        graph = self.dgraph.graph
        own_metrics = metrics if metrics is not None else RunMetrics(
            num_workers=self.dgraph.num_workers
        )
        started = time.perf_counter()

        if states is None:
            states = {
                u: program.initial_state(self.dgraph, u) for u in graph.vertices()
            }
        self._states = states
        if max_supersteps is None:
            max_supersteps = 4 * max(graph.num_vertices, 1) + 16

        if initial_active is None:
            active: List[int] = graph.sorted_vertices()
        else:
            active = sorted(set(initial_active) & graph.vertex_keys())

        dgraph = self.dgraph
        is_remote_pair = dgraph.is_remote_pair
        contracts = self._contracts
        if faults is not None:
            injector = resolve_faults(faults)
            failover = self._failover
            if failover is None:
                from repro.faults.membership import resolve_membership

                failover = resolve_membership(self._membership, injector, dgraph)
        else:
            injector = self._faults
            failover = self._failover
        if injector is not None:
            injector.begin_run()
        # marking corrupted guest copies needs both the schedule and the
        # auditor that will eventually catch them
        corrupts = (
            injector is not None and failover is not None
            and injector.plan.schedules_corruption
        )
        # the O(active·deg) read-set sweep is only needed when the checker
        # actually snapshots (isolation on); otherwise skip it entirely
        check_isolation = contracts is not None and contracts.check_isolation
        self._csr = None
        self._csr_kernel = None
        self._csr_fast = False
        kernel = (
            program.csr_kernel() if self._representation == "csr" else None
        )
        if kernel is not None:
            from repro.graph.csr import CSRPartition

            part = CSRPartition.attach(dgraph)
            part.ensure()
            part.sync_states(states)
            self._csr = part
            self._csr_kernel = kernel
            # typed-delta barriers only when nothing needs the standard
            # request lists; otherwise the kernel materializes them and
            # the dict-path barrier below runs unchanged
            self._csr_fast = (
                injector is None
                and self._sanitizer is None
                and not check_isolation
            )
            # ranked cache not needed for kernel sweeps; the context
            # lazily builds the default one if recovery paths ask
            self._ranked = None
        else:
            self._ranked = program.rank_cache(graph)
        runtime = self._runtime
        runtime.bind(self)
        runtime.begin_run(program, states)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.begin_engine_run(own_metrics, dgraph.num_workers)

        superstep = 0
        ran_supersteps = 0
        #: run-entry values of every state this run overwrote, restored if
        #: the run raises (exception safety for resumed maintenance states)
        dirty: Dict[int, Any] = {}
        try:
            while active:
                if ran_supersteps >= max_supersteps:
                    raise SuperstepLimitExceeded(max_supersteps)
                record = SuperstepRecord(superstep=superstep)
                record.worker_work = [0] * dgraph.num_workers

                checkpoint = None
                if injector is not None:
                    from repro.faults.recovery import SuperstepCheckpoint

                    checkpoint = SuperstepCheckpoint.capture(
                        superstep, states, active, dgraph
                    )

                if check_isolation:
                    read_set: Set[int] = set(active)
                    for u in active:
                        read_set.update(graph.neighbors(u))
                    contracts.begin_superstep(superstep, read_set, states)

                # parallel backends pre-draw the barrier's fault schedule
                # so the owning worker processes observe their own faults;
                # draws are pure keyed hashes + fire-once, so the values
                # match what the inline barrier would draw below
                draws = None
                if injector is not None:
                    draws = runtime.predraw(
                        injector, superstep, dgraph.num_workers
                    )

                try:
                    sweep = runtime.sweep_scaleg(active, superstep, draws)
                    new_states = sweep.new_states
                    changed = sweep.changed
                    forced = sweep.forced
                    requests = sweep.requests
                    record.compute_work = sweep.compute_work
                    record.worker_work = sweep.worker_work
                    record.active_vertices = len(active)

                    if injector is not None:
                        if draws is not None and sweep.fault_echo != draws.echo():
                            from repro.errors import ParallelRuntimeError

                            raise ParallelRuntimeError(
                                f"superstep {superstep}: worker fault echo "
                                f"{sweep.fault_echo!r} disagrees with the "
                                f"barrier draws {draws.echo()!r}"
                            )
                        if failover is not None:
                            failover.view.advance()
                        # -- worker sweep: straggler delays (modelled time)
                        if draws is None:
                            for w in range(dgraph.num_workers):
                                delay = injector.straggler_delay(superstep, w)
                                if delay:
                                    own_metrics.recovery_straggler_s += delay
                                    own_metrics.wall_time_s += delay
                                if failover is not None and not failover.is_dead(w):
                                    # injector delays are *flagged* stragglers:
                                    # the detector must never count them toward
                                    # suspicion (slow is not dead)
                                    failover.view.heartbeat(
                                        w, delay_s=delay, injected=True
                                    )
                        else:
                            # pre-drawn path: apply each worker's echoed
                            # increments exactly once, in ascending worker
                            # order — the inline accumulation order, so the
                            # float meters stay bit-identical
                            for w, delay in enumerate(draws.delays):
                                if delay:
                                    own_metrics.merge_delta({
                                        "recovery_straggler_s": delay,
                                        "wall_time_s": delay,
                                    })
                                if failover is not None and not failover.is_dead(w):
                                    failover.view.heartbeat(
                                        w, delay_s=delay, injected=True
                                    )
                        # -- barrier: permanent losses (silence, not delay)
                        lost = draws.lost if draws is not None else (
                            injector.lost_workers(
                                superstep, range(dgraph.num_workers)
                            )
                        )
                        if lost:
                            raise_loss = WorkerLoss(
                                lost[0], superstep,
                                f"{len(lost)} worker(s) declared permanently "
                                "dead at the barrier",
                            )
                            raise_loss.workers = lost
                            raise raise_loss
                        # -- barrier commit: crash detection
                        crashed = draws.crashed if draws is not None else (
                            injector.crashed_workers(
                                superstep, range(dgraph.num_workers)
                            )
                        )
                        if crashed:
                            failure = WorkerFailure(
                                crashed[0], superstep,
                                f"{len(crashed)} worker(s) crashed at the "
                                "barrier",
                            )
                            failure.workers = crashed
                            raise failure
                except SyncRetryExhausted:
                    raise  # unrecoverable: escalate to the caller
                except WorkerLoss as loss:
                    if checkpoint is None or failover is None:
                        raise  # no membership subsystem: unrecoverable
                    # membership failover: declare the workers dead, hand
                    # their partitions to survivors (rendezvous), rebuild
                    # each lost host from the freshest surviving guest copy
                    # (or the delta log / barrier checkpoint), then replay
                    # the superstep on the shrunken cluster.  All costs go
                    # to the recovery meters; the logical meters keep the
                    # fault-free placement.
                    own_metrics.recovery_replayed_supersteps += 1
                    own_metrics.recovery_compute_work += record.compute_work
                    targets = failover.fail_over(
                        loss.workers or [loss.worker], superstep,
                        checkpoint, states, own_metrics, program.sync_bytes,
                    )
                    active = checkpoint.restore(states)
                    if self._csr is not None:
                        self._csr.sync_states(states)
                    if targets:
                        self._recovery_sweep(
                            program, targets, superstep, own_metrics
                        )
                    continue
                except WorkerFailure as failure:
                    if checkpoint is None:
                        raise  # not injected by us: no checkpoint to replay
                    # rollback-and-replay: nothing from this attempt has
                    # committed; restore the barrier checkpoint, rebuild the
                    # crashed workers' guest copies from host state, charge
                    # everything to the recovery meters, and replay.
                    from repro.faults.recovery import guest_rebuild_cost

                    crashed = getattr(failure, "workers", [failure.worker])
                    own_metrics.recovery_crashes += len(crashed)
                    own_metrics.recovery_replayed_supersteps += 1
                    own_metrics.recovery_compute_work += record.compute_work
                    rebuild_bytes, rebuild_records = guest_rebuild_cost(
                        dgraph, crashed, program.sync_bytes, checkpoint.states
                    )
                    own_metrics.recovery_resync_bytes += rebuild_bytes
                    own_metrics.recovery_resync_messages += rebuild_records
                    active = checkpoint.restore(states)
                    if self._csr is not None:
                        self._csr.sync_states(states)
                    continue

                if contracts is not None:
                    contracts.at_barrier(superstep, states)
                for u in new_states:
                    if u not in dirty:
                        dirty[u] = states[u]
                states.update(new_states)
                runtime.commit(new_states)
                if self._csr is not None:
                    self._csr.apply_new_states(new_states)

                if sweep.csr is not None:
                    # array fast path: sync + activation charging from the
                    # typed delta arrays (post-commit, like the loops below)
                    from repro.graph.csr import finish_barrier

                    next_active = finish_barrier(
                        self._csr, self._csr_kernel, sweep.csr, changed,
                        record, dgraph,
                    )
                    own_metrics.observe(record, keep_record=keep_records)
                    if failover is not None:
                        self._apply_membership_transitions(
                            failover, injector, superstep, states,
                            own_metrics, program.sync_bytes,
                        )
                    active = sorted(next_active)
                    superstep += 1
                    ran_supersteps += 1
                    continue

                # --- charge state sync: once per (synced vertex, guest machine)
                changed_set = set(changed)
                record.state_changes = len(changed)
                guest_machines = dgraph.guest_machines
                sync_bytes = program.sync_bytes
                sync_order = changed + forced
                if injector is not None:
                    permuted = injector.permute(superstep, sync_order)
                    if permuted is not sync_order:
                        own_metrics.recovery_reorders += 1
                        sync_order = permuted
                for u in sync_order:
                    payload = VERTEX_ID_BYTES + sync_bytes(states[u])
                    for _machine in guest_machines(u):
                        wire = MESSAGE_OVERHEAD_BYTES + payload
                        if injector is not None:
                            drops = injector.sync_drops(superstep, u, _machine)
                            if drops:
                                if drops > injector.max_retries:
                                    raise SyncRetryExhausted(
                                        u, _machine, drops, superstep
                                    )
                                own_metrics.recovery_sync_retries += drops
                                own_metrics.recovery_resync_bytes += drops * wire
                                own_metrics.recovery_resync_messages += drops
                                own_metrics.recovery_backoff_s += (
                                    injector.backoff_time(drops)
                                )
                            dups = injector.sync_duplicates(superstep, u, _machine)
                            if dups:
                                own_metrics.recovery_sync_duplicates += dups
                                own_metrics.recovery_resync_bytes += dups * wire
                                own_metrics.recovery_resync_messages += dups
                            if corrupts and injector.corrupt_guest(
                                superstep, u, _machine
                            ):
                                # the delivered copy silently diverges in the
                                # replica — only the auditor can see it
                                failover.mark_corrupted(u, _machine)
                        record.remote_messages += 1
                        record.bytes_sent += wire

                # --- filter + charge activation routing, build next active ----
                synced_set = changed_set.union(forced)
                next_active: Set[int] = set()
                has_vertex = graph.has_vertex
                for source, plain, predicated in requests:
                    for target in plain:
                        if not has_vertex(target):
                            continue
                        next_active.add(target)
                        record.messages += 1
                        if is_remote_pair(source, target):
                            record.remote_messages += 1
                            if source in synced_set:
                                # piggybacked on the sync record already shipped
                                # to the target's machine
                                record.bytes_sent += ACTIVATION_ENTRY_BYTES
                            else:
                                record.bytes_sent += (
                                    MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
                                )
                    if not predicated:
                        continue
                    source_state = states[source]
                    for target, predicate in predicated:
                        if not has_vertex(target):
                            continue
                        if not predicate(source_state, states[target]):
                            continue
                        next_active.add(target)
                        record.messages += 1
                        if is_remote_pair(source, target):
                            record.remote_messages += 1
                            if source in synced_set:
                                record.bytes_sent += ACTIVATION_ENTRY_BYTES
                            else:
                                record.bytes_sent += (
                                    MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
                                )
                if injector is not None and failover is not None:
                    # bounded delta log (reconstruction source for solitary
                    # vertices) + this superstep's sampled anti-entropy pass
                    failover.record_deltas(
                        changed, states, sync_bytes, own_metrics
                    )
                    failover.audit(states, sync_bytes, own_metrics)
                own_metrics.observe(record, keep_record=keep_records)
                if failover is not None:
                    self._apply_membership_transitions(
                        failover, injector, superstep, states,
                        own_metrics, program.sync_bytes,
                    )
                active = sorted(next_active)
                superstep += 1
                ran_supersteps += 1
        except BaseException:
            # leave no partial superstep behind: callers resuming from
            # ``states`` (dynamic maintenance) see their run-entry values
            for u, value in sorted(dirty.items()):
                states[u] = value
            raise
        finally:
            if sanitizer is not None:
                sanitizer.end_engine_run(own_metrics)

        if self._contracts is not None:
            members = program.contract_members(states)
            if members is not None:
                self._contracts.at_convergence(graph, members)

        per_worker = self._memory_snapshot(program, states)
        own_metrics.observe_memory(per_worker)
        own_metrics.wall_time_s += time.perf_counter() - started
        return ScaleGResult(states=states, metrics=own_metrics)

    # ------------------------------------------------------------------
    def _apply_membership_transitions(
        self, failover, injector, superstep: int, states: Dict[int, Any],
        metrics: RunMetrics, sync_bytes,
    ) -> None:
        """Apply voluntary joins/drains due at this barrier's end.

        Runs *after* commit, so a crash raised earlier this superstep has
        already rolled back before any transition consumes (and the
        injector's fire-once keys make a replayed barrier safe anyway).
        A transition invalidates the published CSR frame: the partition's
        structure version bumps so the next sweep reships it.
        """
        applied_before = len(failover.transitions)
        failover.barrier_transitions(
            superstep, states, metrics, sync_bytes, injector
        )
        if len(failover.transitions) > applied_before and self._csr is not None:
            self._csr.mark_membership_change()

    # ------------------------------------------------------------------
    def _recovery_sweep(self, program: ScaleGProgram, targets: List[int],
                        superstep: int, metrics: RunMetrics) -> None:
        """Re-examine the DOIMIS affected set after a failover.

        Every reconstructed host and each of its neighbours recomputes
        against the restored barrier states.  Reconstruction is exact —
        surviving guest copies are barrier-fresh, the delta log and the
        checkpoint are barrier snapshots — so this sweep *verifies* rather
        than repairs: state writes and activation requests are discarded
        (the replayed superstep redoes the real work), and the verification
        work is charged to ``recovery_compute_work`` so the logical meters
        stay bit-identical to the fault-free run's.
        """
        ctx = ScaleGContext(self, 0, 0, None)
        states = self._states
        graph = self.dgraph.graph
        for u in targets:
            if not graph.has_vertex(u) or u not in states:
                continue
            ctx._reset(u, superstep, states[u])
            program.compute(ctx)
            metrics.recovery_compute_work += max(ctx._work, 1)
            ctx._activations = []
            ctx._pred_activations = []

    # ------------------------------------------------------------------
    def charge_graph_update(
        self,
        endpoints: Iterable[int],
        new_guests: Iterable[int],
        program: ScaleGProgram,
        states: Dict[int, Any],
        metrics: RunMetrics,
    ) -> None:
        """Charge the communication a graph update itself costs.

        Per the paper (Section IV-A): an edge update changes the degrees of
        its endpoints, and "the updated degree of a vertex will be sent to
        its copies in other machines".  Additionally, a brand-new guest copy
        (an endpoint becomes adjacent to a machine that had no replica)
        ships the full vertex state once: ``new_guests`` lists the vertex
        gaining each new copy (one entry per copy), so variable-size states
        (weighted programs, dict states) are priced at *that* vertex's own
        ``sync_bytes``, not an arbitrary sample's.
        """
        from repro.pregel.metrics import DEGREE_BYTES

        for u in endpoints:
            if not self.dgraph.has_vertex(u):
                continue
            copies = len(self.dgraph.guest_machines(u))
            metrics.bytes_sent += copies * (
                MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES + DEGREE_BYTES
            )
            metrics.remote_messages += copies
        for u in new_guests:
            state = states.get(u)
            payload = VERTEX_ID_BYTES + (
                program.sync_bytes(state) if state is not None else 8
            )
            metrics.bytes_sent += MESSAGE_OVERHEAD_BYTES + payload
            metrics.remote_messages += 1

    def _memory_snapshot(
        self, program: ScaleGProgram, states: Dict[int, Any]
    ) -> Dict[int, int]:
        uniform = program.uniform_state_bytes()
        if uniform is not None and len(states) == self.dgraph.graph.num_vertices:
            # constant state size: closed-form per-worker totals (same
            # integers as the per-vertex walk, O(num_workers) instead of
            # O(n + guests))
            return self.dgraph.structural_memory_bytes_uniform(uniform)
        state_bytes = {u: program.state_bytes(s) for u, s in sorted(states.items())}
        return self.dgraph.structural_memory_bytes(state_bytes)
