"""Deterministic fault injection + recovery for the BSP substrate.

The paper's convergence theorems (4.2/6.1) make DOIMIS an unusually crisp
robustness oracle: the maintained set is the *unique* greedy fixpoint of
``≺``, so a run that survives injected faults must converge to a set
**bit-identical** to the fault-free run.  This package supplies:

- :class:`~repro.faults.plan.FaultPlan` — seeded, reproducible schedules of
  worker crashes, dropped/duplicated/reordered guest-sync records,
  straggler delays, permanent worker losses, and silent guest-copy
  corruption;
- :class:`~repro.faults.injector.FaultInjector` — the runtime the engines
  consult at their interception points (sync emission, barrier commit,
  worker sweep), with consumption semantics and a retry policy;
- :mod:`~repro.faults.recovery` — superstep checkpoints and the
  rollback-and-replay cost model (guest-table rebuild from host state);
- :mod:`~repro.faults.membership` — the failure detector (phi-accrual
  heartbeats), rendezvous partition reassignment, guest-copy host
  reconstruction, the bounded delta log, and the anti-entropy auditor;
- :mod:`~repro.faults.chaos` — the chaos harness behind ``repro-mis chaos``
  sweeping fault presets over the Fig. 10/11 workloads and asserting the
  convergence oracle.
"""

from repro.faults.chaos import PLAN_PRESETS, chaos_suite, run_chaos_case
from repro.faults.injector import FaultInjector, FaultStats, resolve_faults
from repro.faults.membership import (
    FailoverCoordinator,
    GuestAuditor,
    MembershipConfig,
    MembershipView,
    TransitionEvent,
    rendezvous_worker,
    resolve_membership,
)
from repro.faults.plan import (
    CorruptGuestSpec,
    CrashSpec,
    DrainSpec,
    FaultPlan,
    JoinSpec,
    LossSpec,
    ReorderSpec,
    StragglerSpec,
    SyncDropSpec,
    SyncDuplicateSpec,
)
from repro.faults.recovery import SuperstepCheckpoint, guest_rebuild_cost

__all__ = [
    "CorruptGuestSpec",
    "CrashSpec",
    "DrainSpec",
    "FailoverCoordinator",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "GuestAuditor",
    "JoinSpec",
    "LossSpec",
    "MembershipConfig",
    "MembershipView",
    "PLAN_PRESETS",
    "ReorderSpec",
    "StragglerSpec",
    "SuperstepCheckpoint",
    "SyncDropSpec",
    "TransitionEvent",
    "SyncDuplicateSpec",
    "chaos_suite",
    "guest_rebuild_cost",
    "rendezvous_worker",
    "resolve_faults",
    "resolve_membership",
    "run_chaos_case",
]
