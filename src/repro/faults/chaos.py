"""Chaos harness: sweep seeded fault schedules, assert the convergence oracle.

Theorems 4.2/6.1 make DOIMIS self-checking under failure: the maintained set
is the *unique* greedy fixpoint of ``≺``, so whatever faults the engines
survive, the final set must be **bit-identical** to the fault-free run — and
because recovery detects crashes at the barrier *before* anything commits,
every logical meter must match too.  Each chaos case therefore asserts:

1. the faulted final set equals the fault-free reference set, member for
   member;
2. the set is a valid MIS fixpoint (independence + maximality + the greedy
   order, via :func:`~repro.core.verification.assert_valid_mis`);
3. all logical meters (the ``bench-perf`` ``LOGICAL_FIELDS`` plus
   ``compute_work``) are bit-identical to the reference — recovery overhead
   may only appear under the ``recovery_*`` meter family;
4. for the ``none`` preset additionally: zero faults injected, zero
   recovery events (the empty plan is byte-for-byte the fault-free build).

Workloads are scaled-down Fig. 10/11 protocols (delete ``k`` random edges,
re-insert them; single-update and batched) on the small stand-in datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.activation import ActivationStrategy
from repro.core.doimis import DOIMISMaintainer
from repro.errors import ReproError, WorkloadError
from repro.faults.injector import FaultInjector
from repro.faults.plan import DrainSpec, FaultPlan, JoinSpec, LossSpec

#: fault-plan presets swept by ``repro-mis chaos`` — kwargs for
#: :class:`FaultPlan` (the seed is supplied per case).  Probabilities are
#: per-opportunity; the smoke-scale workloads run thousands of them, so
#: every preset fires many times per case.
PLAN_PRESETS: Dict[str, Dict[str, Any]] = {
    "none": {},
    "crash": {"crash_prob": 0.02},
    "drop": {"drop_prob": 0.01},
    "duplicate": {"duplicate_prob": 0.02},
    "straggler": {"straggler_prob": 0.05, "straggler_delay_s": 0.01},
    # permute every superstep that syncs >= 2 records — reorder is an
    # order-independence probe, so the adversarial schedule is "always"
    "reorder": {"reorder_prob": 1.0},
    "composed": {
        "crash_prob": 0.01,
        "drop_prob": 0.005,
        "duplicate_prob": 0.01,
        "straggler_prob": 0.02,
        "straggler_delay_s": 0.01,
        "reorder_prob": 0.1,
    },
    # a worker dies for good: the failure detector declares it dead at the
    # barrier, its partition rendezvous-reassigns to survivors, and every
    # lost host vertex reconstructs from the freshest surviving guest copy
    "worker-loss": {"loss_prob": 0.002},
    # many workers die across the stream (the injector never kills the last
    # survivor) — rendezvous reassignment must compose across deaths, and
    # reconstruction must survive a host dying together with its replicas
    "cascading-loss": {"loss_prob": 0.008},
    # losses pinned to mid-stream maintenance runs: failover interleaves
    # with the update protocol, not just the initial static computation
    "loss-under-stream": {
        "losses": (
            LossSpec(superstep=0, worker=2, run=3),
            LossSpec(superstep=0, worker=7, run=6),
        ),
    },
    # guest copies silently diverge from host state after a sync — only the
    # anti-entropy auditor (sampled checksums + read-repair) can see it
    "corrupt-guest": {"corrupt_prob": 0.02},
    # voluntary elasticity: workers drain mid-stream at a barrier, their
    # partitions migrating to survivors *before* they leave — all movement
    # cost must land on the rebalance_* family, never on recovery_*
    "drain-under-stream": {
        "drains": (
            DrainSpec(superstep=0, worker=3, run=4),
            DrainSpec(superstep=0, worker=6, run=8),
        ),
    },
    # a join and a drain in one stream: the pool grows by a new worker,
    # then shrinks — placement is re-rendezvoused at each epoch and the
    # fixpoint must stay bit-identical to the static-membership run
    "elastic": {
        "joins": (JoinSpec(superstep=0, worker=10, run=2),),
        "drains": (DrainSpec(superstep=0, worker=4, run=5),),
    },
    # the ISSUE's race: a voluntary drain with crashes firing around it —
    # the drained worker must never be drawn for a crash, and both the
    # drain's rebalance and the crashes' recovery must converge
    "drain-crash-race": {
        "drains": (DrainSpec(superstep=0, worker=2, run=3),),
        "crash_prob": 0.02,
    },
}


@dataclass(frozen=True)
class ChaosWorkload:
    """One Fig. 10/11-shaped maintenance workload at chaos-smoke scale."""

    tag: str  # stand-in dataset tag
    k: int  # delete k random edges, re-insert them (2k ops)
    batch_size: int
    workload_seed: int = 0

    @property
    def name(self) -> str:
        fig = "fig10_single" if self.batch_size == 1 else "fig11_batch"
        return f"{fig}_{self.tag}"


#: default sweep — one single-update stream and one batched stream, on the
#: two smallest stand-ins (chaos replays every workload once per preset per
#: seed, so smoke scale matters)
CHAOS_WORKLOADS: Tuple[ChaosWorkload, ...] = (
    ChaosWorkload(tag="AM", k=25, batch_size=1, workload_seed=5),
    ChaosWorkload(tag="SL", k=40, batch_size=10, workload_seed=9),
)

#: logical meters that must be bit-identical between the faulted run and
#: the fault-free reference (superset of ``bench-perf``'s LOGICAL_FIELDS:
#: recovery replays charge their compute to ``recovery_compute_work``, so
#: the logical ``compute_work`` must match too)
LOGICAL_METERS = (
    "supersteps", "active_vertices", "state_changes",
    "messages", "remote_messages", "bytes_sent", "compute_work",
)


def plan_for(preset: str, seed: int) -> FaultPlan:
    """The :class:`FaultPlan` for a named preset at ``seed``."""
    try:
        kwargs = PLAN_PRESETS[preset]
    except KeyError:
        raise WorkloadError(
            f"unknown chaos preset {preset!r}; "
            f"known: {', '.join(PLAN_PRESETS)}"
        ) from None
    return FaultPlan(seed=seed, **kwargs)


@dataclass
class ChaosReference:
    """The fault-free run's observables for one workload."""

    members: List[int]
    logical: Dict[str, int]
    #: logical meters of the initial static computation (faults fire there
    #: too — run 0 of the injector's schedule)
    init_logical: Dict[str, int] = field(default_factory=dict)


@dataclass
class ChaosCaseResult:
    """Outcome of one (workload, preset, seed) chaos case."""

    workload: str
    preset: str
    seed: int
    injected: Dict[str, int] = field(default_factory=dict)
    recovery: Dict[str, float] = field(default_factory=dict)
    divergence: Dict[str, int] = field(default_factory=dict)
    rebalance: Dict[str, float] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "preset": self.preset,
            "seed": self.seed,
            "ok": self.ok,
            "injected": dict(self.injected),
            "recovery": dict(self.recovery),
            "divergence": dict(self.divergence),
            "rebalance": dict(self.rebalance),
            "failures": list(self.failures),
        }


def _build_case(workload: ChaosWorkload):
    """(graph copy, ops) for one workload — deterministic per workload."""
    from repro.bench.workloads import delete_reinsert_workload
    from repro.graph.datasets import load_dataset

    base = load_dataset(workload.tag)
    ops = delete_reinsert_workload(base, workload.k, seed=workload.workload_seed)
    return base, ops


def _logical_fingerprint(metrics) -> Dict[str, int]:
    return {name: getattr(metrics, name) for name in LOGICAL_METERS}


def _run_maintenance(
    workload: ChaosWorkload, faults=None, membership=None,
    runtime=None, sanitize=None, representation=None,
) -> Tuple[DOIMISMaintainer, Any]:
    graph, ops = _build_case(workload)
    maintainer = DOIMISMaintainer(
        graph,
        num_workers=10,
        strategy=ActivationStrategy.SAME_STATUS,
        faults=faults,
        membership=membership,
        runtime=runtime,
        sanitize=sanitize,
        representation=representation,
    )
    try:
        maintainer.apply_stream(ops, batch_size=workload.batch_size)
    finally:
        if runtime is not None:
            maintainer.close()
    return maintainer, maintainer.update_metrics


def reference_run(
    workload: ChaosWorkload, representation=None
) -> ChaosReference:
    """The fault-free observables every chaos case compares against."""
    maintainer, metrics = _run_maintenance(
        workload, faults=None, representation=representation
    )
    return ChaosReference(
        members=sorted(maintainer.independent_set()),
        logical=_logical_fingerprint(metrics),
        init_logical=_logical_fingerprint(maintainer.init_metrics),
    )


def run_chaos_case(
    workload: ChaosWorkload,
    preset: str,
    seed: int,
    reference: Optional[ChaosReference] = None,
    membership=None,
    representation=None,
) -> ChaosCaseResult:
    """Replay ``workload`` under ``preset``'s seeded plan; check the oracle.

    ``reference`` lets a sweep reuse one fault-free run per workload; when
    omitted it is computed here.  ``membership`` overrides the failover
    tunables (losses and guest corruption auto-attach a default coordinator
    otherwise).  Never raises for an oracle violation — failures are
    reported on the result so a sweep surveys the whole grid.
    """
    if reference is None:
        reference = reference_run(workload, representation=representation)
    result = ChaosCaseResult(workload=workload.name, preset=preset, seed=seed)
    plan = plan_for(preset, seed)
    injector = FaultInjector(plan)

    try:
        maintainer, metrics = _run_maintenance(
            workload, faults=injector, membership=membership,
            representation=representation,
        )
    except ReproError as exc:
        # SyncRetryExhausted (drops beyond the retry budget) is the one
        # *designed* escalation; anything else is an oracle failure outright
        result.injected = injector.stats.as_dict()
        result.failures.append(f"run raised {type(exc).__name__}: {exc}")
        return result

    # close-out anti-entropy: corruption injected too recently for its
    # rotation slot must still be caught before we compare observables
    maintainer.final_audit()

    result.injected = injector.stats.as_dict()
    # faults fire during the initial static run too — its recovery charges
    # live on init_metrics, so report both meters combined
    init_recovery = maintainer.init_metrics.recovery_summary()
    update_recovery = metrics.recovery_summary()
    result.recovery = {
        name: init_recovery[name] + update_recovery[name]
        for name in update_recovery
    }
    init_divergence = maintainer.init_metrics.divergence_summary()
    update_divergence = metrics.divergence_summary()
    result.divergence = {
        name: init_divergence[name] + update_divergence[name]
        for name in update_divergence
    }
    init_rebalance = maintainer.init_metrics.rebalance_summary()
    update_rebalance = metrics.rebalance_summary()
    result.rebalance = {
        name: init_rebalance[name] + update_rebalance[name]
        for name in update_rebalance
    }

    failover = maintainer.failover
    if failover is not None:
        leftover = failover.auditor.corrupted_pairs()
        if leftover:
            result.failures.append(
                f"{len(leftover)} corrupted guest cop(ies) survived the "
                f"final audit: {leftover[:5]}"
            )

    members = sorted(maintainer.independent_set())
    if members != reference.members:
        result.failures.append(
            f"final set diverged: |faulted|={len(members)} "
            f"|reference|={len(reference.members)}"
        )
    try:
        maintainer.verify()
    except ReproError as exc:
        result.failures.append(f"fixpoint verification failed: {exc}")

    logical = _logical_fingerprint(metrics)
    init_logical = _logical_fingerprint(maintainer.init_metrics)
    for name in LOGICAL_METERS:
        if logical[name] != reference.logical[name]:
            result.failures.append(
                f"logical meter {name} drifted: faulted={logical[name]} "
                f"reference={reference.logical[name]}"
            )
        if init_logical[name] != reference.init_logical[name]:
            result.failures.append(
                f"init logical meter {name} drifted: "
                f"faulted={init_logical[name]} "
                f"reference={reference.init_logical[name]}"
            )

    if plan.is_empty:
        if result.injected_total:
            result.failures.append(
                f"empty plan injected {result.injected_total} fault(s)"
            )
        recovery_total = sum(result.recovery.values())
        if recovery_total:
            result.failures.append(
                f"empty plan charged recovery meters: {result.recovery}"
            )
        divergence_total = sum(result.divergence.values())
        if divergence_total:
            result.failures.append(
                f"empty plan charged divergence meters: {result.divergence}"
            )
        rebalance_total = sum(result.rebalance.values())
        if rebalance_total:
            result.failures.append(
                f"empty plan charged rebalance meters: {result.rebalance}"
            )
    if plan.schedules_transitions:
        applied = (result.injected.get("drains", 0)
                   + result.injected.get("joins", 0))
        if not applied:
            result.failures.append(
                "plan schedules membership transitions but none applied"
            )
        if not result.rebalance.get("rebalance_moved_vertices"):
            result.failures.append(
                "membership transitions applied but no movement was "
                "charged to the rebalance meters"
            )
    return result


@dataclass
class ServeChaosResult:
    """Outcome of one serve crash/replay chaos case.

    The oracle: a service killed mid-window (``abandon`` — no drain, no
    final commit, no closing checkpoint) and recovered from its WAL must
    finish the trace with the *same members and the same cumulative
    logical meters* as a service that never crashed.  ``audit`` must also
    certify exactly-once accounting on both log directories.
    """

    tag: str
    seed: int
    num_ops: int
    crashed_after: int = 0
    replayed_windows: int = 0
    replayed_events: int = 0
    quarantined: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tag": self.tag,
            "seed": self.seed,
            "num_ops": self.num_ops,
            "ok": self.ok,
            "crashed_after": self.crashed_after,
            "replayed_windows": self.replayed_windows,
            "replayed_events": self.replayed_events,
            "quarantined": self.quarantined,
            "failures": list(self.failures),
        }


def serve_crash_replay(
    tag: str = "AM",
    num_ops: int = 240,
    seed: int = 7,
    poison_prob: float = 0.0,
    crash_commits: int = 4,
    runtime_factory=None,
    representation=None,
    faults_factory=None,
    wal_root: Optional[str] = None,
) -> ServeChaosResult:
    """Kill an ingestion service mid-window, recover it, assert bit-identity.

    Runs the same seeded bursty trace twice: once uninterrupted, once
    crashed (``abandon``) after ``crash_commits`` committed windows with
    events still pending, then recovered via WAL replay and finished.
    ``runtime_factory`` builds a fresh execution runtime per maintainer
    (the crashed one's pool dies with it); ``faults_factory`` builds a
    fresh :class:`~repro.faults.injector.FaultInjector` per run so
    injected transient faults compose with the retry path.
    """
    import shutil
    import tempfile

    from repro.core.maintainer import MISMaintainer
    from repro.graph.datasets import load_dataset
    from repro.serve import (
        AdaptiveWindowController,
        IngestionService,
        RetryPolicy,
        TraceConfig,
        WindowConfig,
        audit_log,
        bursty_trace,
    )

    result = ServeChaosResult(tag=tag, seed=seed, num_ops=num_ops)
    ops, timestamps = bursty_trace(
        load_dataset(tag),
        TraceConfig(num_ops=num_ops, seed=seed, poison_prob=poison_prob),
    )

    def make_controller():
        return AdaptiveWindowController(
            WindowConfig(min_window=4, max_window=64, initial_window=8)
        )

    def make_maintainer():
        return MISMaintainer(
            load_dataset(tag),
            num_workers=10,
            strategy=ActivationStrategy.SAME_STATUS,
            runtime=runtime_factory() if runtime_factory else None,
            representation=representation,
            faults=faults_factory() if faults_factory else None,
        )

    retry = RetryPolicy(max_retries=2, backoff_base_s=0.2)
    root = wal_root or tempfile.mkdtemp(prefix="serve-chaos-")
    dir_ref = f"{root}/reference"
    dir_crash = f"{root}/crashed"
    try:
        reference = IngestionService(
            make_maintainer(), dir_ref, controller=make_controller(),
            retry=retry, checkpoint_every=3,
        )
        for op, ts in zip(ops, timestamps):
            reference.submit(op, ts)
        reference.close()
        ref_members = sorted(reference.maintainer.independent_set())
        ref_totals = reference.logical_totals()

        crashed = IngestionService(
            make_maintainer(), dir_crash, controller=make_controller(),
            retry=retry, checkpoint_every=3,
        )
        cut = 0
        for i, (op, ts) in enumerate(zip(ops, timestamps)):
            crashed.submit(op, ts)
            if crashed.windows_committed >= crash_commits and crashed.pending >= 2:
                cut = i + 1
                break
        if not cut or cut >= len(ops):
            result.failures.append(
                f"trace too short to crash mid-window (cut={cut})"
            )
            crashed.abandon()
            return result
        crashed.abandon()  # the "kill": no drain, no commit, no checkpoint
        result.crashed_after = cut

        recovered = IngestionService.recover(
            dir_crash,
            maintainer_kwargs={
                "runtime": runtime_factory() if runtime_factory else None,
                "representation": representation,
                "faults": faults_factory() if faults_factory else None,
            },
            controller=make_controller(), retry=retry, checkpoint_every=3,
        )
        result.replayed_windows = recovered.stats.replayed_windows
        result.replayed_events = recovered.stats.replayed_events
        for op, ts in zip(ops[cut:], timestamps[cut:]):
            recovered.submit(op, ts)
        recovered.close()
        result.quarantined = recovered.stats.quarantined

        rec_members = sorted(recovered.maintainer.independent_set())
        rec_totals = recovered.logical_totals()
        if rec_members != ref_members:
            result.failures.append(
                f"members diverged after replay: |recovered|="
                f"{len(rec_members)} |reference|={len(ref_members)}"
            )
        for name in LOGICAL_METERS:
            if rec_totals[name] != ref_totals[name]:
                result.failures.append(
                    f"cumulative meter {name} drifted: recovered="
                    f"{rec_totals[name]} reference={ref_totals[name]}"
                )
        for label, directory in (("reference", dir_ref),
                                 ("crashed", dir_crash)):
            problems, summary = audit_log(directory)
            result.failures.extend(
                f"{label} log audit: {p}" for p in problems
            )
            expected = summary["applied"] + summary["quarantined"]
            if summary["events"] != expected or summary["pending"]:
                result.failures.append(
                    f"{label} log lost events: {summary}"
                )
    finally:
        if wal_root is None:
            shutil.rmtree(root, ignore_errors=True)
    return result


def serve_drain_replay(
    tag: str = "AM",
    num_ops: int = 160,
    seed: int = 7,
    preset: str = "drain-under-stream",
    runtime_factory=None,
    representation=None,
    wal_root: Optional[str] = None,
) -> ServeChaosResult:
    """Drain worker(s) mid-window of a bursty serve trace; assert the oracle.

    Runs the same seeded trace twice: once with static membership, once
    with ``preset``'s scheduled drains/joins firing at mid-stream barriers.
    Theorem 4.2/6.1 makes the comparison exact: members and every
    cumulative logical meter must be bit-identical to the
    static-membership run, with all transition costs confined to the
    ``rebalance_*`` family.
    """
    import shutil
    import tempfile

    from repro.core.maintainer import MISMaintainer
    from repro.graph.datasets import load_dataset
    from repro.serve import (
        AdaptiveWindowController,
        IngestionService,
        TraceConfig,
        WindowConfig,
        audit_log,
        bursty_trace,
    )

    result = ServeChaosResult(tag=tag, seed=seed, num_ops=num_ops)
    ops, timestamps = bursty_trace(
        load_dataset(tag),
        TraceConfig(num_ops=num_ops, seed=seed),
    )

    def make_controller():
        return AdaptiveWindowController(
            WindowConfig(min_window=4, max_window=64, initial_window=8)
        )

    def make_maintainer(faults):
        return MISMaintainer(
            load_dataset(tag),
            num_workers=10,
            strategy=ActivationStrategy.SAME_STATUS,
            runtime=runtime_factory() if runtime_factory else None,
            representation=representation,
            faults=faults,
        )

    root = wal_root or tempfile.mkdtemp(prefix="serve-drain-")
    try:
        runs = {}
        for label, faults in (
            ("static", None),
            ("elastic", FaultInjector(plan_for(preset, seed))),
        ):
            service = IngestionService(
                make_maintainer(faults), f"{root}/{label}",
                controller=make_controller(), checkpoint_every=3,
            )
            for op, ts in zip(ops, timestamps):
                service.submit(op, ts)
            service.close()
            runs[label] = service
        static, elastic = runs["static"], runs["elastic"]

        if sorted(elastic.maintainer.independent_set()) != \
                sorted(static.maintainer.independent_set()):
            result.failures.append(
                "members diverged between elastic and static membership"
            )
        static_totals = static.logical_totals()
        elastic_totals = elastic.logical_totals()
        for name in LOGICAL_METERS:
            if elastic_totals[name] != static_totals[name]:
                result.failures.append(
                    f"cumulative meter {name} drifted: elastic="
                    f"{elastic_totals[name]} static={static_totals[name]}"
                )
        metrics = elastic.maintainer.update_metrics
        rebalance = metrics.rebalance_summary()
        if not rebalance["rebalance_drains"]:
            result.failures.append(
                f"preset {preset!r} applied no drain mid-stream"
            )
        if not rebalance["rebalance_moved_vertices"]:
            result.failures.append(
                "drain applied but no movement charged to rebalance meters"
            )
        failover = elastic.maintainer.failover
        if failover is not None and failover.epoch < 1:
            result.failures.append("membership epoch never advanced")
        for label in ("static", "elastic"):
            problems, _summary = audit_log(f"{root}/{label}")
            result.failures.extend(
                f"{label} log audit: {p}" for p in problems
            )
    finally:
        if wal_root is None:
            shutil.rmtree(root, ignore_errors=True)
    return result


def chaos_suite(
    presets: Sequence[str] = (),
    seeds: Iterable[int] = (0,),
    workloads: Sequence[ChaosWorkload] = CHAOS_WORKLOADS,
    membership=None,
    representation=None,
) -> List[ChaosCaseResult]:
    """Sweep ``presets x seeds`` over ``workloads`` (reference once each).

    Defaults to every preset in :data:`PLAN_PRESETS`.  ``membership``
    overrides the failover tunables for every case.  Returns one
    :class:`ChaosCaseResult` per case; callers decide whether any failure is
    fatal (``repro-mis chaos`` exits non-zero).
    """
    selected = list(presets) or list(PLAN_PRESETS)
    for preset in selected:
        if preset not in PLAN_PRESETS:
            raise WorkloadError(
                f"unknown chaos preset {preset!r}; "
                f"known: {', '.join(PLAN_PRESETS)}"
            )
    results: List[ChaosCaseResult] = []
    for workload in workloads:
        reference = reference_run(workload, representation=representation)
        for preset in selected:
            for seed in seeds:
                results.append(
                    run_chaos_case(
                        workload, preset, seed,
                        reference=reference, membership=membership,
                        representation=representation,
                    )
                )
    return results
