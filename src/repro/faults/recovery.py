"""Superstep checkpoints and recovery costing.

ScaleG/Pregel recovery follows the classic BSP rollback protocol:

1. at the top of every superstep (while an injector is active) the engine
   captures a :class:`SuperstepCheckpoint` — vertex states, the pending
   activation set, and the guest directory;
2. a crash detected at the barrier aborts the attempt *before* any buffered
   write commits, raises-and-handles a typed
   :class:`~repro.errors.WorkerFailure` internally, restores the checkpoint
   (defensive: even a program that broke double-buffer discipline mid-sweep
   is rolled back), rebuilds the crashed workers' guest tables from host
   state, and replays the superstep;
3. everything the recovery cost — the aborted sweep's compute, the guest
   rebuild bytes — lands on the ``recovery_*`` meters, never the logical
   ones, so a recovered run's logical meters are bit-identical to the
   fault-free run's (the chaos oracle).

The checkpoint's JSON payload follows the
:meth:`~repro.core.maintainer.MISMaintainer.save` conventions (``format`` /
``version`` header, sorted vertex keys) so checkpoints can be persisted and
audited with the same tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.errors import CheckpointError
from repro.pregel.metrics import MESSAGE_OVERHEAD_BYTES, VERTEX_ID_BYTES

FORMAT = "repro-mis-superstep-checkpoint"
VERSION = 1


def _snapshot_states(states: Dict[int, Any]) -> Dict[int, Any]:
    """Value snapshot of a state map (deep-copies mutable states)."""
    from repro.analysis.runtime import _snapshot

    return {u: _snapshot(s) for u, s in states.items()}


@dataclass
class SuperstepCheckpoint:
    """Everything needed to replay one superstep after a barrier crash."""

    superstep: int
    #: vertex states as of the *previous* barrier
    states: Dict[int, Any]
    #: pending activations — the vertices due to run this superstep
    active: List[int]
    #: guest directory: vertex -> machines holding a guest copy
    guests: Dict[int, List[int]]

    @classmethod
    def capture(cls, superstep: int, states: Dict[int, Any],
                active: List[int], dgraph=None) -> "SuperstepCheckpoint":
        """Snapshot the barrier state (guest tables included when the engine
        runs on ScaleG's guest directory; Pregel has no guest copies)."""
        guests: Dict[int, List[int]] = {}
        if dgraph is not None:
            guests = {
                u: machines
                for u in states
                if (machines := sorted(dgraph.guest_machines(u)))
            }
        return cls(
            superstep=superstep,
            states=_snapshot_states(states),
            active=list(active),
            guests=guests,
        )

    def restore(self, states: Dict[int, Any]) -> List[int]:
        """Reset ``states`` (in place) to the checkpoint; returns the pending
        activation set to replay."""
        states.clear()
        states.update(_snapshot_states(self.states))
        return list(self.active)

    # ------------------------------------------------------------------
    # persistence (MISMaintainer.save conventions)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """A JSON-able payload (states must themselves be JSON-able)."""
        return {
            "format": FORMAT,
            "version": VERSION,
            "superstep": self.superstep,
            "active": sorted(self.active),
            "states": {str(u): self.states[u] for u in sorted(self.states)},
            "guests": {str(u): self.guests[u] for u in sorted(self.guests)},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any],
                     path: str = "<payload>") -> "SuperstepCheckpoint":
        """Rebuild from :meth:`to_payload` output, validating the header."""
        if not isinstance(payload, dict) or payload.get("format") != FORMAT:
            raise CheckpointError(path, f"not a {FORMAT} document")
        version = payload.get("version")
        if not isinstance(version, int) or version > VERSION or version < 1:
            raise CheckpointError(
                path, f"unsupported checkpoint version {version!r} "
                f"(this build reads <= {VERSION})"
            )
        try:
            return cls(
                superstep=int(payload["superstep"]),
                states={int(u): s for u, s in payload["states"].items()},
                active=[int(u) for u in payload["active"]],
                guests={int(u): [int(w) for w in ws]
                        for u, ws in payload.get("guests", {}).items()},
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(path, f"malformed payload: {exc}") from exc


def guest_rebuild_cost(dgraph, crashed_workers, sync_bytes_of,
                       states: Dict[int, Any]):
    """Cost of reconstructing guest copies lost with ``crashed_workers``.

    A crashed worker loses every guest copy it hosted; each is rebuilt by
    shipping the owning vertex's current state from its host machine — one
    record per lost copy, priced like a normal sync record.  The guest
    directory (kept in lock-step with the graph) makes enumerating the lost
    copies cheap.  Returns ``(bytes, records)``.
    """
    from repro.scaleg.guest import guest_vertices_on

    crashed = set(crashed_workers)
    bytes_total = 0
    records = 0
    for worker in sorted(crashed):
        for u in guest_vertices_on(dgraph, worker):
            state = states.get(u)
            payload = VERTEX_ID_BYTES + (
                sync_bytes_of(state) if state is not None else 8
            )
            bytes_total += MESSAGE_OVERHEAD_BYTES + payload
            records += 1
    return bytes_total, records
