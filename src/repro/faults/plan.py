"""Seeded fault schedules (:class:`FaultPlan`).

A plan answers, deterministically, "does fault X fire at point Y?" for the
well-defined interception points the engines expose:

- **barrier commit** — does worker ``w`` crash at the barrier of superstep
  ``s``?  (Recovery: roll back to the superstep checkpoint, rebuild the
  crashed workers' guest tables from host state, replay the sweep.)
- **sync emission** — is the guest-sync record ``vertex -> machine``
  dropped (how many times before a send succeeds) or duplicated?
- **worker sweep** — does worker ``w`` straggle this superstep, and by how
  much modelled wall time?  Is the superstep's sync/delivery order
  adversarially permuted?

Two authoring styles compose:

- **explicit specs** (:class:`CrashSpec` & friends) pin a fault to an exact
  ``(run, superstep, ...)`` coordinate — what the unit tests use;
- **seeded probabilities** draw every decision from a keyed hash of
  ``(seed, kind, run, superstep, ...)``, so a schedule is fully reproducible
  from its seed yet independent of call order — what the chaos harness
  sweeps.

Plans are *pure*: they never remember what fired.  Consumption (a crash
fires once, then the replayed superstep proceeds) is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import WorkloadError

#: hard ceiling on how many times one record may be scheduled to drop —
#: anything above the injector's retry budget escalates to
#: :class:`~repro.errors.SyncRetryExhausted` anyway
MAX_DROP_ATTEMPTS = 8


@dataclass(frozen=True)
class CrashSpec:
    """Worker ``worker`` crashes at the barrier of ``superstep``.

    ``run`` selects which engine run (the maintainer starts one run per
    batch; run 0 is the initial static computation); ``None`` matches every
    run.
    """

    superstep: int
    worker: int
    run: Optional[int] = None


@dataclass(frozen=True)
class SyncDropSpec:
    """The sync record ``vertex -> machine`` is dropped ``attempts`` times.

    ``machine=None`` matches the record to every guest machine of the
    vertex.  Each failed attempt is retried with exponential backoff; more
    failures than the injector's ``max_retries`` escalate to
    :class:`~repro.errors.SyncRetryExhausted`.
    """

    superstep: int
    vertex: int
    attempts: int = 1
    machine: Optional[int] = None
    run: Optional[int] = None


@dataclass(frozen=True)
class SyncDuplicateSpec:
    """The sync record ``vertex -> machine`` arrives ``copies`` extra times
    (the receiver applies it idempotently and the waste is metered)."""

    superstep: int
    vertex: int
    copies: int = 1
    machine: Optional[int] = None
    run: Optional[int] = None


@dataclass(frozen=True)
class StragglerSpec:
    """Worker ``worker`` takes ``delay_s`` extra modelled seconds in the
    sweep of ``superstep``."""

    superstep: int
    worker: int
    delay_s: float = 0.05
    run: Optional[int] = None


@dataclass(frozen=True)
class ReorderSpec:
    """The sync/delivery order of ``superstep`` is adversarially permuted."""

    superstep: int
    run: Optional[int] = None


@dataclass(frozen=True)
class LossSpec:
    """Worker ``worker`` dies *permanently* at the barrier of ``superstep``.

    Unlike :class:`CrashSpec` (transient: rollback and replay on the same
    worker set), a loss removes the worker from the cluster for the rest of
    the update stream — its partition is reassigned to survivors and its
    host vertices reconstructed from surviving guest copies (see
    :mod:`repro.faults.membership`).
    """

    superstep: int
    worker: int
    run: Optional[int] = None


@dataclass(frozen=True)
class DrainSpec:
    """Worker ``worker`` *voluntarily* drains at the barrier of ``superstep``.

    Unlike :class:`LossSpec` (involuntary: detected by phi-accrual, state
    reconstructed from replicas), a drain is planned: the worker migrates
    its host state, guest copies and rank caches to the remaining members
    *before* leaving, and the cost lands in the ``rebalance_*`` meter
    family instead of ``recovery_*``.
    """

    superstep: int
    worker: int
    run: Optional[int] = None


@dataclass(frozen=True)
class JoinSpec:
    """Worker ``worker`` *voluntarily* joins at the barrier of ``superstep``.

    The joiner is streamed its HRW-minimal share of partitions from the
    live hosts (never from checkpoints); the movement cost lands in the
    ``rebalance_*`` meter family.
    """

    superstep: int
    worker: int
    run: Optional[int] = None


@dataclass(frozen=True)
class CorruptGuestSpec:
    """The guest copy ``vertex -> machine`` silently diverges from the host
    state after this superstep's sync (a bit flip in the replica, not on the
    wire — only the anti-entropy auditor can see it)."""

    superstep: int
    vertex: int
    machine: Optional[int] = None
    run: Optional[int] = None


def _matches(spec_run: Optional[int], run: int) -> bool:
    return spec_run is None or spec_run == run


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of injectable faults.

    All probabilities are per-opportunity: ``crash_prob`` per
    ``(run, superstep, worker)`` barrier, ``drop_prob``/``duplicate_prob``
    per emitted sync record, ``straggler_prob`` per ``(superstep, worker)``
    sweep, ``reorder_prob`` per superstep.  ``FaultPlan()`` is the empty
    plan: engines behave (and meter) exactly as if no plan were attached.
    """

    seed: int = 0
    crash_prob: float = 0.0
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    straggler_prob: float = 0.0
    reorder_prob: float = 0.0
    #: per-(run, superstep, worker) probability of *permanent* worker loss
    loss_prob: float = 0.0
    #: per-sync-record probability of silent guest-copy corruption
    corrupt_prob: float = 0.0
    #: seeded drops fail 1..max_drop_attempts times (drawn per record)
    max_drop_attempts: int = 2
    #: modelled delay of a seeded straggler event
    straggler_delay_s: float = 0.05
    crashes: Tuple[CrashSpec, ...] = field(default_factory=tuple)
    drops: Tuple[SyncDropSpec, ...] = field(default_factory=tuple)
    duplicates: Tuple[SyncDuplicateSpec, ...] = field(default_factory=tuple)
    stragglers: Tuple[StragglerSpec, ...] = field(default_factory=tuple)
    reorders: Tuple[ReorderSpec, ...] = field(default_factory=tuple)
    losses: Tuple[LossSpec, ...] = field(default_factory=tuple)
    corruptions: Tuple[CorruptGuestSpec, ...] = field(default_factory=tuple)
    #: planned membership transitions (voluntary elasticity) — always
    #: explicit coordinates, never probabilistic: a rebalance is an
    #: operator decision, not an accident
    drains: Tuple[DrainSpec, ...] = field(default_factory=tuple)
    joins: Tuple[JoinSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        for name in ("crash_prob", "drop_prob", "duplicate_prob",
                     "straggler_prob", "reorder_prob", "loss_prob",
                     "corrupt_prob"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise WorkloadError(f"{name} must be in [0, 1], got {p}")
        if not (1 <= self.max_drop_attempts <= MAX_DROP_ATTEMPTS):
            raise WorkloadError(
                f"max_drop_attempts must be in [1, {MAX_DROP_ATTEMPTS}], "
                f"got {self.max_drop_attempts}"
            )
        # normalize sequences to tuples so plans stay hashable/frozen
        for name in ("crashes", "drops", "duplicates", "stragglers",
                     "reorders", "losses", "corruptions", "drains", "joins"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether this plan can never fire a fault."""
        return not (
            self.crash_prob or self.drop_prob or self.duplicate_prob
            or self.straggler_prob or self.reorder_prob
            or self.loss_prob or self.corrupt_prob
            or self.crashes or self.drops or self.duplicates
            or self.stragglers or self.reorders
            or self.losses or self.corruptions
            or self.drains or self.joins
        )

    @property
    def schedules_loss(self) -> bool:
        """Whether this plan can declare a worker permanently dead (the
        engines auto-attach a default membership subsystem when so)."""
        return bool(self.loss_prob or self.losses)

    @property
    def schedules_corruption(self) -> bool:
        """Whether this plan can corrupt guest copies (the engines
        auto-enable the anti-entropy auditor when so)."""
        return bool(self.corrupt_prob or self.corruptions)

    @property
    def schedules_transitions(self) -> bool:
        """Whether this plan schedules voluntary joins/drains (the engines
        auto-attach a membership subsystem when so)."""
        return bool(self.drains or self.joins)

    # ------------------------------------------------------------------
    # keyed deterministic draws
    # ------------------------------------------------------------------
    def _draw(self, kind: str, *key: int) -> float:
        """A uniform [0, 1) value, a pure function of (seed, kind, key)."""
        blob = f"{self.seed}|{kind}|" + "|".join(str(k) for k in key)
        digest = hashlib.blake2b(blob.encode("ascii"), digest_size=8).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    # ------------------------------------------------------------------
    # schedule queries (pure; consumption is the injector's job)
    # ------------------------------------------------------------------
    def crash_at(self, run: int, superstep: int, worker: int) -> bool:
        for spec in self.crashes:
            if (spec.superstep == superstep and spec.worker == worker
                    and _matches(spec.run, run)):
                return True
        if self.crash_prob:
            return self._draw("crash", run, superstep, worker) < self.crash_prob
        return False

    def sync_drops(self, run: int, superstep: int, vertex: int, machine: int) -> int:
        """How many times this sync record fails before a send succeeds."""
        for spec in self.drops:
            if (spec.superstep == superstep and spec.vertex == vertex
                    and _matches(spec.run, run)
                    and (spec.machine is None or spec.machine == machine)):
                return spec.attempts
        if self.drop_prob:
            roll = self._draw("drop", run, superstep, vertex, machine)
            if roll < self.drop_prob:
                extra = self._draw("drop-n", run, superstep, vertex, machine)
                return 1 + int(extra * self.max_drop_attempts)
        return 0

    def sync_duplicates(self, run: int, superstep: int, vertex: int, machine: int) -> int:
        """How many redundant copies of this sync record arrive."""
        for spec in self.duplicates:
            if (spec.superstep == superstep and spec.vertex == vertex
                    and _matches(spec.run, run)
                    and (spec.machine is None or spec.machine == machine)):
                return spec.copies
        if self.duplicate_prob:
            if self._draw("dup", run, superstep, vertex, machine) < self.duplicate_prob:
                return 1
        return 0

    def straggler_delay(self, run: int, superstep: int, worker: int) -> float:
        delay = 0.0
        for spec in self.stragglers:
            if (spec.superstep == superstep and spec.worker == worker
                    and _matches(spec.run, run)):
                delay += spec.delay_s
        if self.straggler_prob:
            if self._draw("straggle", run, superstep, worker) < self.straggler_prob:
                delay += self.straggler_delay_s
        return delay

    def reorder_at(self, run: int, superstep: int) -> bool:
        for spec in self.reorders:
            if spec.superstep == superstep and _matches(spec.run, run):
                return True
        if self.reorder_prob:
            return self._draw("reorder", run, superstep) < self.reorder_prob
        return False

    def reorder_seed(self, run: int, superstep: int) -> int:
        """Seed for the permutation applied when :meth:`reorder_at` fires."""
        return int(self._draw("reorder-perm", run, superstep) * (1 << 32))

    def lost_at(self, run: int, superstep: int, worker: int) -> bool:
        """Does ``worker`` die permanently at this superstep's barrier?"""
        for spec in self.losses:
            if (spec.superstep == superstep and spec.worker == worker
                    and _matches(spec.run, run)):
                return True
        if self.loss_prob:
            return self._draw("loss", run, superstep, worker) < self.loss_prob
        return False

    def drained_at(self, run: int, superstep: int) -> Tuple[int, ...]:
        """Workers scheduled to voluntarily drain at this barrier."""
        return tuple(sorted({
            spec.worker for spec in self.drains
            if spec.superstep == superstep and _matches(spec.run, run)
        }))

    def joined_at(self, run: int, superstep: int) -> Tuple[int, ...]:
        """Workers scheduled to voluntarily join at this barrier."""
        return tuple(sorted({
            spec.worker for spec in self.joins
            if spec.superstep == superstep and _matches(spec.run, run)
        }))

    def corrupt_guest_at(self, run: int, superstep: int, vertex: int,
                         machine: int) -> bool:
        """Does the guest copy ``vertex -> machine`` silently diverge after
        this superstep's sync?"""
        for spec in self.corruptions:
            if (spec.superstep == superstep and spec.vertex == vertex
                    and _matches(spec.run, run)
                    and (spec.machine is None or spec.machine == machine)):
                return True
        if self.corrupt_prob:
            return (
                self._draw("corrupt", run, superstep, vertex, machine)
                < self.corrupt_prob
            )
        return False
