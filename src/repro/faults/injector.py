"""Runtime fault injection (:class:`FaultInjector`).

The injector is the mutable half of the fault layer: it wraps a pure
:class:`~repro.faults.plan.FaultPlan` with

- a **run counter** (the maintainer starts one engine run per batch, and
  superstep numbering restarts every run — schedule coordinates include the
  run index);
- a **fired set**, so a fault consumed at a coordinate never re-fires when
  the recovered superstep is replayed (otherwise a barrier crash would
  crash its own replay, forever);
- **injection statistics** (:class:`FaultStats`) independent of the
  engines' ``recovery_*`` meters, so tests can assert "the plan actually
  fired" separately from "the engine charged the recovery";
- the **retry policy** for transient sync drops: up to ``max_retries``
  resends with exponential backoff (modelled time, charged to
  ``recovery_backoff_s``); more drops than retries escalate to
  :class:`~repro.errors.SyncRetryExhausted`.

One injector may serve many engine runs (an update stream), and both
engines accept it through their constructors or ``run(..., faults=...)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.faults.plan import FaultPlan


@dataclass
class FaultStats:
    """Counts of faults actually injected (not merely scheduled)."""

    crashes: int = 0
    drops: int = 0
    duplicates: int = 0
    reorders: int = 0
    stragglers: int = 0
    losses: int = 0
    corruptions: int = 0
    drains: int = 0
    joins: int = 0

    @property
    def total(self) -> int:
        return (self.crashes + self.drops + self.duplicates
                + self.reorders + self.stragglers + self.losses
                + self.corruptions + self.drains + self.joins)

    def as_dict(self) -> Dict[str, int]:
        return {
            "crashes": self.crashes,
            "drops": self.drops,
            "duplicates": self.duplicates,
            "reorders": self.reorders,
            "stragglers": self.stragglers,
            "losses": self.losses,
            "corruptions": self.corruptions,
            "drains": self.drains,
            "joins": self.joins,
        }


class FaultInjector:
    """Consults a :class:`FaultPlan` at the engines' interception points.

    Parameters
    ----------
    plan:
        The schedule to execute.
    max_retries:
        Resend budget for a dropped sync record; exceeding it raises
        :class:`~repro.errors.SyncRetryExhausted` from the engine.
    backoff_base_s:
        Modelled wait before the first resend; doubles per further attempt.
    """

    def __init__(
        self,
        plan: FaultPlan,
        max_retries: int = 3,
        backoff_base_s: float = 0.01,
    ):
        self.plan = plan
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.stats = FaultStats()
        self._run = -1
        self._fired: Set[Tuple] = set()
        #: workers permanently lost so far (losses outlive replays AND runs:
        #: a dead worker stays dead for the rest of the update stream)
        self._dead: Set[int] = set()
        #: workers voluntarily drained so far — like ``_dead``, a drained
        #: worker is never drawn for crash/straggler/loss faults (it has no
        #: sweep to slow down and no partition left to lose)
        self._drained: Set[int] = set()
        #: a loss never reduces the cluster below this many survivors (the
        #: last worker standing is unkillable — there would be nobody left
        #: to reconstruct onto)
        self.min_survivors = 1

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the plan can fire at all (engines skip all interception
        work for an inactive injector)."""
        return not self.plan.is_empty

    @property
    def run_index(self) -> int:
        """Index of the engine run currently being served (-1 before any)."""
        return self._run

    def begin_run(self) -> None:
        """Called by an engine at the top of :meth:`run`."""
        self._run += 1

    def _once(self, key: Tuple) -> bool:
        """True the first time ``key`` is seen; False on replay."""
        if key in self._fired:
            return False
        self._fired.add(key)
        return True

    # ------------------------------------------------------------------
    # interception points
    # ------------------------------------------------------------------
    @property
    def dead_workers(self) -> Set[int]:
        """Workers permanently lost so far (a copy)."""
        return set(self._dead)

    @property
    def drained_workers(self) -> Set[int]:
        """Workers voluntarily drained so far (a copy)."""
        return set(self._drained)

    def mark_drained(self, worker: int) -> None:
        """Record a voluntary drain: ``worker`` is excluded from every
        subsequent crash/straggler/loss draw, exactly like ``_dead``."""
        self._drained.add(worker)

    def mark_joined(self, worker: int) -> None:
        """Record a voluntary join: a previously drained worker becomes
        drawable again (a fresh worker id is a no-op)."""
        self._drained.discard(worker)

    def membership_transitions(
        self, superstep: int
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """``(drains, joins)`` scheduled at this superstep's barrier.

        Each transition fires once per ``(run, superstep, worker)``
        coordinate — a crash rollback replaying the barrier never applies
        the same transition twice.  A scheduled drain of an already-dead or
        already-drained worker is a no-op; so is a join of a current member.
        """
        drains = tuple(
            w for w in self.plan.drained_at(self._run, superstep)
            if w not in self._dead and w not in self._drained
            and self._once(("drain", self._run, superstep, w))
        )
        joins = tuple(
            w for w in self.plan.joined_at(self._run, superstep)
            if w not in self._dead
            and self._once(("join", self._run, superstep, w))
        )
        self.stats.drains += len(drains)
        self.stats.joins += len(joins)
        return drains, joins

    def crashed_workers(self, superstep: int, workers: Sequence[int]) -> List[int]:
        """Workers crashing at this superstep's barrier (each fires once).

        Dead and drained workers cannot crash — they are gone, not slow.
        """
        crashed = [
            w for w in workers
            if w not in self._dead and w not in self._drained
            and self.plan.crash_at(self._run, superstep, w)
            and self._once(("crash", self._run, superstep, w))
        ]
        self.stats.crashes += len(crashed)
        return crashed

    def lost_workers(self, superstep: int, workers: Sequence[int]) -> List[int]:
        """Workers permanently lost at this superstep's barrier.

        Each loss fires once and is remembered forever (:attr:`dead_workers`
        persists across replays and runs).  The schedule is clamped so at
        least :attr:`min_survivors` workers always remain alive — killing
        the last survivor would leave nobody to reconstruct onto, which no
        real deployment survives either.
        """
        alive = [
            w for w in workers
            if w not in self._dead and w not in self._drained
        ]
        lost: List[int] = []
        for w in alive:
            if len(alive) - len(lost) <= self.min_survivors:
                break
            if (self.plan.lost_at(self._run, superstep, w)
                    and self._once(("loss", self._run, superstep, w))):
                lost.append(w)
        self._dead.update(lost)
        self.stats.losses += len(lost)
        return lost

    def corrupt_guest(self, superstep: int, vertex: int, machine: int) -> bool:
        """Whether the guest copy ``vertex -> machine`` silently diverges
        after this superstep's sync (fires once per coordinate)."""
        if not self.plan.corrupt_guest_at(self._run, superstep, vertex, machine):
            return False
        if not self._once(("corrupt", self._run, superstep, vertex, machine)):
            return False
        self.stats.corruptions += 1
        return True

    def sync_drops(self, superstep: int, vertex: int, machine: int) -> int:
        """Failed attempts for this sync record (0 = delivered first try)."""
        drops = self.plan.sync_drops(self._run, superstep, vertex, machine)
        if drops and self._once(("drop", self._run, superstep, vertex, machine)):
            self.stats.drops += 1
            return drops
        return 0

    def sync_duplicates(self, superstep: int, vertex: int, machine: int) -> int:
        """Redundant copies of this sync record shipped by the network."""
        copies = self.plan.sync_duplicates(self._run, superstep, vertex, machine)
        if copies and self._once(("dup", self._run, superstep, vertex, machine)):
            self.stats.duplicates += 1
            return copies
        return 0

    def straggler_delay(self, superstep: int, worker: int) -> float:
        """Modelled extra seconds worker ``worker`` takes this sweep.

        Dead and drained workers do not straggle (there is no sweep to
        slow down).
        """
        if worker in self._dead or worker in self._drained:
            return 0.0
        delay = self.plan.straggler_delay(self._run, superstep, worker)
        if delay and self._once(("straggle", self._run, superstep, worker)):
            self.stats.stragglers += 1
            return delay
        return 0.0

    def permute(self, superstep: int, items: List) -> List:
        """The superstep's sync/delivery order, adversarially permuted when
        the plan schedules a reorder (seeded — reproducible), else as-is."""
        if len(items) < 2 or not self.plan.reorder_at(self._run, superstep):
            return items
        if not self._once(("reorder", self._run, superstep)):
            return items
        self.stats.reorders += 1
        shuffled = list(items)
        random.Random(self.plan.reorder_seed(self._run, superstep)).shuffle(shuffled)
        return shuffled

    def backoff_time(self, attempts: int) -> float:
        """Modelled backoff spent on ``attempts`` failed sends
        (``base * (2^attempts - 1)`` — the exponential series)."""
        return self.backoff_base_s * ((1 << attempts) - 1)


def resolve_faults(
    faults: Union[None, FaultPlan, FaultInjector],
) -> Optional[FaultInjector]:
    """Normalize an engine's ``faults`` argument.

    ``None`` disables injection, a :class:`FaultPlan` gets a fresh injector
    with default retry policy, a :class:`FaultInjector` is used as-is (and
    may be shared across runs/engines).  An injector whose plan is empty
    resolves to ``None`` so the engines skip every interception point —
    with an empty plan the hot loop is byte-for-byte the fault-free one.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        faults = FaultInjector(faults)
    return faults if faults.active else None
