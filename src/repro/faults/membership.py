"""Membership-aware failover: survive *permanent* worker loss.

PR 3's recovery treats every failure as transient: checkpoint, roll back,
replay on the same worker set.  This module adds the other half of a
production failure model — workers that never come back — built from three
pieces the paper already pays for:

- **Failure detection** (:class:`MembershipView`): per-worker liveness via
  deterministic heartbeats scored with a phi-accrual-style suspicion value
  (``phi = elapsed / interval * log10(e)``, the exponential-arrival
  approximation of Hayashibara et al.).  Stragglers produced by the fault
  injector are *flagged* (`injected=True`), so a slow worker never looks
  like a silent one — the chaos ``straggler`` preset can never trigger a
  false-positive kill.
- **Partition reassignment** (:func:`rendezvous_worker` +
  :class:`FailoverCoordinator`): rendezvous (highest-random-weight) hashing
  over the surviving workers.  Deterministic (keyed blake2b — independent
  of ``PYTHONHASHSEED``), minimal (only vertices hosted on dead workers
  move, including under cascading losses), and stateless (the effective
  placement is a pure function of the base partitioner and the dead set).
- **State reconstruction**: every host vertex lost with a dead worker is
  rebuilt from the freshest surviving guest copy — ScaleG syncs changed
  states to every guest machine at each barrier, so surviving copies are
  barrier-fresh — falling back to a bounded per-superstep **delta log**
  for solitary vertices (no guest copy anywhere), and finally to the
  persisted barrier checkpoint.  The DOIMIS affected set around every
  reconstructed vertex (Definition 4.1) is then re-examined by a recovery
  sweep, so the run converges to the same fixpoint (Theorems 4.2/6.1).

Alongside failover, the :class:`GuestAuditor` runs an **anti-entropy**
pass: a rotating deterministic sample of guest copies is checksummed
against host state each superstep, detecting silent divergence (the
``corrupt_guest`` fault kind) within a bounded window and repairing it by
re-shipping host state (read-repair).

Every cost here — detection latency, reconstruction shipping, the delta
log, audit digests, read-repair — lands on the quarantined ``recovery_*``
/ ``divergence_*`` meter families, **never** the logical meters.  Logical
accounting deliberately keeps the *fault-free* placement: the paper's cost
model describes the computation, and the chaos oracle asserts a failed-over
run's logical meters are bit-identical to the fault-free run's.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import WorkerFailure, WorkloadError
from repro.pregel.metrics import MESSAGE_OVERHEAD_BYTES, VERTEX_ID_BYTES

#: log10(e) — the phi-accrual scale factor under exponential arrivals
LOG10E = 0.4342944819032518

#: bytes of one checksum digest shipped by the sampled audit
DIGEST_BYTES = 8


def _weight(salt: int, vertex: int, worker: int) -> int:
    blob = f"{salt}|{vertex}|{worker}".encode("ascii")
    return int.from_bytes(
        hashlib.blake2b(blob, digest_size=8).digest(), "big"
    )


def rendezvous_worker(vertex: int, candidates: Iterable[int], salt: int = 0) -> int:
    """Highest-random-weight (rendezvous) owner of ``vertex``.

    Each candidate worker's weight is a keyed blake2b of
    ``(salt, vertex, worker)`` — a pure function, independent of
    ``PYTHONHASHSEED`` and of candidate order.  Removing a candidate moves
    only the vertices it owned (the minimal-disruption property that makes
    cascading failovers cheap); every other vertex keeps its argmax.
    """
    best = -1
    best_weight = -1
    for w in sorted(candidates):
        weight = _weight(salt, vertex, w)
        if weight > best_weight:
            best, best_weight = w, weight
    if best < 0:
        raise WorkerFailure(
            None, None,
            f"no surviving worker to host vertex {vertex} "
            "(every candidate is dead)",
        )
    return best


@dataclass(frozen=True)
class MembershipConfig:
    """Tunables of the failure detector, delta log, and guest auditor."""

    #: modelled heartbeat period — one heartbeat per worker per superstep
    heartbeat_interval_s: float = 0.05
    #: suspicion level at which a silent worker is declared dead;
    #: detection latency is ``phi_threshold / log10(e)`` heartbeat periods
    phi_threshold: float = 8.0
    #: uncompacted per-superstep delta-log frames retained before the
    #: oldest frame folds into the compacted base
    delta_log_depth: int = 8
    #: audit a 1/audit_every rotating sample of guest copies per superstep
    #: (every copy is checked once per ``audit_every`` supersteps);
    #: 0 disables anti-entropy
    audit_every: int = 4
    #: keys the rendezvous weights and the audit rotation
    salt: int = 0

    def __post_init__(self):
        if self.heartbeat_interval_s <= 0:
            raise WorkloadError(
                f"heartbeat_interval_s must be positive, "
                f"got {self.heartbeat_interval_s}"
            )
        if self.phi_threshold <= 0:
            raise WorkloadError(
                f"phi_threshold must be positive, got {self.phi_threshold}"
            )
        if self.delta_log_depth < 1:
            raise WorkloadError(
                f"delta_log_depth must be >= 1, got {self.delta_log_depth}"
            )
        if self.audit_every < 0:
            raise WorkloadError(
                f"audit_every must be >= 0, got {self.audit_every}"
            )

    @property
    def detection_latency_s(self) -> float:
        """Modelled silence before phi crosses the threshold (closed form:
        under exponential arrivals ``phi(t) = t / interval * log10(e)``)."""
        return self.phi_threshold / LOG10E * self.heartbeat_interval_s


class MembershipView:
    """Per-worker liveness via heartbeats + phi-accrual suspicion.

    Modelled time advances one heartbeat period per superstep barrier
    (:meth:`advance`); each alive worker then reports via
    :meth:`heartbeat`.  Suspicion of a worker is
    ``phi = elapsed_since_last_heartbeat / interval * log10(e)`` —
    crossing :attr:`MembershipConfig.phi_threshold` makes it a
    :meth:`suspect <suspects>`.

    The injected-delay flag is the straggler/death discriminator: the
    fault injector *knows* its stragglers and flags their late heartbeats,
    so they never raise suspicion.  Only genuinely unexplained lateness
    (or silence) accrues phi.
    """

    def __init__(self, workers: Iterable[int], config: MembershipConfig):
        self._config = config
        self._workers: List[int] = sorted(workers)
        self._now = 0.0
        self._last_seen: Dict[int, float] = {w: 0.0 for w in self._workers}
        #: worker -> modelled time of death declaration
        self._dead: Dict[int, float] = {}
        #: worker -> modelled time of voluntary drain
        self._drained: Dict[int, float] = {}
        #: workers that joined after construction -> modelled join time
        self._joined: Dict[int, float] = {}
        #: transitions proposed but not yet applied at a barrier
        self._pending_joins: List[int] = []
        self._pending_drains: List[int] = []
        #: membership epoch — bumped once per applied transition batch
        self._epoch = 0

    # ------------------------------------------------------------------
    @property
    def config(self) -> MembershipConfig:
        return self._config

    @property
    def now(self) -> float:
        """Current modelled time."""
        return self._now

    @property
    def epoch(self) -> int:
        """Membership epoch: applied voluntary transition batches so far."""
        return self._epoch

    def alive_workers(self) -> List[int]:
        """Current members: alive, not drained (joined workers included)."""
        return [
            w for w in self._workers
            if w not in self._dead and w not in self._drained
        ]

    def members(self) -> List[int]:
        """Alias of :meth:`alive_workers` — the current member set."""
        return self.alive_workers()

    def dead_workers(self) -> List[int]:
        return sorted(self._dead)

    def drained_workers(self) -> List[int]:
        return sorted(self._drained)

    def joined_workers(self) -> List[int]:
        """Workers that joined after construction and are still members."""
        return [
            w for w in sorted(self._joined)
            if w not in self._dead and w not in self._drained
        ]

    def is_dead(self, worker: int) -> bool:
        return worker in self._dead

    def is_drained(self, worker: int) -> bool:
        return worker in self._drained

    def is_member(self, worker: int) -> bool:
        return (worker in self._last_seen and worker not in self._dead
                and worker not in self._drained)

    # ------------------------------------------------------------------
    # voluntary transitions (take effect at the next superstep barrier)
    # ------------------------------------------------------------------
    def propose_join(self, worker: int) -> None:
        """Queue a voluntary join; it takes effect at the next barrier.

        A current or already-proposed member cannot join again; a
        previously drained worker may rejoin.
        """
        if self.is_member(worker) or worker in self._pending_joins:
            raise WorkloadError(
                f"worker {worker} is already a member (or a pending join)"
            )
        self._pending_joins.append(worker)

    def propose_drain(self, worker: int) -> None:
        """Queue a voluntary drain; it takes effect at the next barrier.

        Only a current member can drain, and the pending batch may never
        drain the membership below one worker.
        """
        if not self.is_member(worker):
            raise WorkloadError(
                f"worker {worker} is not a current member — cannot drain"
            )
        if worker in self._pending_drains:
            raise WorkloadError(f"worker {worker} is already draining")
        remaining = (len(self.alive_workers()) + len(self._pending_joins)
                     - len(self._pending_drains) - 1)
        if remaining < 1:
            raise WorkloadError(
                "draining the last member would leave nobody to host the "
                "graph"
            )
        self._pending_drains.append(worker)

    def pending_transitions(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """``(drains, joins)`` queued for the next barrier (a copy)."""
        return tuple(self._pending_drains), tuple(self._pending_joins)

    def take_pending(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Consume and return the queued ``(drains, joins)``."""
        drains = tuple(self._pending_drains)
        joins = tuple(self._pending_joins)
        self._pending_drains.clear()
        self._pending_joins.clear()
        return drains, joins

    def apply_join(self, worker: int) -> None:
        """Make ``worker`` a member now (called at a barrier)."""
        self._dead.pop(worker, None)
        self._drained.pop(worker, None)
        if worker not in self._last_seen:
            self._workers.append(worker)
            self._workers.sort()
        self._last_seen[worker] = self._now
        self._joined[worker] = self._now

    def apply_drain(self, worker: int) -> None:
        """Retire ``worker`` now (called at a barrier)."""
        self._drained[worker] = self._now

    def bump_epoch(self) -> None:
        self._epoch += 1

    def restore_epoch(self, epoch: int) -> None:
        """Fast-forward the epoch counter (recovery replays a WAL whose
        commits recorded transitions; the counter must keep ascending)."""
        self._epoch = max(self._epoch, int(epoch))

    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Advance modelled time one heartbeat period (one per barrier)."""
        self._now += self._config.heartbeat_interval_s

    def heartbeat(self, worker: int, delay_s: float = 0.0,
                  injected: bool = False) -> None:
        """Record ``worker``'s heartbeat for the current period.

        ``delay_s`` is how stale the heartbeat is (a straggling worker's
        most recent heartbeat is ``delay_s`` old by the time the barrier
        evaluates suspicion).  When ``injected`` is set the delay came
        from the fault injector's straggler schedule and is *excluded*
        from suspicion — a known-slow worker is not a silent one.
        """
        if worker in self._dead or worker in self._drained:
            return
        stale = 0.0 if injected else max(delay_s, 0.0)
        self._last_seen[worker] = self._now - stale

    def phi(self, worker: int) -> float:
        """Suspicion of ``worker`` (``inf`` once declared dead; a drained
        worker is silent by agreement and never suspect)."""
        if worker in self._dead:
            return float("inf")
        if worker in self._drained:
            return 0.0
        elapsed = self._now - self._last_seen.get(worker, 0.0)
        if elapsed <= 0.0:
            return 0.0
        return elapsed / self._config.heartbeat_interval_s * LOG10E

    def suspects(self) -> List[int]:
        """Alive workers whose suspicion crossed the threshold."""
        threshold = self._config.phi_threshold
        return [
            w for w in self._workers
            if w not in self._dead and w not in self._drained
            and self.phi(w) >= threshold
        ]

    def declare_dead(self, worker: int) -> None:
        """Remove ``worker`` from the membership for good."""
        if worker not in self._dead:
            self._dead[worker] = self._now


@dataclass(frozen=True)
class AuditFinding:
    """One corrupted guest copy's life cycle, as the auditor saw it."""

    vertex: int
    machine: int
    #: audit clock when the corruption was injected
    injected_clock: int
    #: audit clock when the auditor resolved it
    resolved_clock: int
    #: ``"repaired"`` (read-repair re-shipped host state) or
    #: ``"destroyed"`` (the copy vanished first — edge deletion, vertex
    #: deletion, or the hosting worker died)
    outcome: str


@dataclass(frozen=True)
class TransitionEvent:
    """One barrier's worth of applied voluntary transitions."""

    superstep: int
    joined: Tuple[int, ...]
    drained: Tuple[int, ...]
    #: host vertices whose effective placement moved
    moved: int
    #: membership epoch after the batch applied
    epoch: int
    #: modelled barrier stall while the batch applied
    stall_s: float


@dataclass(frozen=True)
class FailoverEvent:
    """One barrier's worth of permanent losses, for diagnostics/tests."""

    superstep: int
    workers: Tuple[int, ...]
    reassigned: int
    #: reconstruction sources: how many lost hosts were rebuilt from a
    #: surviving guest copy / the delta log / the barrier checkpoint
    sources: Dict[str, int]
    detection_s: float


class GuestAuditor:
    """Anti-entropy over guest copies: sampled checksums + read-repair.

    Every ``(vertex, guest machine)`` pair is assigned a rotation slot
    ``blake2b(salt, vertex, machine) % audit_every``; at audit clock ``c``
    the pairs in slot ``c % audit_every`` ship a checksum digest of their
    copy to the host, which compares it against host state.  A mismatch
    (silent corruption, injected by the ``corrupt_guest`` fault kind) is
    repaired by re-shipping the host state.  The rotation guarantees every
    surviving corrupted copy is caught within ``audit_every`` audited
    supersteps of injection.

    The audit clock is *global* (persists across engine runs), so a pair
    whose slot did not come up before a short run converged is checked
    early in the next run.
    """

    def __init__(self, config: MembershipConfig):
        self._config = config
        #: (vertex, machine) -> audit clock at injection
        self._corrupted: Dict[Tuple[int, int], int] = {}
        #: (vertex, machine) -> rotation slot (pure blake2b, cached)
        self._slots: Dict[Tuple[int, int], int] = {}
        self._clock = 0
        self.findings: List[AuditFinding] = []

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._config.audit_every > 0

    @property
    def clock(self) -> int:
        """Audited supersteps so far (global across runs)."""
        return self._clock

    def corrupted_pairs(self) -> List[Tuple[int, int]]:
        """Currently corrupted (undetected) guest copies."""
        return sorted(self._corrupted)

    def mark_corrupted(self, vertex: int, machine: int) -> None:
        """The injector corrupted this guest copy after the current sync."""
        self._corrupted.setdefault((vertex, machine), self._clock)

    def _slot(self, vertex: int, machine: int) -> int:
        key = (vertex, machine)
        slot = self._slots.get(key)
        if slot is None:
            blob = f"{self._config.salt}|audit|{vertex}|{machine}"
            digest = hashlib.blake2b(
                blob.encode("ascii"), digest_size=8
            ).digest()
            slot = int.from_bytes(digest, "big") % self._config.audit_every
            self._slots[key] = slot
        return slot

    # ------------------------------------------------------------------
    def _repair(self, vertex: int, machine: int, injected_clock: int,
                states, sync_bytes_of, metrics) -> None:
        metrics.divergence_detected += 1
        metrics.divergence_repaired += 1
        state = states.get(vertex)
        wire = MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES + (
            sync_bytes_of(state) if state is not None else 8
        )
        metrics.divergence_repair_bytes += wire
        metrics.divergence_repair_messages += 1
        self.findings.append(AuditFinding(
            vertex=vertex, machine=machine,
            injected_clock=injected_clock, resolved_clock=self._clock,
            outcome="repaired",
        ))

    def _purge_destroyed(self, dgraph, dead_is) -> None:
        """Drop corrupted pairs whose copy no longer exists."""
        for key in sorted(self._corrupted):
            vertex, machine = key
            gone = (
                dead_is(machine)
                or not dgraph.has_vertex(vertex)
                or machine not in dgraph.guest_machines(vertex)
            )
            if gone:
                injected_clock = self._corrupted.pop(key)
                self.findings.append(AuditFinding(
                    vertex=vertex, machine=machine,
                    injected_clock=injected_clock,
                    resolved_clock=self._clock,
                    outcome="destroyed",
                ))

    def audit(self, dgraph, dead_is, states, sync_bytes_of, metrics) -> int:
        """One superstep's sampled audit pass; returns repairs made.

        ``dead_is`` is a ``worker -> bool`` predicate (dead workers host
        no copies to audit).  Digest shipping and read-repair land on the
        ``divergence_*`` meters only.
        """
        if not self.enabled:
            return 0
        every = self._config.audit_every
        slot = self._clock % every
        repaired = 0
        for u in dgraph.graph.sorted_vertices():
            state = states.get(u)
            for m in sorted(dgraph.guest_machines(u)):
                if dead_is(m):
                    continue
                if self._slot(u, m) != slot:
                    continue
                metrics.divergence_checks += 1
                metrics.divergence_check_bytes += (
                    MESSAGE_OVERHEAD_BYTES + DIGEST_BYTES
                )
                injected_clock = self._corrupted.pop((u, m), None)
                if injected_clock is not None:
                    self._repair(u, m, injected_clock, states,
                                 sync_bytes_of, metrics)
                    repaired += 1
            del state  # host state only read via _repair
        self._purge_destroyed(dgraph, dead_is)
        self._clock += 1
        return repaired

    def final_audit(self, dgraph, dead_is, states, sync_bytes_of,
                    metrics) -> int:
        """Full (unsampled) sweep — the close-out audit of a session.

        Checks every surviving guest copy once, so corruption injected too
        recently for its rotation slot is still caught before the session's
        results are read.  Returns repairs made.
        """
        if not self.enabled:
            return 0
        repaired = 0
        for u in dgraph.graph.sorted_vertices():
            for m in sorted(dgraph.guest_machines(u)):
                if dead_is(m):
                    continue
                metrics.divergence_checks += 1
                metrics.divergence_check_bytes += (
                    MESSAGE_OVERHEAD_BYTES + DIGEST_BYTES
                )
                injected_clock = self._corrupted.pop((u, m), None)
                if injected_clock is not None:
                    self._repair(u, m, injected_clock, states,
                                 sync_bytes_of, metrics)
                    repaired += 1
        self._purge_destroyed(dgraph, dead_is)
        self._clock += 1
        return repaired


class FailoverCoordinator:
    """Owns the membership view, the placement overlay, the delta log, and
    the guest auditor for one engine (persistent across runs).

    The *effective* placement (:meth:`worker_of`) is a pure overlay: a
    vertex whose base worker is alive stays put; a vertex whose base
    worker died is rendezvous-hashed over the survivors.  The
    :class:`~repro.graph.distributed_graph.DistributedGraph` — and with it
    every logical meter — keeps the fault-free base placement: the paper's
    cost model describes the computation, and the chaos oracle asserts the
    failed-over run's logical meters stay bit-identical.  Everything the
    overlay costs is charged to ``recovery_*``.
    """

    def __init__(self, dgraph, config: Optional[MembershipConfig] = None):
        self._dgraph = dgraph
        self._config = config if config is not None else MembershipConfig()
        self.view = MembershipView(range(dgraph.num_workers), self._config)
        self.auditor = GuestAuditor(self._config)
        self._alive: Tuple[int, ...] = tuple(self.view.alive_workers())
        self._member_set = frozenset(self._alive)
        self._joined_active = frozenset(self.view.joined_workers())
        #: bounded per-superstep delta-log frames (newest last) + the
        #: compacted base older frames fold into
        self._frames: Deque[Dict[int, Any]] = deque()
        self._ledger_base: Dict[int, Any] = {}
        self.events: List[FailoverEvent] = []
        self.transitions: List[TransitionEvent] = []

    # ------------------------------------------------------------------
    @property
    def config(self) -> MembershipConfig:
        return self._config

    @property
    def dead_workers(self) -> List[int]:
        return self.view.dead_workers()

    @property
    def alive_workers(self) -> List[int]:
        return list(self._alive)

    @property
    def epoch(self) -> int:
        """Membership epoch (applied voluntary transition batches)."""
        return self.view.epoch

    def is_dead(self, worker: int) -> bool:
        return self.view.is_dead(worker)

    def _refresh_members(self) -> None:
        self._alive = tuple(self.view.alive_workers())
        self._member_set = frozenset(self._alive)
        self._joined_active = frozenset(self.view.joined_workers())

    def worker_of(self, u: int) -> int:
        """Effective worker of ``u`` under the failover + elastic overlay.

        Pure function of (base placement, member set, joined set):

        1. if any joined worker's rendezvous weight over the *whole* member
           set claims ``u``, it lives there (a join moves exactly the
           vertices whose member-set argmax is the joiner — HRW-minimal);
        2. otherwise ``u`` stays with its base worker while that worker is
           a member (alive, not drained);
        3. otherwise (base dead or drained) ``u`` is rendezvous-hashed over
           the members — the PR 4 failover rule, now drain-aware.
        """
        if self._joined_active:
            w = rendezvous_worker(u, self._alive, salt=self._config.salt)
            if w in self._joined_active:
                return w
        base = self._dgraph.worker_of(u)
        if base in self._member_set:
            return base
        return rendezvous_worker(u, self._alive, salt=self._config.salt)

    def _is_solitary(self, u: int, worker_of) -> bool:
        """No guest copy anywhere: every neighbour is co-hosted with u."""
        home = worker_of(u)
        for v in sorted(self._dgraph.neighbors(u)):
            if worker_of(v) != home:
                return False
        return True

    # ------------------------------------------------------------------
    # delta log (solitary vertices have no guest copy to reconstruct from)
    # ------------------------------------------------------------------
    def _ledger_append(self, frame: Dict[int, Any]) -> None:
        self._frames.append(frame)
        while len(self._frames) > self._config.delta_log_depth:
            self._ledger_base.update(self._frames.popleft())

    def _ledger_lookup(self, u: int) -> Tuple[bool, Any]:
        for frame in reversed(self._frames):
            if u in frame:
                return True, frame[u]
        if u in self._ledger_base:
            return True, self._ledger_base[u]
        return False, None

    @property
    def ledger_size(self) -> int:
        """Distinct vertices currently covered by the delta log."""
        keys = set(self._ledger_base)
        for frame in self._frames:
            keys.update(frame)
        return len(keys)

    def record_deltas(self, changed: Iterable[int], states: Dict[int, Any],
                      sync_bytes_of, metrics) -> None:
        """Ship this superstep's changed *solitary* states to the delta log.

        A vertex with at least one guest copy is reconstructible from it;
        only solitary vertices (every neighbour co-hosted, or no neighbour
        at all) need the replicated log.  The shipment is bounded by the
        superstep's state changes and charged to
        ``recovery_delta_log_bytes``.
        """
        from repro.analysis.runtime import _snapshot

        frame: Dict[int, Any] = {}
        for u in sorted(changed):
            if not self._dgraph.has_vertex(u):
                continue
            if not self._is_solitary(u, self.worker_of):
                continue
            frame[u] = _snapshot(states[u])
            metrics.recovery_delta_log_bytes += (
                MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
                + sync_bytes_of(states[u])
            )
            metrics.recovery_delta_log_records += 1
        if frame:
            self._ledger_append(frame)

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def fail_over(self, lost_workers: Iterable[int], superstep: int,
                  checkpoint, states: Dict[int, Any], metrics,
                  sync_bytes_of) -> List[int]:
        """Handle permanent losses declared at this superstep's barrier.

        Declares the workers dead, reassigns their partitions to survivors
        (rendezvous, minimal), reconstructs each lost host vertex from the
        freshest surviving guest copy / the delta log / the barrier
        checkpoint, re-prices guest-copy re-establishment, and returns the
        DOIMIS affected set (lost hosts + their neighbours) for the
        engine's recovery sweep.  All costs land on ``recovery_*``.
        """
        from repro.analysis.runtime import _snapshot

        lost = sorted(w for w in set(lost_workers) if not self.view.is_dead(w))
        if not lost:
            return []
        lost_set = set(lost)
        if len(self._alive) - len(lost) < 1:
            raise WorkerFailure(
                lost[0], superstep,
                "every worker died — nothing left to fail over to",
            )

        dgraph = self._dgraph
        # effective placement *before* this failover — reconstruction
        # sources are the guest copies that existed when the workers died
        old_eff: Dict[int, int] = {u: self.worker_of(u) for u in sorted(states)}

        # the barrier blocked until the silent workers' phi crossed the
        # threshold; the detector waits once for all concurrent losses
        latency = self._config.detection_latency_s
        metrics.recovery_detection_s += latency
        metrics.wall_time_s += latency

        for w in lost:
            self.view.declare_dead(w)
        self._refresh_members()
        metrics.recovery_failovers += len(lost)

        from repro.scaleg.guest import surviving_guest_machines

        lost_hosts = [u for u in sorted(states) if old_eff[u] in lost_set]
        sources = {"guest": 0, "ledger": 0, "checkpoint": 0}
        affected = set(lost_hosts)
        for u in lost_hosts:
            neighbors = sorted(dgraph.neighbors(u)) if dgraph.has_vertex(u) else []
            affected.update(neighbors)
            surviving_copies = surviving_guest_machines(
                dgraph, u, old_eff.__getitem__, lost_set
            ) if neighbors else []
            expected = checkpoint.states.get(u, states.get(u))
            if surviving_copies:
                # every surviving copy is barrier-fresh (synced on change);
                # read from the lowest machine id, deterministically
                sources["guest"] += 1
                reconstructed = expected
            else:
                found, logged = self._ledger_lookup(u)
                if found:
                    sources["ledger"] += 1
                    reconstructed = logged
                else:
                    # host and every guest machine died at once: fall back
                    # to the persisted barrier checkpoint
                    sources["checkpoint"] += 1
                    reconstructed = expected
            if reconstructed != expected:
                raise WorkerFailure(
                    old_eff[u], superstep,
                    f"reconstructed state of vertex {u} diverged from the "
                    "barrier checkpoint",
                )
            wire = MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES + (
                sync_bytes_of(expected) if expected is not None else 8
            )
            metrics.recovery_resync_bytes += wire
            metrics.recovery_resync_messages += 1
        metrics.recovery_reassigned_vertices += len(lost_hosts)
        metrics.recovery_reconstructed_vertices += len(lost_hosts)

        # guest re-establishment: the new host of a reassigned vertex needs
        # guest copies of every remote neighbour it did not already hold
        for u in lost_hosts:
            if not dgraph.has_vertex(u):
                continue
            new_home = self.worker_of(u)
            for v in sorted(dgraph.neighbors(u)):
                if self.worker_of(v) == new_home:
                    continue
                held = {
                    old_eff[x]
                    for x in sorted(dgraph.neighbors(v)) if x in old_eff
                } - {old_eff[v]}
                if new_home in held:
                    continue  # the copy of v was already resident there
                state = states.get(v)
                metrics.recovery_resync_bytes += (
                    MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
                    + (sync_bytes_of(state) if state is not None else 8)
                )
                metrics.recovery_resync_messages += 1

        # vertices that just became solitary (their only remote neighbours
        # now co-hosted) enter the delta log so a later loss of their own
        # worker still has a reconstruction source
        seeded: Dict[int, Any] = {}
        for u in sorted(states):
            if u in affected or not dgraph.has_vertex(u):
                continue
            was_solitary = self._is_solitary(u, lambda x: old_eff[x])
            if was_solitary or not self._is_solitary(u, self.worker_of):
                continue
            seeded[u] = _snapshot(states[u])
            metrics.recovery_delta_log_bytes += (
                MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
                + sync_bytes_of(states[u])
            )
            metrics.recovery_delta_log_records += 1
        if seeded:
            self._ledger_append(seeded)

        reactivate = sorted(u for u in affected if dgraph.has_vertex(u))
        metrics.recovery_reactivated_vertices += len(reactivate)
        self.events.append(FailoverEvent(
            superstep=superstep,
            workers=tuple(lost),
            reassigned=len(lost_hosts),
            sources=sources,
            detection_s=latency,
        ))
        return reactivate

    def fail_over_degraded(self, lost_workers: Iterable[int], superstep: int,
                           checkpoint, states: Dict[int, Any], metrics,
                           state_bytes_of) -> List[int]:
        """The Pregel counterpart: no guest copies, no delta log.

        A message-passing engine has no replicas of host state, so every
        lost vertex is reconstructed from the persisted barrier checkpoint
        (degraded: the whole partition ships from stable storage), and the
        affected set is re-activated by explicit messages.
        """
        lost = sorted(w for w in set(lost_workers) if not self.view.is_dead(w))
        if not lost:
            return []
        lost_set = set(lost)
        if len(self._alive) - len(lost) < 1:
            raise WorkerFailure(
                lost[0], superstep,
                "every worker died — nothing left to fail over to",
            )
        dgraph = self._dgraph
        old_eff: Dict[int, int] = {u: self.worker_of(u) for u in sorted(states)}

        latency = self._config.detection_latency_s
        metrics.recovery_detection_s += latency
        metrics.wall_time_s += latency
        for w in lost:
            self.view.declare_dead(w)
        self._refresh_members()
        metrics.recovery_failovers += len(lost)

        lost_hosts = [u for u in sorted(states) if old_eff[u] in lost_set]
        affected = set(lost_hosts)
        for u in lost_hosts:
            if dgraph.has_vertex(u):
                affected.update(sorted(dgraph.neighbors(u)))
            state = checkpoint.states.get(u, states.get(u))
            metrics.recovery_resync_bytes += (
                MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
                + (state_bytes_of(state) if state is not None else 8)
            )
            metrics.recovery_resync_messages += 1
        metrics.recovery_reassigned_vertices += len(lost_hosts)
        metrics.recovery_reconstructed_vertices += len(lost_hosts)

        reactivate = sorted(u for u in affected if dgraph.has_vertex(u))
        # re-activation travels as explicit messages in Pregel
        for _u in reactivate:
            metrics.recovery_resync_bytes += (
                MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
            )
            metrics.recovery_resync_messages += 1
        metrics.recovery_reactivated_vertices += len(reactivate)
        self.events.append(FailoverEvent(
            superstep=superstep,
            workers=tuple(lost),
            reassigned=len(lost_hosts),
            sources={"guest": 0, "ledger": 0, "checkpoint": len(lost_hosts)},
            detection_s=latency,
        ))
        return reactivate

    # ------------------------------------------------------------------
    # voluntary elasticity (planned transitions applied at a barrier)
    # ------------------------------------------------------------------
    def propose_join(self, worker: int) -> None:
        """Queue a voluntary join for the next barrier."""
        self.view.propose_join(worker)

    def propose_drain(self, worker: int) -> None:
        """Queue a voluntary drain for the next barrier."""
        self.view.propose_drain(worker)

    def apply_transitions(
        self, drains: Iterable[int], joins: Iterable[int], superstep: int,
        states: Dict[int, Any], metrics, sync_bytes_of,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...], List[int]]:
        """Apply one barrier's voluntary transition batch.

        Joins apply first (a simultaneous join+drain streams the drained
        partitions straight to the joiner), then drains; the membership
        epoch bumps once per batch.  Every moved host vertex is streamed
        from its *live* old host — state record, guest-copy
        re-establishment for its remote neighbours, and a rank-cache
        rebuild on the receiver — all charged to the ``rebalance_*``
        family.  The logical meters (and the
        :class:`~repro.graph.distributed_graph.DistributedGraph` base
        placement) never change, which is what keeps an elastic run
        bit-identical to a fixed-membership one.

        Returns ``(applied_drains, applied_joins, moved_vertices)``.
        """
        joins = [w for w in sorted(set(joins)) if not self.view.is_member(w)]
        drains = [
            w for w in sorted(set(drains))
            if self.view.is_member(w) and w not in joins
        ]
        if not joins and not drains:
            return (), (), []
        if not (set(self._member_set) | set(joins)) - set(drains):
            raise WorkerFailure(
                drains[0], superstep,
                "draining every member would leave nobody to host the graph",
            )

        dgraph = self._dgraph
        # effective placement *before* the batch — the movement set is the
        # diff against it
        old_eff: Dict[int, int] = {u: self.worker_of(u) for u in sorted(states)}
        for w in joins:
            self.view.apply_join(w)
        for w in drains:
            self.view.apply_drain(w)
        self.view.bump_epoch()
        self._refresh_members()

        moved = [u for u in sorted(states) if self.worker_of(u) != old_eff[u]]
        for u in moved:
            # the new home streams u's state from its live old host —
            # never from a checkpoint
            state = states.get(u)
            metrics.rebalance_resync_bytes += (
                MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
                + (sync_bytes_of(state) if state is not None else 8)
            )
            metrics.rebalance_resync_messages += 1
            if not dgraph.has_vertex(u):
                continue
            new_home = self.worker_of(u)
            degree = 0
            for v in sorted(dgraph.neighbors(u)):
                degree += 1
                if self.worker_of(v) == new_home:
                    continue
                # guest copies move with the host: the new home takes a
                # copy of each remote neighbour (and ships back its own)
                vstate = states.get(v)
                metrics.rebalance_resync_bytes += (
                    MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
                    + (sync_bytes_of(vstate) if vstate is not None else 8)
                )
                metrics.rebalance_resync_messages += 1
            # the receiver rebuilds u's rank-ordered adjacency entries
            metrics.rebalance_rank_entries += degree
        metrics.rebalance_joins += len(joins)
        metrics.rebalance_drains += len(drains)
        metrics.rebalance_moved_vertices += len(moved)
        # the barrier stalls one heartbeat period while the batch applies
        stall = self._config.heartbeat_interval_s
        metrics.rebalance_stall_s += stall
        metrics.wall_time_s += stall
        self.transitions.append(TransitionEvent(
            superstep=superstep, joined=tuple(joins), drained=tuple(drains),
            moved=len(moved), epoch=self.view.epoch, stall_s=stall,
        ))
        return tuple(drains), tuple(joins), moved

    def barrier_transitions(
        self, superstep: int, states: Dict[int, Any], metrics,
        sync_bytes_of, injector=None,
    ) -> List[int]:
        """Collect and apply every transition due at this barrier.

        Merges the proposed queue (:meth:`propose_join` /
        :meth:`propose_drain`) with the injector's scheduled transitions
        (fire-once — a crash rollback replaying this barrier never applies
        a batch twice), applies them, and tells the injector which workers
        drained so they are never again drawn for faults.  Returns the
        moved vertices.
        """
        drains, joins = self.view.take_pending()
        if injector is not None:
            sched_drains, sched_joins = injector.membership_transitions(
                superstep
            )
            drains += sched_drains
            joins += sched_joins
        if not drains and not joins:
            return []
        applied_drains, applied_joins, moved = self.apply_transitions(
            drains, joins, superstep, states, metrics, sync_bytes_of
        )
        if injector is not None:
            for w in applied_drains:
                injector.mark_drained(w)
            for w in applied_joins:
                injector.mark_joined(w)
        return moved

    # ------------------------------------------------------------------
    # anti-entropy pass-throughs
    # ------------------------------------------------------------------
    def mark_corrupted(self, vertex: int, machine: int) -> None:
        self.auditor.mark_corrupted(vertex, machine)

    def audit(self, states: Dict[int, Any], sync_bytes_of, metrics) -> int:
        return self.auditor.audit(
            self._dgraph, self.view.is_dead, states, sync_bytes_of, metrics
        )

    def final_audit(self, states: Dict[int, Any], sync_bytes_of,
                    metrics) -> int:
        return self.auditor.final_audit(
            self._dgraph, self.view.is_dead, states, sync_bytes_of, metrics
        )


def resolve_membership(membership, injector, dgraph) -> Optional[FailoverCoordinator]:
    """Normalize an engine's ``membership`` argument.

    ``None`` attaches a default :class:`FailoverCoordinator` exactly when
    the fault plan can declare losses or corrupt guest copies (there must
    be *someone* to handle them); a :class:`MembershipConfig` builds a
    coordinator with those tunables; a :class:`FailoverCoordinator` is
    used as-is (and may be shared across engines).  Without an active
    injector and without an explicit request this resolves to ``None`` —
    the hot loop stays byte-identical to the fault-free build.
    """
    if membership is None:
        if injector is not None and (
            injector.plan.schedules_loss
            or injector.plan.schedules_corruption
            or injector.plan.schedules_transitions
        ):
            return FailoverCoordinator(dgraph)
        return None
    if isinstance(membership, FailoverCoordinator):
        return membership
    if isinstance(membership, MembershipConfig):
        return FailoverCoordinator(dgraph, membership)
    raise WorkloadError(
        f"membership must be None, a MembershipConfig, or a "
        f"FailoverCoordinator, got {membership!r}"
    )
