"""repro — Distributed Near-Maximum Independent Set Maintenance.

A faithful, laptop-scale reproduction of *"Distributed Near-Maximum
Independent Set Maintenance over Large-scale Dynamic Graphs"* (ICDE 2023):
the OIMIS order-independent distributed MIS framework, the DOIMIS dynamic
maintenance algorithm with selective-activation optimizations, the DisMIS
baseline, the ScaleG/Pregel vertex-centric runtimes they execute on, and the
serial comparators used in the paper's evaluation.

Quickstart
----------
>>> from repro import MISMaintainer
>>> m = MISMaintainer.from_edges([(1, 2), (2, 3), (3, 4), (4, 5)])
>>> sorted(m.independent_set())
[1, 3, 5]

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from repro.core.activation import ActivationStrategy
from repro.core.baselines import (
    DDisMISRecompute,
    DISTRIBUTED_ALGORITHM_NAMES,
    NaiveRecompute,
    make_algorithm,
)
from repro.core.dismis import DisMISRun, Status, run_dismis
from repro.core.doimis import DOIMISMaintainer
from repro.core.maintainer import MISMaintainer
from repro.core.oimis import OIMISRun, run_oimis, run_oimis_pregel
from repro.core.weighted import WeightedMISMaintainer, weighted_greedy_mis
from repro.serve import (
    AdaptiveWindowController,
    AdmissionConfig,
    FixedWindowController,
    IngestionService,
    RetryPolicy,
    TraceConfig,
    WindowConfig,
    WriteAheadLog,
    bursty_trace,
)
from repro.stream import StreamingSession, WindowReport
from repro.core.verification import (
    assert_valid_mis,
    is_greedy_fixpoint,
    is_independent_set,
    is_maximal_independent_set,
)
from repro.errors import ReproError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    UpdateBatch,
    VertexDeletion,
    VertexInsertion,
)

__version__ = "1.0.0"

__all__ = [
    "ActivationStrategy",
    "AdaptiveWindowController",
    "AdmissionConfig",
    "DDisMISRecompute",
    "DISTRIBUTED_ALGORITHM_NAMES",
    "DOIMISMaintainer",
    "DisMISRun",
    "DynamicGraph",
    "EdgeDeletion",
    "EdgeInsertion",
    "FixedWindowController",
    "IngestionService",
    "MISMaintainer",
    "NaiveRecompute",
    "OIMISRun",
    "ReproError",
    "RetryPolicy",
    "StreamingSession",
    "TraceConfig",
    "WeightedMISMaintainer",
    "WindowConfig",
    "WindowReport",
    "WriteAheadLog",
    "bursty_trace",
    "weighted_greedy_mis",
    "Status",
    "UpdateBatch",
    "VertexDeletion",
    "VertexInsertion",
    "assert_valid_mis",
    "is_greedy_fixpoint",
    "is_independent_set",
    "is_maximal_independent_set",
    "make_algorithm",
    "run_dismis",
    "run_oimis",
    "run_oimis_pregel",
]
