"""Small shared helpers with no heavyweight intra-repo dependencies.

:func:`percentile` started life inside :mod:`repro.stream` (per-window
wall-latency summaries); the read path needs the identical nearest-rank
summary for query latencies, so the single implementation lives here and
both call sites import it.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import WorkloadError


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence (0.0 when
    empty — there is no latency to report before the first sample)."""
    if not sorted_values:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise WorkloadError(f"percentile q must be in (0, 1], got {q}")
    rank = math.ceil(q * len(sorted_values))
    return sorted_values[rank - 1]
