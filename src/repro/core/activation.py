"""Selective activation strategies (Section V of the paper).

When a vertex's ``in`` status changes, OIMIS activates neighbours to
re-examine the local property.  The paper proves two progressively stronger
filters keep the result unchanged while activating fewer vertices:

- :attr:`ActivationStrategy.ALL` — activate every neighbour (Algorithm 2
  line 10 as written).
- :attr:`ActivationStrategy.LOWER_RANKING` — only neighbours ``v`` with
  ``u ≺ v`` (Lemma 5.1: a vertex is only influenced by higher-ranking
  neighbours).  This is the paper's ``+LR`` / ``DOIMIS+``.
- :attr:`ActivationStrategy.SAME_STATUS` — additionally only neighbours
  whose status equals the changer's *end-of-superstep* status (Lemma 5.2).
  This is the paper's ``+SS`` / ``DOIMIS*``.

The same-status comparison must use end-of-superstep values: two vertices
flipping in the same superstep otherwise compare against stale snapshots and
can strand a conflict.  The engine's activation predicates are evaluated
after all new states are applied, which matches what a real ScaleG worker
sees when the guest sync lands.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, Optional, Tuple

from repro.scaleg.engine import ScaleGContext


class ActivationStrategy(enum.Enum):
    """Which neighbours a changed vertex activates."""

    ALL = "all"
    LOWER_RANKING = "lower_ranking"
    SAME_STATUS = "same_status"

    @property
    def paper_name(self) -> str:
        """The label the paper's tables use for DOIMIS with this strategy."""
        return {
            ActivationStrategy.ALL: "DOIMIS",
            ActivationStrategy.LOWER_RANKING: "DOIMIS+",
            ActivationStrategy.SAME_STATUS: "DOIMIS*",
        }[self]


def _same_status(source_state: bool, target_state: bool) -> bool:
    return source_state == target_state


def activation_requests(
    ctx: ScaleGContext, strategy: ActivationStrategy
) -> Iterator[Tuple[int, Optional[Callable[[bool, bool], bool]]]]:
    """Yield ``(neighbour, predicate)`` pairs for a vertex whose ``in``
    status just changed, per ``strategy``.

    Rank comparisons use current degrees via :meth:`ScaleGContext.rank_of`;
    the ``SAME_STATUS`` filter is deferred to the engine's end-of-superstep
    predicate evaluation.
    """
    if strategy is ActivationStrategy.ALL:
        for v in ctx.ranked_neighbors():
            yield (v, None)
        return
    my_rank = (ctx.degree(), ctx.vertex)
    predicate = _same_status if strategy is ActivationStrategy.SAME_STATUS else None
    for v in ctx.ranked_neighbors():
        if ctx.rank_of(v) < my_rank:
            continue  # rank-ordered prefix: higher-ranking, never woken
        yield (v, predicate)  # u ≺ v: v ranks lower
