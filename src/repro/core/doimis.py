"""DOIMIS — dynamic MIS maintenance (Algorithm 3 + Section VI).

Given a graph whose MIS (OIMIS fixpoint) is already materialized, an update
is processed by:

1. applying the edge insertions/deletions to the distributed graph (which
   keeps the guest directory in lock-step and reports brand-new guest
   copies);
2. charging the update's own communication — degree changes ship to each
   endpoint's guest copies, new copies ship full state (Section IV-A);
3. activating the *affected vertices* (Definition 4.1: the update's terminal
   vertices plus all their neighbours, on the updated graph);
4. resuming the OIMIS vertex program from the current states until no vertex
   is active.

Theorems 4.2/6.1: the result equals OIMIS recomputed from scratch on the
updated graph, for any update order and any batch size.  Vertex insertion
adds the vertex with ``in = true`` and batch-inserts its edges; vertex
deletion batch-deletes the incident edges first.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.activation import ActivationStrategy
from repro.core.oimis import OIMISProgram, independent_set_from_states
from repro.errors import WorkloadError
from repro.graph.distributed_graph import DistributedGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    EdgeUpdate,
    UpdateBatch,
    UpdateOp,
    VertexDeletion,
    VertexInsertion,
    affected_vertices,
)
from repro.pregel.metrics import RunMetrics
from repro.pregel.partition import HashPartitioner, Partitioner
from repro.scaleg.engine import ScaleGEngine


class DOIMISMaintainer:
    """Maintains the OIMIS independent set under graph updates.

    Parameters
    ----------
    graph:
        The initial graph.  The maintainer takes ownership and mutates it.
    num_workers:
        Simulated cluster size (the paper's default is 10).
    strategy:
        Activation strategy — ``ALL`` is plain DOIMIS, ``LOWER_RANKING`` is
        DOIMIS+, ``SAME_STATUS`` is DOIMIS* (the paper's best variant and
        this class's default).
    full_scan:
        Disable the early-exit neighbour scan (the SCALL baseline).
    keep_records:
        Retain per-superstep records in the update metrics.  Needed for the
        per-superstep makespan model; off by default because a 100k-update
        stream would accumulate hundreds of thousands of records.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` or
        :class:`~repro.faults.injector.FaultInjector` handed to the engine —
        every maintenance run then executes under seeded fault injection
        with recovery.  ``None`` (or an empty plan) is the fault-free build.
    membership:
        A :class:`~repro.faults.membership.MembershipConfig` or
        :class:`~repro.faults.membership.FailoverCoordinator` handed to the
        engine — permanent worker losses then fail over (partition
        reassignment + guest-copy reconstruction) and the guest anti-entropy
        auditor runs.  ``None`` auto-attaches a default coordinator exactly
        when the fault plan schedules losses or guest corruption.
    runtime:
        Execution backend for the compute sweeps — ``None``/``"inline"``
        (serial, the default), ``"process"`` (the multi-core
        :class:`~repro.runtime.parallel.ParallelRuntime`), or an
        :class:`~repro.runtime.base.ExecutionBackend` instance.  Call
        :meth:`close` (or use the maintainer as a context manager) when a
        process runtime is attached.
    sanitize:
        ``None`` defers to the ``REPRO_SANITIZE`` env flag, ``True``/
        ``False`` force the superstep race sanitizer on/off, or pass a
        :class:`~repro.analysis.parallel.RaceSanitizer` — the engine's
        backend is then wrapped to record per-worker read/write sets each
        superstep and flag races (see :mod:`repro.analysis.parallel`).
    representation:
        Partition representation for the engine's sweeps — ``"dict"``
        (the bit-identity reference) or ``"csr"`` (flat-array mirror,
        vectorized sweeps + shared-memory worker frames); ``None``
        defers to the ``REPRO_REPRESENTATION`` env flag.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 10,
        strategy: ActivationStrategy = ActivationStrategy.SAME_STATUS,
        partitioner: Optional[Partitioner] = None,
        full_scan: bool = False,
        keep_records: bool = False,
        resume_states: Optional[Dict[int, bool]] = None,
        program: Optional[OIMISProgram] = None,
        faults=None,
        membership=None,
        runtime=None,
        sanitize=None,
        representation=None,
    ):
        self._dgraph = DistributedGraph(
            graph, partitioner or HashPartitioner(num_workers)
        )
        self._engine = ScaleGEngine(
            self._dgraph, faults=faults, membership=membership,
            runtime=runtime, sanitize=sanitize, representation=representation,
        )
        self._program = program if program is not None else OIMISProgram(
            strategy=strategy, full_scan=full_scan
        )
        self._keep_records = keep_records
        self.init_metrics = RunMetrics(num_workers=self._dgraph.num_workers)
        self.update_metrics = RunMetrics(num_workers=self._dgraph.num_workers)
        if resume_states is None:
            result = self._engine.run(self._program, metrics=self.init_metrics)
            self._states: Dict[int, bool] = result.states
        else:
            # checkpoint restore: trust the stored fixpoint (cheap to audit
            # with verify()); missing vertices default to in = true, the
            # same initialization a fresh vertex gets
            self._states = {
                u: bool(resume_states.get(u, True)) for u in graph.vertices()
            }
        self.updates_applied = 0
        self.batches_applied = 0

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        return self._dgraph.graph

    @property
    def dgraph(self) -> DistributedGraph:
        return self._dgraph

    @property
    def strategy(self) -> ActivationStrategy:
        return self._program.strategy

    @property
    def num_workers(self) -> int:
        return self._dgraph.num_workers

    @property
    def failover(self):
        """The engine's failover coordinator (``None`` when neither the
        fault plan nor the caller asked for membership tracking)."""
        return self._engine.failover

    @property
    def runtime(self):
        """The engine's execution backend (inline by default)."""
        return self._engine.runtime

    @property
    def sanitizer(self):
        """The engine's race sanitizer (``None`` when sanitizing is off)."""
        return self._engine.sanitizer

    def close(self) -> None:
        """Release the execution backend (stops worker processes when the
        maintainer runs on the process runtime; a no-op inline)."""
        self._engine.close()

    def __enter__(self) -> "DOIMISMaintainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def final_audit(self) -> int:
        """Close-out anti-entropy sweep: audit every surviving guest copy.

        Corruption injected too recently for its rotation slot is caught
        and read-repaired here, so callers comparing guest copies against
        host state at the end of a session see none diverged.  Costs land
        on the ``divergence_*`` meters of :attr:`update_metrics`.  Returns
        repairs made (0 without an attached coordinator).
        """
        failover = self._engine.failover
        if failover is None:
            return 0
        return failover.final_audit(
            self._states, self._program.sync_bytes, self.update_metrics
        )

    def independent_set(self) -> Set[int]:
        """The currently maintained independent set ``{u | u.in}``."""
        return independent_set_from_states(self._states)

    def contains(self, u: int) -> bool:
        """Whether ``u`` is in the maintained set (False for unknown ids)."""
        return bool(self._states.get(u, False))

    def __len__(self) -> int:
        return sum(1 for in_set in self._states.values() if in_set)

    # ------------------------------------------------------------------
    # update operations
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Insert edge ``(u, v)`` and restore the MIS."""
        self.apply_batch([EdgeInsertion(u, v)])

    def delete_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)`` and restore the MIS."""
        self.apply_batch([EdgeDeletion(u, v)])

    def insert_vertex(self, u: int, neighbors: Iterable[int] = ()) -> None:
        """Insert vertex ``u`` (with optional incident edges) — Section VI.

        ``u`` first joins the set (``in = true``), then the incident edges
        are processed as one batch.
        """
        if self._dgraph.has_vertex(u):
            raise WorkloadError(f"vertex {u} already exists")
        self._dgraph.add_vertex(u)
        self._states[u] = True
        edges = [EdgeInsertion(u, v) for v in sorted(set(neighbors))]
        if edges:
            self.apply_batch(edges)
        else:
            self.updates_applied += 1

    def delete_vertex(self, u: int) -> None:
        """Delete vertex ``u``: batch-delete incident edges, then drop it."""
        incident = [EdgeDeletion(u, v) for v in sorted(self.graph.neighbors(u))]
        if incident:
            self.apply_batch(incident)
        self._dgraph.remove_vertex(u)
        self._states.pop(u, None)
        self.updates_applied += 1

    def apply(self, op: UpdateOp) -> None:
        """Apply a single update operation of any kind."""
        if isinstance(op, (EdgeInsertion, EdgeDeletion)):
            self.apply_batch([op])
        elif isinstance(op, VertexInsertion):
            self.insert_vertex(op.u, op.neighbors)
        elif isinstance(op, VertexDeletion):
            self.delete_vertex(op.u)
        else:
            raise WorkloadError(f"unknown update operation {op!r}")

    def apply_batch(self, operations: Union[UpdateBatch, Sequence[EdgeUpdate]]) -> None:
        """Apply a batch of edge updates and re-converge (Section VI).

        The batch is validated as a whole *before* any mutation (atomic: an
        invalid operation raises and leaves graph and set untouched), then
        the graph mutates, and one maintenance run starts from the union of
        all operations' affected vertices.
        """
        ops: List[EdgeUpdate] = list(operations)
        if not ops:
            return
        self._validate_batch(ops)
        started = time.perf_counter()
        touched: Set[int] = set()
        new_guests: List[int] = []  # vertex per brand-new guest copy
        for op in ops:
            if isinstance(op, EdgeInsertion):
                gained_u, gained_v = self._dgraph.add_edge(op.u, op.v)
                if gained_u:
                    new_guests.extend([op.u] * gained_u)
                if gained_v:
                    new_guests.extend([op.v] * gained_v)
            else:
                self._dgraph.remove_edge(op.u, op.v)
            touched.add(op.u)
            touched.add(op.v)
        # edge insertions may introduce brand-new vertices: they join with
        # in = true, exactly like Section VI's vertex insertion (sorted so
        # the state dict's insertion order never depends on set hashing)
        created: List[int] = []
        for u in sorted(touched):
            if u not in self._states and self._dgraph.has_vertex(u):
                self._states[u] = True
                created.append(u)

        self._engine.charge_graph_update(
            sorted(touched), new_guests, self._program,
            self._states, self.update_metrics,
        )
        affected = affected_vertices(self.graph, touched)
        self.update_metrics.wall_time_s += time.perf_counter() - started
        try:
            self._engine.run(
                self._program,
                initial_active=affected,
                states=self._states,
                metrics=self.update_metrics,
                keep_records=self._keep_records,
            )
        except BaseException:
            # the engine restored every state it overwrote; undo this
            # batch's graph mutations (guest directory follows in
            # lock-step) and implicitly-created vertices so the maintainer
            # is exactly as before apply_batch was called
            for op in reversed(ops):
                if isinstance(op, EdgeInsertion):
                    self._dgraph.remove_edge(op.u, op.v)
                else:
                    self._dgraph.add_edge(op.u, op.v)
            for u in created:
                self._dgraph.remove_vertex(u)
                self._states.pop(u, None)
            raise
        self.updates_applied += len(ops)
        self.batches_applied += 1

    def _validate_batch(self, ops: Sequence[EdgeUpdate]) -> None:
        """Check the whole batch replays cleanly before touching the graph.

        Tracks the edge-set delta the batch accumulates so a batch may
        legally delete an edge it inserted earlier (and vice versa), exactly
        as sequential application would.  Raises :class:`WorkloadError` /
        the graph errors with the offending operation named, leaving the
        maintainer untouched.
        """
        graph = self.graph
        inserted: Set = set()
        deleted: Set = set()
        for index, op in enumerate(ops):
            if isinstance(op, EdgeInsertion):
                if op.u == op.v:
                    raise WorkloadError(
                        f"batch op {index}: self-loop insertion {op!r}"
                    )
                edge = op.edge
                present = (
                    edge in inserted
                    or (graph.has_edge(op.u, op.v) and edge not in deleted)
                )
                if present:
                    raise WorkloadError(
                        f"batch op {index}: {op!r} inserts an existing edge"
                    )
                inserted.add(edge)
                deleted.discard(edge)
            elif isinstance(op, EdgeDeletion):
                edge = op.edge
                present = (
                    edge in inserted
                    or (
                        graph.has_vertex(op.u)
                        and graph.has_edge(op.u, op.v)
                        and edge not in deleted
                    )
                )
                if not present:
                    raise WorkloadError(
                        f"batch op {index}: {op!r} deletes a missing edge"
                    )
                deleted.add(edge)
                inserted.discard(edge)
            else:
                raise WorkloadError(
                    f"batch op {index}: apply_batch only accepts edge "
                    f"updates, got {op!r}"
                )

    def apply_stream(
        self,
        operations: Iterable[EdgeUpdate],
        batch_size: int = 1,
    ) -> None:
        """Apply an update stream in batches of ``batch_size`` (the paper's
        ``b`` parameter; ``b = 1`` is single-update processing)."""
        if batch_size < 1:
            raise WorkloadError(f"batch_size must be >= 1, got {batch_size}")
        pending: List[EdgeUpdate] = []
        for op in operations:
            pending.append(op)
            if len(pending) >= batch_size:
                self.apply_batch(pending)
                pending = []
        if pending:
            self.apply_batch(pending)

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Assert the maintained set is the degree-order greedy fixpoint.

        Raises :class:`~repro.errors.VerificationError` on violation.  This
        recomputes the oracle serially — O(n log n + m) — so call it in
        tests and debugging sessions, not per-update in production loops.
        """
        from repro.core.verification import assert_valid_mis

        assert_valid_mis(self.graph, self.independent_set())

    def recompute_from_scratch(self) -> Set[int]:
        """Discard states and rerun static OIMIS (sanity/repair tool).

        Costs are charged to :attr:`init_metrics`, not the update meter.
        """
        result = self._engine.run(self._program, metrics=self.init_metrics)
        self._states = result.states
        return self.independent_set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DOIMISMaintainer(|V|={self.graph.num_vertices}, "
            f"|M|={len(self)}, strategy={self.strategy.value}, "
            f"updates={self.updates_applied})"
        )
