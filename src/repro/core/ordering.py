"""The vertex total order ``≺`` (Definition 3.1).

``u ≺ v`` iff ``deg(u) < deg(v)``, ties broken by id.  The order drives
every algorithm in this library: DisMIS selects ``≺``-minimal vertices,
OIMIS's fixpoint is "in the set iff no ``≺``-smaller neighbour is", and the
maintenance algorithms re-evaluate it against *current* degrees, which is
why edge updates (which change degrees) can ripple.

Ranks are represented as ``(degree, id)`` tuples compared lexicographically,
so ``rank(g, u) < rank(g, v)`` is exactly ``u ≺ v``.  No global rank value
is ever materialized — consistent with the paper's observation that only
pairwise comparisons are needed, at zero maintenance cost.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.dynamic_graph import DynamicGraph

Rank = Tuple[int, int]


def rank(graph: DynamicGraph, u: int) -> Rank:
    """The ``≺`` key of ``u`` under the graph's *current* degrees."""
    return (graph.degree(u), u)


def precedes(graph: DynamicGraph, u: int, v: int) -> bool:
    """``u ≺ v`` — ``u`` dominates (ranks higher than) ``v``."""
    return rank(graph, u) < rank(graph, v)


def degree_order(graph: DynamicGraph) -> List[int]:
    """All vertices sorted ascending by ``≺`` (the greedy processing order)."""
    return sorted(graph.vertices(), key=lambda u: (graph.degree(u), u))


def dominating_neighbors(graph: DynamicGraph, u: int) -> List[int]:
    """Neighbours of ``u`` that rank higher than ``u``, in ``≺`` order."""
    my_rank = rank(graph, u)
    nbrs = [v for v in sorted(graph.neighbors(u)) if rank(graph, v) < my_rank]
    nbrs.sort(key=lambda v: (graph.degree(v), v))
    return nbrs


def dominated_neighbors(graph: DynamicGraph, u: int) -> List[int]:
    """Neighbours of ``u`` that rank lower than ``u``, in ``≺`` order."""
    my_rank = rank(graph, u)
    nbrs = [v for v in sorted(graph.neighbors(u)) if rank(graph, v) > my_rank]
    nbrs.sort(key=lambda v: (graph.degree(v), v))
    return nbrs
