"""Public facade: :class:`MISMaintainer`.

This is the class a downstream user instantiates: point it at a graph, get
the near-maximum independent set, feed it updates, read the set back at any
time.  It is :class:`~repro.core.doimis.DOIMISMaintainer` (the paper's
DOIMIS* by default) plus ergonomics: construction from edge lists or files,
self-verification, and a statistics snapshot.

Example
-------
>>> from repro import MISMaintainer
>>> m = MISMaintainer.from_edges([(1, 2), (2, 3), (3, 4)])
>>> sorted(m.independent_set())
[1, 4]
>>> m.delete_edge(2, 3)
>>> sorted(m.independent_set())
[1, 3]
>>> m.verify()  # raises VerificationError if the invariants ever break
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.activation import ActivationStrategy
from repro.core.doimis import DOIMISMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.io import read_edge_list
from repro.pregel.partition import Partitioner


class MISMaintainer(DOIMISMaintainer):
    """Distributed near-maximum independent set maintenance (DOIMIS*)."""

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 10,
        strategy: ActivationStrategy = ActivationStrategy.SAME_STATUS,
        partitioner: Optional[Partitioner] = None,
        keep_records: bool = False,
        resume_states=None,
    ):
        super().__init__(
            graph,
            num_workers=num_workers,
            strategy=strategy,
            partitioner=partitioner,
            keep_records=keep_records,
            resume_states=resume_states,
        )

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        vertices: Iterable[int] = (),
        **kwargs,
    ) -> "MISMaintainer":
        """Build a maintainer from an edge iterable."""
        return cls(DynamicGraph.from_edges(edges, vertices=vertices), **kwargs)

    @classmethod
    def from_edge_list_file(cls, path, **kwargs) -> "MISMaintainer":
        """Build a maintainer from a SNAP-style edge-list file."""
        return cls(read_edge_list(path), **kwargs)

    def save(self, path) -> None:
        """Checkpoint graph + maintained set to a JSON file.

        A checkpoint restores in O(n + m) with **no recomputation** — the
        stored set is the fixpoint already (restore calls :meth:`verify`).
        """
        import json

        payload = {
            "format": "repro-mis-checkpoint",
            "version": 1,
            "num_workers": self.num_workers,
            "strategy": self.strategy.value,
            "vertices": self.graph.sorted_vertices(),
            "edges": [list(e) for e in self.graph.sorted_edges()],
            "independent_set": sorted(self.independent_set()),
            "updates_applied": self.updates_applied,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path, verify: bool = True) -> "MISMaintainer":
        """Restore a maintainer from a :meth:`save` checkpoint."""
        import json

        from repro.errors import ReproError

        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != "repro-mis-checkpoint":
            raise ReproError(f"{path} is not a repro MIS checkpoint")
        graph = DynamicGraph.from_edges(
            (tuple(e) for e in payload["edges"]), vertices=payload["vertices"]
        )
        members = set(payload["independent_set"])
        maintainer = cls(
            graph,
            num_workers=int(payload["num_workers"]),
            strategy=ActivationStrategy(payload["strategy"]),
            resume_states={u: (u in members) for u in graph.vertices()},
        )
        maintainer.updates_applied = int(payload.get("updates_applied", 0))
        if verify:
            maintainer.verify()
        return maintainer

    def stats(self) -> Dict[str, float]:
        """A snapshot of set size and accumulated maintenance costs."""
        return {
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "set_size": float(len(self)),
            "updates_applied": float(self.updates_applied),
            "batches_applied": float(self.batches_applied),
            "supersteps": float(self.update_metrics.supersteps),
            "active_vertices": float(self.update_metrics.active_vertices),
            "communication_mb": self.update_metrics.communication_mb,
            "memory_mb": self.update_metrics.memory_mb,
            "wall_time_s": self.update_metrics.wall_time_s,
        }
