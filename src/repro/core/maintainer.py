"""Public facade: :class:`MISMaintainer`.

This is the class a downstream user instantiates: point it at a graph, get
the near-maximum independent set, feed it updates, read the set back at any
time.  It is :class:`~repro.core.doimis.DOIMISMaintainer` (the paper's
DOIMIS* by default) plus ergonomics: construction from edge lists or files,
self-verification, and a statistics snapshot.

Example
-------
>>> from repro import MISMaintainer
>>> m = MISMaintainer.from_edges([(1, 2), (2, 3), (3, 4)])
>>> sorted(m.independent_set())
[1, 4]
>>> m.delete_edge(2, 3)
>>> sorted(m.independent_set())
[1, 3]
>>> m.verify()  # raises VerificationError if the invariants ever break
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.activation import ActivationStrategy
from repro.core.doimis import DOIMISMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.io import read_edge_list
from repro.pregel.partition import Partitioner

CHECKPOINT_FORMAT = "repro-mis-checkpoint"
#: bump when the payload schema changes; :meth:`MISMaintainer.load` accepts
#: every version up to this one and rejects anything newer
CHECKPOINT_VERSION = 1


class MISMaintainer(DOIMISMaintainer):
    """Distributed near-maximum independent set maintenance (DOIMIS*)."""

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 10,
        strategy: ActivationStrategy = ActivationStrategy.SAME_STATUS,
        partitioner: Optional[Partitioner] = None,
        keep_records: bool = False,
        resume_states=None,
        faults=None,
        membership=None,
        runtime=None,
        sanitize=None,
        representation=None,
    ):
        super().__init__(
            graph,
            num_workers=num_workers,
            strategy=strategy,
            partitioner=partitioner,
            keep_records=keep_records,
            resume_states=resume_states,
            faults=faults,
            membership=membership,
            runtime=runtime,
            sanitize=sanitize,
            representation=representation,
        )

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        vertices: Iterable[int] = (),
        **kwargs,
    ) -> "MISMaintainer":
        """Build a maintainer from an edge iterable."""
        return cls(DynamicGraph.from_edges(edges, vertices=vertices), **kwargs)

    @classmethod
    def from_edge_list_file(cls, path, **kwargs) -> "MISMaintainer":
        """Build a maintainer from a SNAP-style edge-list file."""
        return cls(read_edge_list(path), **kwargs)

    def save(self, path) -> None:
        """Checkpoint graph + maintained set to a JSON file.

        A checkpoint restores in O(n + m) with **no recomputation** — the
        stored set is the fixpoint already (restore calls :meth:`verify`).
        """
        import json

        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "num_workers": self.num_workers,
            "strategy": self.strategy.value,
            "vertices": self.graph.sorted_vertices(),
            "edges": [list(e) for e in self.graph.sorted_edges()],
            "independent_set": sorted(self.independent_set()),
            "updates_applied": self.updates_applied,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path, verify: bool = True,
             num_workers: Optional[int] = None, **kwargs) -> "MISMaintainer":
        """Restore a maintainer from a :meth:`save` checkpoint.

        Every way a checkpoint can be bad — missing file, truncated or
        corrupt JSON, wrong or future schema version, malformed vertex ids —
        raises :class:`~repro.errors.CheckpointError` naming the path and
        the reason; callers never see a bare ``json.JSONDecodeError`` or
        ``KeyError``.

        ``num_workers`` pins the cluster size the caller's engine is
        configured for: a checkpoint saved under a different worker count
        raises ``CheckpointError("partition mismatch: ...")`` with both
        counts instead of silently resuming onto the wrong partitioning
        (host/guest directories would disagree with every meter and with a
        failover coordinator's membership view).  ``None`` (the default)
        adopts the checkpoint's own count.  Extra keyword arguments
        (``faults``, ``membership``, ``partitioner``, ``runtime``, ...)
        pass through to the constructor.
        """
        import json

        from repro.errors import CheckpointError

        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise CheckpointError(path, exc.strerror or str(exc)) from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                path, f"truncated or corrupt JSON ({exc})"
            ) from exc
        if not isinstance(payload, dict) \
                or payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                path, f"not a {CHECKPOINT_FORMAT} document"
            )
        version = payload.get("version")
        if not isinstance(version, int) or not 1 <= version <= CHECKPOINT_VERSION:
            raise CheckpointError(
                path,
                f"unsupported checkpoint version {version!r} "
                f"(this build reads 1..{CHECKPOINT_VERSION})",
            )
        try:
            vertices = [int(u) for u in payload["vertices"]]
            edges = [(int(u), int(v)) for u, v in payload["edges"]]
            members = {int(u) for u in payload["independent_set"]}
            saved_workers = int(payload["num_workers"])
            strategy = ActivationStrategy(payload["strategy"])
            updates_applied = int(payload.get("updates_applied", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(path, f"malformed payload: {exc}") from exc
        bad = [u for u in vertices if u < 0]
        bad += [u for e in edges for u in e if u < 0]
        if bad:
            raise CheckpointError(
                path, f"negative vertex id(s): {sorted(set(bad))[:5]}"
            )
        if saved_workers < 1:
            raise CheckpointError(
                path, f"num_workers must be >= 1, got {saved_workers}"
            )
        if num_workers is not None and num_workers != saved_workers:
            raise CheckpointError(
                path,
                f"partition mismatch: checkpoint has {saved_workers} "
                f"worker(s), engine configured for {num_workers}",
            )
        try:
            graph = DynamicGraph.from_edges(edges, vertices=vertices)
        except Exception as exc:
            raise CheckpointError(path, f"invalid graph: {exc}") from exc
        maintainer = cls(
            graph,
            num_workers=saved_workers,
            strategy=strategy,
            resume_states={u: (u in members) for u in graph.vertices()},
            **kwargs,
        )
        maintainer.updates_applied = updates_applied
        if verify:
            maintainer.verify()
        return maintainer

    def stats(self) -> Dict[str, float]:
        """A snapshot of set size and accumulated maintenance costs."""
        snapshot = {
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "set_size": float(len(self)),
            "updates_applied": float(self.updates_applied),
            "batches_applied": float(self.batches_applied),
            "supersteps": float(self.update_metrics.supersteps),
            "active_vertices": float(self.update_metrics.active_vertices),
            "communication_mb": self.update_metrics.communication_mb,
            "memory_mb": self.update_metrics.memory_mb,
            "wall_time_s": self.update_metrics.wall_time_s,
        }
        # fault-recovery and anti-entropy overhead accrues on whichever run
        # was faulted (the initial static run or the update runs) — report
        # the sum
        init_recovery = self.init_metrics.recovery_summary()
        for name, value in self.update_metrics.recovery_summary().items():
            snapshot[name] = float(init_recovery[name] + value)
        init_divergence = self.init_metrics.divergence_summary()
        for name, value in self.update_metrics.divergence_summary().items():
            snapshot[name] = float(init_divergence[name] + value)
        return snapshot
