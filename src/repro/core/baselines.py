"""Distributed baselines for the efficiency study (Section VII-D).

All maintainers expose the same interface (``apply_batch`` /
``independent_set`` / ``update_metrics``) so the benchmark harness can sweep
over them uniformly:

- **DOIMIS / DOIMIS+ / DOIMIS\\*** — Algorithm 3 with the three activation
  strategies (:func:`make_algorithm` names them as the paper does).
- **SCALL** — maintains the set dynamically like DOIMIS, but every active
  vertex scans *all* neighbours instead of stopping at the first dominating
  in-set neighbour.  Identical results and communication, more computation.
- **Naive** — recomputes OIMIS from scratch on the updated graph for every
  batch.
- **dDisMIS** — recomputes DisMIS from scratch on the updated graph for
  every batch.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.activation import ActivationStrategy
from repro.core.dismis import DisMISProgram, Status
from repro.core.doimis import DOIMISMaintainer
from repro.core.oimis import OIMISProgram, independent_set_from_states
from repro.errors import WorkloadError
from repro.graph.distributed_graph import DistributedGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import EdgeDeletion, EdgeInsertion, EdgeUpdate
from repro.pregel.metrics import RunMetrics
from repro.pregel.partition import HashPartitioner, Partitioner
from repro.scaleg.engine import ScaleGEngine


class RecomputeBaseline:
    """Shared machinery for the from-scratch baselines (Naive / dDisMIS)."""

    #: subclasses set the paper's display name
    name = "Recompute"

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 10,
        partitioner: Optional[Partitioner] = None,
    ):
        self._dgraph = DistributedGraph(
            graph, partitioner or HashPartitioner(num_workers)
        )
        self._engine = ScaleGEngine(self._dgraph)
        self.init_metrics = RunMetrics(num_workers=self._dgraph.num_workers)
        self.update_metrics = RunMetrics(num_workers=self._dgraph.num_workers)
        self.updates_applied = 0
        self.batches_applied = 0
        self._set: Set[int] = set()
        self._recompute(self.init_metrics)

    # subclasses provide the actual static program run
    def _recompute(self, metrics: RunMetrics) -> None:
        raise NotImplementedError

    @property
    def graph(self) -> DynamicGraph:
        return self._dgraph.graph

    def independent_set(self) -> Set[int]:
        return set(self._set)

    def apply_batch(self, operations: Sequence[EdgeUpdate]) -> None:
        ops: List[EdgeUpdate] = list(operations)
        if not ops:
            return
        started = time.perf_counter()
        for op in ops:
            if isinstance(op, EdgeInsertion):
                self._dgraph.add_edge(op.u, op.v)
            elif isinstance(op, EdgeDeletion):
                self._dgraph.remove_edge(op.u, op.v)
            else:
                raise WorkloadError(f"unsupported operation {op!r}")
        self.update_metrics.wall_time_s += time.perf_counter() - started
        self._recompute(self.update_metrics)
        self.updates_applied += len(ops)
        self.batches_applied += 1

    def apply_stream(self, operations: Iterable[EdgeUpdate], batch_size: int = 1) -> None:
        pending: List[EdgeUpdate] = []
        for op in operations:
            pending.append(op)
            if len(pending) >= batch_size:
                self.apply_batch(pending)
                pending = []
        if pending:
            self.apply_batch(pending)


class NaiveRecompute(RecomputeBaseline):
    """The paper's ``Naive``: rerun OIMIS from scratch per batch."""

    name = "Naive"

    def _recompute(self, metrics: RunMetrics) -> None:
        program = OIMISProgram(strategy=ActivationStrategy.ALL)
        result = self._engine.run(program, metrics=metrics, keep_records=False)
        self._set = independent_set_from_states(result.states)


class DDisMISRecompute(RecomputeBaseline):
    """The paper's ``dDisMIS``: rerun DisMIS from scratch per batch."""

    name = "dDisMIS"

    def _recompute(self, metrics: RunMetrics) -> None:
        result = self._engine.run(
            DisMISProgram(), metrics=metrics, keep_records=False
        )
        self._set = {u for u, s in result.states.items() if s == Status.IN}


#: paper algorithm name -> constructor kwargs for :class:`DOIMISMaintainer`
_DOIMIS_VARIANTS: Dict[str, Dict] = {
    "DOIMIS": {"strategy": ActivationStrategy.ALL, "full_scan": False},
    "DOIMIS+": {"strategy": ActivationStrategy.LOWER_RANKING, "full_scan": False},
    "DOIMIS*": {"strategy": ActivationStrategy.SAME_STATUS, "full_scan": False},
    "SCALL": {"strategy": ActivationStrategy.ALL, "full_scan": True},
}

DISTRIBUTED_ALGORITHM_NAMES = ("SCALL", "DOIMIS", "DOIMIS+", "DOIMIS*", "Naive", "dDisMIS")


def make_algorithm(
    name: str,
    graph: DynamicGraph,
    num_workers: int = 10,
    partitioner: Optional[Partitioner] = None,
    runtime=None,
    representation=None,
):
    """Build a distributed maintenance algorithm by its paper name.

    Accepted names: ``SCALL``, ``DOIMIS``, ``DOIMIS+``, ``DOIMIS*``,
    ``Naive``, ``dDisMIS``.  All returned objects share the
    ``apply_batch / apply_stream / independent_set / update_metrics``
    interface.  ``runtime`` selects the execution backend and
    ``representation`` the partition layout for the DOIMIS variants (the
    recompute baselines always run inline on the dict path).
    """
    if name in _DOIMIS_VARIANTS:
        return DOIMISMaintainer(
            graph, num_workers=num_workers, partitioner=partitioner,
            runtime=runtime, representation=representation,
            **_DOIMIS_VARIANTS[name],
        )
    if runtime is not None:
        raise WorkloadError(
            f"algorithm {name!r} does not support a custom runtime"
        )
    if representation is not None and representation != "dict":
        raise WorkloadError(
            f"algorithm {name!r} does not support a custom representation"
        )
    if name == "Naive":
        return NaiveRecompute(graph, num_workers=num_workers, partitioner=partitioner)
    if name == "dDisMIS":
        return DDisMISRecompute(graph, num_workers=num_workers, partitioner=partitioner)
    raise WorkloadError(
        f"unknown algorithm {name!r}; known: {', '.join(DISTRIBUTED_ALGORITHM_NAMES)}"
    )
