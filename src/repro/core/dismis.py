"""DisMIS — the state-of-the-art distributed *static* MIS (Algorithm 1).

DisMIS runs Luby-style rounds of three supersteps driven by the total order
``≺``:

- **selection** (``superstep % 3 == 1``): an ``Unknown`` vertex with no
  dominating ``Unknown`` neighbour enters ``In`` and notifies neighbours;
- **deletion** (``superstep % 3 == 2``): an ``Unknown`` vertex adjacent to an
  ``In`` vertex becomes ``NotIn`` and notifies neighbours;
- **synchronization** (``superstep % 3 == 0``): still-``Unknown`` vertices
  whose neighbourhood changed re-announce ``(id, status, info)`` so the next
  selection sees fresh information.

This is the *order-dependent* baseline the paper improves on: the result
equals OIMIS's (Theorem 4.1) but the rigid round structure costs extra
supersteps and — because of the sync-superstep re-announcements — roughly
double the communication (Table II).

Implementation note: the paper's pseudocode recounts dominating ``Unknown``
neighbours from the messages received in one superstep, which under-activates
in corner cases (a vertex can be woken by a lower-ranking re-announcement
while a silent dominating neighbour is missed).  Both implementations here
use complete neighbour knowledge — guest-copy reads on ScaleG, a per-vertex
neighbour cache on Pregel — which is what the ScaleG deployment the paper
describes actually provides, and which makes Theorem 4.1 hold unconditionally.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional, Set

from repro.graph.distributed_graph import DistributedGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.pregel.engine import PregelContext, PregelEngine, PregelProgram
from repro.pregel.metrics import DEGREE_BYTES, STATUS_BYTES, VERTEX_ID_BYTES, RunMetrics
from repro.pregel.partition import HashPartitioner
from repro.scaleg.engine import ScaleGContext, ScaleGEngine, ScaleGProgram


class Status(enum.IntEnum):
    """DisMIS's three vertex states."""

    UNKNOWN = 0
    IN = 1
    NOTIN = 2


class DisMISProgram(ScaleGProgram):
    """Algorithm 1 as a ScaleG vertex program (state = :class:`Status`)."""

    def initial_state(self, dgraph: DistributedGraph, u: int) -> Status:
        return Status.UNKNOWN

    def compute(self, ctx: ScaleGContext) -> None:
        if ctx.superstep == 0:
            # Initialization superstep: status is already Unknown; model the
            # broadcast of (id, status, info) as a forced guest sync, and
            # wake everyone (self included) for the first selection.
            ctx.force_sync()
            ctx.activate(ctx.vertex)
            for v in ctx.ranked_neighbors():
                ctx.activate(v)
            return
        if ctx.state != Status.UNKNOWN:
            return
        phase = ctx.superstep % 3
        if phase == 1:
            self._selection(ctx)
        elif phase == 2:
            self._deletion(ctx)
        else:
            self._synchronization(ctx)

    def _selection(self, ctx: ScaleGContext) -> None:
        # Lines 8-15: count dominating Unknown neighbours (full count, as in
        # the pseudocode — no early break, one of the costs OIMIS sheds).
        count = 0
        my_rank = (ctx.degree(), ctx.vertex)
        for v in ctx.ranked_neighbors():
            ctx.charge(1)
            if ctx.rank_of(v) < my_rank and ctx.neighbor_state(v) == Status.UNKNOWN:
                count += 1
        if count == 0:
            ctx.set_state(Status.IN)
            for v in ctx.ranked_neighbors():
                ctx.activate(v)

    def _deletion(self, ctx: ScaleGContext) -> None:
        # Lines 17-19: a neighbour was selected -> leave the Unknown set.
        # Selected vertices dominate their neighbourhood, so in rank order
        # any In neighbour sits early in the scan — the return fires sooner.
        for v in ctx.ranked_neighbors():
            if ctx.neighbor_state(v) == Status.IN:
                ctx.set_state(Status.NOTIN)
                for w in ctx.ranked_neighbors():
                    ctx.activate(w)
                return

    def _synchronization(self, ctx: ScaleGContext) -> None:
        # Lines 21-22: re-announce (id, status, info) and get this vertex and
        # its neighbours re-examined at the next selection superstep.
        ctx.force_sync()
        ctx.activate(ctx.vertex)
        for v in ctx.ranked_neighbors():
            ctx.activate(v)

    def sync_bytes(self, state: Status) -> int:
        # status + info (the degree used for ≺ comparisons)
        return STATUS_BYTES + DEGREE_BYTES

    def state_bytes(self, state: Status) -> int:
        return STATUS_BYTES + DEGREE_BYTES

    def contract_members(self, states: Dict[int, Status]) -> Set[int]:
        return {u for u, s in states.items() if s == Status.IN}


class DisMISPregelProgram(PregelProgram):
    """Algorithm 1 on the classic message-passing engine.

    Vertex state is ``{"status": Status, "nbr": {v: (deg, Status)}}``; the
    neighbour cache is fed by the initialization broadcast, status-change
    notifications, and sync-superstep re-announcements.
    """

    _FULL_BYTES = VERTEX_ID_BYTES + STATUS_BYTES + DEGREE_BYTES
    _NOTIFY_BYTES = VERTEX_ID_BYTES + STATUS_BYTES

    def initial_state(self, dgraph: DistributedGraph, u: int) -> Dict[str, Any]:
        return {"status": Status.UNKNOWN, "nbr": {}}

    def compute(self, ctx: PregelContext) -> None:
        state = ctx.state
        status: Status = state["status"]
        cache = dict(state["nbr"])
        for payload in ctx.messages:
            v, deg_v, status_v = payload
            cache[v] = (deg_v, status_v)
            ctx.charge(1)

        if ctx.superstep == 0:
            ctx.broadcast(
                (ctx.vertex, ctx.degree(), Status.UNKNOWN), self._FULL_BYTES
            )
            ctx.send(ctx.vertex, (ctx.vertex, ctx.degree(), Status.UNKNOWN),
                     self._FULL_BYTES)
            ctx.set_state({"status": status, "nbr": cache})
            return

        if status != Status.UNKNOWN:
            ctx.set_state({"status": status, "nbr": cache})
            return

        phase = ctx.superstep % 3
        if phase == 1:
            my_rank = (ctx.degree(), ctx.vertex)
            count = 0
            # rank-ordered over the broadcast cache (full count kept, as in
            # the pseudocode — the cost OIMIS sheds)
            for v, (deg_v, status_v) in sorted(
                cache.items(), key=lambda item: (item[1][0], item[0])
            ):
                ctx.charge(1)
                if (deg_v, v) < my_rank and status_v == Status.UNKNOWN:
                    count += 1
            if count == 0:
                status = Status.IN
                ctx.broadcast(
                    (ctx.vertex, ctx.degree(), Status.IN), self._NOTIFY_BYTES
                )
        elif phase == 2:
            # rank-ordered: an In neighbour dominates, so it sorts early and
            # the break fires after fewer scans
            for v in sorted(cache, key=lambda v: (cache[v][0], v)):
                ctx.charge(1)
                if cache[v][1] == Status.IN:
                    status = Status.NOTIN
                    ctx.broadcast(
                        (ctx.vertex, ctx.degree(), Status.NOTIN),
                        self._NOTIFY_BYTES,
                    )
                    break
        else:
            # sync: re-announce and self-message to recount at selection
            ctx.broadcast(
                (ctx.vertex, ctx.degree(), Status.UNKNOWN), self._FULL_BYTES
            )
            ctx.send(
                ctx.vertex,
                (ctx.vertex, ctx.degree(), Status.UNKNOWN),
                self._FULL_BYTES,
            )
        ctx.set_state({"status": status, "nbr": cache})

    def state_bytes(self, state: Dict[str, Any]) -> int:
        return (STATUS_BYTES + DEGREE_BYTES) + len(state["nbr"]) * (
            VERTEX_ID_BYTES + DEGREE_BYTES + STATUS_BYTES
        )

    def contract_members(self, states: Dict[int, Dict[str, Any]]) -> Set[int]:
        return {u for u, s in states.items() if s["status"] == Status.IN}


class DisMISRun:
    """Outcome of a DisMIS computation."""

    def __init__(self, independent_set: Set[int], statuses: Dict[int, Status],
                 metrics: RunMetrics):
        self.independent_set = independent_set
        self.statuses = statuses
        self.metrics = metrics

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DisMISRun(|MIS|={len(self.independent_set)}, "
            f"supersteps={self.metrics.supersteps})"
        )


def run_dismis(
    graph: DynamicGraph,
    num_workers: int = 10,
    partitioner=None,
    engine: str = "scaleg",
    metrics: Optional[RunMetrics] = None,
    runtime=None,
) -> DisMISRun:
    """Compute the independent set of a static graph with DisMIS.

    ``engine`` selects ``"scaleg"`` (the paper's deployment, default) or
    ``"pregel"`` (classic message passing).  ``runtime`` selects the
    execution backend; a string-selected process runtime is closed before
    returning, a backend instance stays owned by the caller.
    """
    from repro.runtime.base import ExecutionBackend

    dgraph = DistributedGraph(graph, partitioner or HashPartitioner(num_workers))
    if engine == "scaleg":
        bsp = ScaleGEngine(dgraph, runtime=runtime)
        program = DisMISProgram()
    elif engine == "pregel":
        bsp = PregelEngine(dgraph, runtime=runtime)
        program = DisMISPregelProgram()
    else:
        raise ValueError(f"unknown engine {engine!r}; use 'scaleg' or 'pregel'")
    try:
        result = bsp.run(program, metrics=metrics)
    finally:
        if not isinstance(runtime, ExecutionBackend):
            bsp.close()
    if engine == "scaleg":
        statuses = dict(result.states)
    else:
        statuses = {u: s["status"] for u, s in result.states.items()}
    independent = {u for u, s in statuses.items() if s == Status.IN}
    return DisMISRun(independent, statuses, result.metrics)
