"""Result verification: independence, maximality, and fixpoint checks.

These are the invariants the paper's theorems promise; the test suite and
the benchmark harness call them after every run so a regression in any
algorithm or engine fails loudly instead of silently shrinking set quality.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.errors import VerificationError
from repro.graph.dynamic_graph import DynamicGraph
from repro.serial.greedy import greedy_mis


def is_independent_set(graph: DynamicGraph, candidate: Iterable[int]) -> bool:
    """True iff no two vertices of ``candidate`` are adjacent."""
    members = set(candidate)
    for u in members:
        if not graph.has_vertex(u):
            return False
        if any(v in members for v in graph.neighbors(u)):
            return False
    return True


def is_maximal_independent_set(graph: DynamicGraph, candidate: Iterable[int]) -> bool:
    """True iff ``candidate`` is independent and no vertex can be added."""
    members = set(candidate)
    if not is_independent_set(graph, members):
        return False
    for u in graph.vertices():
        if u in members:
            continue
        if not any(v in members for v in graph.neighbors(u)):
            return False
    return True


def is_greedy_fixpoint(graph: DynamicGraph, candidate: Iterable[int]) -> bool:
    """True iff ``candidate`` satisfies the paper's local property everywhere:

    ``u ∈ M ⇔ no neighbour v ≺ u with v ∈ M`` (Observation 4.1 + order).

    The fixpoint is unique, so this is equivalent to equality with
    :func:`repro.serial.greedy.greedy_mis` but checks the *local* property
    directly, which gives better failure localization.
    """
    members = set(candidate)
    for u in graph.vertices():
        my_rank = (graph.degree(u), u)
        dominated_by_member = any(
            (graph.degree(v), v) < my_rank and v in members
            for v in graph.neighbors(u)
        )
        if (u in members) == dominated_by_member:
            return False
    return True


def assert_valid_mis(graph: DynamicGraph, candidate: Iterable[int]) -> None:
    """Raise :class:`VerificationError` unless ``candidate`` is the greedy
    fixpoint MIS of ``graph`` (which implies maximal independence)."""
    members = set(candidate)
    if not is_independent_set(graph, members):
        offender = _first_violation(graph, members)
        raise VerificationError(f"not an independent set: edge {offender} inside it")
    if not is_greedy_fixpoint(graph, members):
        expected = greedy_mis(graph)
        missing = sorted(expected - members)[:5]
        extra = sorted(members - expected)[:5]
        raise VerificationError(
            "not the degree-order greedy fixpoint: "
            f"missing={missing} extra={extra} "
            f"(|expected|={len(expected)}, |got|={len(members)})"
        )


def _first_violation(graph: DynamicGraph, members: Set[int]):
    for u in sorted(members):
        if not graph.has_vertex(u):
            return (u, "missing-vertex")
        for v in sorted(graph.neighbors(u)):
            if v in members:
                return (u, v)
    return None


def set_quality(candidate_size: int, reference_size: int) -> float:
    """The paper's ``prec``: candidate size over reference size (Table IV)."""
    if reference_size == 0:
        return 1.0
    return candidate_size / reference_size
