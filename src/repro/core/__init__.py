"""The paper's algorithms: DisMIS, OIMIS, DOIMIS and baselines."""

from repro.core.activation import ActivationStrategy
from repro.core.baselines import (
    DDisMISRecompute,
    DISTRIBUTED_ALGORITHM_NAMES,
    NaiveRecompute,
    make_algorithm,
)
from repro.core.dismis import DisMISProgram, DisMISPregelProgram, DisMISRun, Status, run_dismis
from repro.core.doimis import DOIMISMaintainer
from repro.core.maintainer import MISMaintainer
from repro.core.oimis import (
    OIMISPregelProgram,
    OIMISProgram,
    OIMISRun,
    run_oimis,
    run_oimis_pregel,
)
from repro.core.history_dismis import HistoryDisMIS
from repro.core.weighted import (
    WeightedMISMaintainer,
    WeightedOIMISProgram,
    is_weighted_fixpoint,
    set_weight_of,
    weighted_greedy_mis,
    weighted_precedes,
)
from repro.core.ordering import degree_order, dominated_neighbors, dominating_neighbors, precedes, rank

__all__ = [
    "ActivationStrategy",
    "DDisMISRecompute",
    "DISTRIBUTED_ALGORITHM_NAMES",
    "DOIMISMaintainer",
    "DisMISPregelProgram",
    "DisMISProgram",
    "DisMISRun",
    "HistoryDisMIS",
    "MISMaintainer",
    "NaiveRecompute",
    "OIMISPregelProgram",
    "OIMISProgram",
    "OIMISRun",
    "Status",
    "degree_order",
    "dominated_neighbors",
    "dominating_neighbors",
    "make_algorithm",
    "precedes",
    "rank",
    "run_dismis",
    "run_oimis",
    "WeightedMISMaintainer",
    "WeightedOIMISProgram",
    "is_weighted_fixpoint",
    "set_weight_of",
    "weighted_greedy_mis",
    "weighted_precedes",
    "run_oimis_pregel",
]
