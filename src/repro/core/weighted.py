"""Weighted extension: distributed near-maximum *weight* independent set.

The paper's related work surveys distributed/greedy **maximum weighted
independent set** (MWIS) algorithms (Joo et al., Gu et al.); this module
extends OIMIS/DOIMIS to vertex-weighted graphs the same way the unweighted
algorithm extends Luby's: everything reduces to a *total order*.

Order.  The classic weighted-greedy order (GWMIN, Sakai et al.) processes
vertices by decreasing ``w(u) / (deg(u) + 1)`` — it guarantees a set of
weight at least ``Σ w(u)/(deg(u)+1)``.  We define

    ``u ≺_w v  ⇔  w(u)·(deg(v)+1) > w(v)·(deg(u)+1)``,

with ties broken by higher weight, then lower id — exact integer/rational
arithmetic, no float ratios.  Like the unweighted ``≺``, only *pairwise*
comparisons are ever needed, degrees are current, and the fixpoint

    ``u ∈ M ⇔ no neighbour v ≺_w u with v ∈ M``

is unique, so all the paper's machinery — order-independent convergence,
affected-vertex maintenance (degrees change), selective activation — lifts
verbatim.  A weight change is a new update kind whose affected set is
``{u} ∪ nbr(u)`` (it shifts ``u``'s rank against every neighbour).

Public surface: :func:`weighted_greedy_mis` (serial oracle),
:class:`WeightedOIMISProgram` (the vertex program),
:class:`WeightedMISMaintainer` (dynamic maintenance incl. ``set_weight``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.doimis import DOIMISMaintainer
from repro.core.oimis import OIMISProgram
from repro.errors import VerificationError, WorkloadError
from repro.graph.distributed_graph import DistributedGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import affected_vertices
from repro.pregel.metrics import DEGREE_BYTES, STATUS_BYTES
from repro.pregel.partition import Partitioner
from repro.scaleg.engine import ScaleGContext


def _check_weight(u: int, weight: float) -> None:
    if weight <= 0:
        raise WorkloadError(f"vertex {u}: weights must be positive, got {weight}")


def weighted_precedes(
    graph: DynamicGraph, weights: Dict[int, float], u: int, v: int
) -> bool:
    """``u ≺_w v`` under current degrees (cross-multiplied, no division)."""
    left = weights[u] * (graph.degree(v) + 1)
    right = weights[v] * (graph.degree(u) + 1)
    if left != right:
        return left > right
    if weights[u] != weights[v]:
        return weights[u] > weights[v]
    return u < v


def weighted_greedy_mis(
    graph: DynamicGraph, weights: Dict[int, float]
) -> Set[int]:
    """The ``≺_w`` fixpoint: serial weighted-greedy oracle (GWMIN order)."""
    import functools

    def cmp(u: int, v: int) -> int:
        if u == v:
            return 0
        return -1 if weighted_precedes(graph, weights, u, v) else 1

    order = sorted(graph.vertices(), key=functools.cmp_to_key(cmp))
    selected: Set[int] = set()
    blocked: Set[int] = set()
    for u in order:
        if u in blocked:
            continue
        selected.add(u)
        blocked.update(graph.neighbors(u))
    return selected


def set_weight_of(members: Iterable[int], weights: Dict[int, float]) -> float:
    """Total weight of an independent set."""
    return sum(weights[u] for u in members)


def is_weighted_fixpoint(
    graph: DynamicGraph, weights: Dict[int, float], candidate: Iterable[int]
) -> bool:
    """Local-property check for the weighted fixpoint (cf. Observation 4.1)."""
    members = set(candidate)
    for u in graph.vertices():
        dominated = any(
            v in members and weighted_precedes(graph, weights, v, u)
            for v in graph.neighbors(u)
        )
        if (u in members) == dominated:
            return False
    return True


class WeightedOIMISProgram(OIMISProgram):
    """OIMIS with the weighted order ``≺_w``.

    State stays a single boolean; the weight lives with the vertex record
    (synced to guest copies on weight change like the degree is on edge
    change), so the sync payload gains one weight field.
    """

    def __init__(self, weights: Dict[int, float], strategy=None, full_scan=False):
        from repro.core.activation import ActivationStrategy

        super().__init__(
            strategy=strategy or ActivationStrategy.SAME_STATUS,
            full_scan=full_scan,
        )
        self.weights = weights
        self._rank_cache = None

    def rank_cache(self, graph: DynamicGraph):
        """A cache in GWMIN order: ascending ``(-w/(deg+1), -w, id)``.

        The float ratio linearizes ``≺_w`` well enough to order scans, but
        it can disagree with the exact cross-multiplied comparison under
        rounding — so :meth:`compute` never prefix-breaks on it; an ordering
        error costs extra scans, never correctness.  Weight changes are
        repaired via :meth:`weight_changed`, degree changes automatically.
        """
        cache = self._rank_cache
        if cache is None or cache.graph is not graph:
            if cache is not None:
                cache.graph.detach_rank_cache(cache)
            weights = self.weights

            def key(u: int) -> Tuple[float, float, int]:
                w = weights[u]
                return (-w / (graph.degree(u) + 1), -w, u)

            cache = graph.attach_rank_cache(key)
            self._rank_cache = cache
        return cache

    def weight_changed(self, u: int) -> None:
        """Reposition ``u`` in the attached ``≺_w`` cache after a weight change."""
        if self._rank_cache is not None:
            self._rank_cache.refresh_key(u)

    def _degree_of(self, ctx: ScaleGContext, x: int) -> int:
        """Degree of ``x`` through the context (own record or guest copy)."""
        return ctx.degree() if x == ctx.vertex else ctx.rank_of(x)[0]

    def _precedes(self, ctx: ScaleGContext, v: int, u: int) -> bool:
        """``v ≺_w u`` using guest-local degree + weight records."""
        left = self.weights[v] * (self._degree_of(ctx, u) + 1)
        right = self.weights[u] * (self._degree_of(ctx, v) + 1)
        if left != right:
            return left > right
        if self.weights[v] != self.weights[u]:
            return self.weights[v] > self.weights[u]
        return v < u

    def compute(self, ctx: ScaleGContext) -> None:
        from repro.core.activation import ActivationStrategy

        u = ctx.vertex
        old = ctx.state
        new_in = True
        # ranked = likely-dominating first, so the break fires early; the
        # float cache order is advisory only — the exact _precedes test
        # decides, and no prefix break is taken (see rank_cache docstring)
        for v in ctx.ranked_neighbors():
            ctx.charge(1)
            if self._precedes(ctx, v, u) and ctx.neighbor_state(v):
                new_in = False
                if not self.full_scan:
                    break
        ctx.set_state(new_in)
        if new_in != old:
            if self.strategy is ActivationStrategy.ALL:
                for v in ctx.ranked_neighbors():
                    ctx.activate(v)
                return
            predicate = None
            if self.strategy is ActivationStrategy.SAME_STATUS:
                predicate = lambda src, dst: src == dst  # noqa: E731
            for v in ctx.ranked_neighbors():
                if self._precedes(ctx, u, v):  # u ≺_w v: v ranks lower
                    ctx.activate(v, predicate)

    def sync_bytes(self, state: bool) -> int:
        # status + weight field (degree already ships with graph updates)
        return STATUS_BYTES + DEGREE_BYTES


class WeightedMISMaintainer(DOIMISMaintainer):
    """Dynamic maximum-weight independent set maintenance.

    Supports the full edge/vertex update surface of
    :class:`~repro.core.doimis.DOIMISMaintainer` plus :meth:`set_weight`.
    Unweighted behaviour is recovered with all weights equal... up to the
    tie-break: ``≺_w`` with unit weights orders by *ascending degree* like
    ``≺``, so unit weights reproduce the paper's unweighted sets exactly.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        weights: Optional[Dict[int, float]] = None,
        num_workers: int = 10,
        strategy=None,
        partitioner: Optional[Partitioner] = None,
        keep_records: bool = False,
    ):
        if weights is None:
            weights = {u: 1.0 for u in graph.vertices()}
        for u in graph.vertices():
            if u not in weights:
                raise WorkloadError(f"vertex {u} has no weight")
            _check_weight(u, weights[u])
        self.weights: Dict[int, float] = dict(weights)
        program = WeightedOIMISProgram(self.weights, strategy=strategy)
        super().__init__(
            graph,
            num_workers=num_workers,
            partitioner=partitioner,
            keep_records=keep_records,
            program=program,
        )

    def apply_batch(self, operations) -> None:
        """Edge-update batch; endpoints new to the graph get unit weight."""
        ops = list(operations)
        for op in ops:
            for endpoint in (getattr(op, "u", None), getattr(op, "v", None)):
                if isinstance(endpoint, int):
                    self.weights.setdefault(endpoint, 1.0)
        super().apply_batch(ops)

    # -- weighted-specific operations ------------------------------------
    def set_weight(self, u: int, weight: float) -> None:
        """Change ``u``'s weight and restore the weighted fixpoint.

        Affected vertices are ``u`` and its neighbours (the rank of ``u``
        against each neighbour may flip); the new weight is synced to
        ``u``'s guest copies like a degree change.
        """
        _check_weight(u, weight)
        if not self._dgraph.has_vertex(u):
            raise WorkloadError(f"vertex {u} does not exist")
        if self.weights.get(u) == weight:
            return
        self.weights[u] = weight
        self._program.weight_changed(u)
        self._engine.charge_graph_update(
            [u], (), self._program, self._states, self.update_metrics
        )
        affected = affected_vertices(self.graph, {u})
        self._engine.run(
            self._program,
            initial_active=affected,
            states=self._states,
            metrics=self.update_metrics,
            keep_records=self._keep_records,
        )
        self.updates_applied += 1

    def weight_of_set(self) -> float:
        """Total weight of the maintained independent set."""
        return set_weight_of(self.independent_set(), self.weights)

    def insert_vertex(self, u: int, neighbors: Iterable[int] = (),
                      weight: float = 1.0) -> None:
        """Insert a weighted vertex (defaults to unit weight)."""
        _check_weight(u, weight)
        self.weights[u] = weight
        super().insert_vertex(u, neighbors)

    def delete_vertex(self, u: int) -> None:
        super().delete_vertex(u)
        self.weights.pop(u, None)

    def verify(self) -> None:
        """Assert the maintained set is the ``≺_w`` fixpoint."""
        members = self.independent_set()
        if not is_weighted_fixpoint(self.graph, self.weights, members):
            expected = weighted_greedy_mis(self.graph, self.weights)
            raise VerificationError(
                "weighted fixpoint violated: "
                f"|got|={len(members)} (w={set_weight_of(members, self.weights):.3f}) "
                f"|expected|={len(expected)} "
                f"(w={set_weight_of(expected, self.weights):.3f})"
            )
