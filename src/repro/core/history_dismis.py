"""HistoryDisMIS — the paper's Section III strawman, made executable.

Before introducing OIMIS, the paper sketches the "intuitive" way to make
DisMIS dynamic: *keep all intermediate per-superstep state* of the last
execution, and on an update replay the rounds, recomputing only vertices
whose inputs changed while unaffected vertices answer from the stored
history.  The paper dismisses it on two grounds — the side information
costs ``O(m · k)`` (edges x supersteps), and the replay still runs at least
as many supersteps as static DisMIS — and those two defects are exactly
what OIMIS's order independence removes.

This module implements that strawman faithfully enough to measure it:

- the full DisMIS **round timeline** is materialized per vertex
  (``exit_round``, ``exit_kind``: when and how it left ``Unknown``);
- an update dirties the affected vertices (Definition 4.1's set) and
  replays rounds in order; a dirty vertex is re-classified each round
  against neighbours' timelines (stored for clean vertices, live for dirty
  ones); a vertex whose new status diverges from its recorded one dirties
  its still-undecided neighbours from the next round on;
- supersteps are charged for the **whole round structure** (3 per round
  + init), because the replay cannot skip rounds — the order dependency the
  paper calls out;
- the modelled history footprint is ``O(m · k)`` bytes and is exposed as
  :attr:`HistoryDisMIS.history_memory_mb`.

The maintained set is provably the same fixpoint as everything else, so
the class also serves as yet another independent implementation to check
OIMIS/DOIMIS against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.dismis import Status
from repro.errors import SuperstepLimitExceeded, WorkloadError
from repro.graph.distributed_graph import DistributedGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import EdgeDeletion, EdgeInsertion, EdgeUpdate, affected_vertices
from repro.pregel.metrics import (
    DEGREE_BYTES,
    MESSAGE_OVERHEAD_BYTES,
    STATUS_BYTES,
    VERTEX_ID_BYTES,
    RunMetrics,
)
from repro.pregel.partition import HashPartitioner, Partitioner

#: sentinel exit round for vertices still Unknown (never happens post-run)
_NEVER = 1 << 30


class HistoryDisMIS:
    """Dynamic DisMIS via full-history replay (the Section III strawman)."""

    def __init__(
        self,
        graph: DynamicGraph,
        num_workers: int = 10,
        partitioner: Optional[Partitioner] = None,
    ):
        self._dgraph = DistributedGraph(
            graph, partitioner or HashPartitioner(num_workers)
        )
        self.init_metrics = RunMetrics(num_workers=num_workers)
        self.update_metrics = RunMetrics(num_workers=num_workers)
        self.updates_applied = 0
        self.batches_applied = 0
        # timeline records: vertex -> (exit_round, exit_kind)
        self._exit: Dict[int, Tuple[int, Status]] = {}
        self._rounds = 0
        self._full_run(self.init_metrics)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        return self._dgraph.graph

    def independent_set(self) -> Set[int]:
        return {u for u, (_, kind) in self._exit.items() if kind == Status.IN}

    def __len__(self) -> int:
        return sum(1 for _, kind in self._exit.values() if kind == Status.IN)

    @property
    def rounds(self) -> int:
        """Rounds of the recorded execution (k/3 of the paper's supersteps)."""
        return self._rounds

    @property
    def history_memory_mb(self) -> float:
        """Modelled ``O(m · k)`` footprint of the stored intermediate state.

        Per round, every edge's message (id + status + info) and every
        vertex's status snapshot are retained so any round can be replayed.
        """
        graph = self.graph
        per_round = graph.num_edges * (
            VERTEX_ID_BYTES + STATUS_BYTES + DEGREE_BYTES
        ) + graph.num_vertices * STATUS_BYTES
        return per_round * max(self._rounds, 1) / (1024.0 * 1024.0)

    # ------------------------------------------------------------------
    # full (static) execution: round-level simulation of Algorithm 1
    # ------------------------------------------------------------------
    def _full_run(self, metrics: RunMetrics) -> None:
        graph = self.graph
        rank = {u: (graph.degree(u), u) for u in graph.vertices()}
        unknown: Set[int] = set(graph.vertices())
        exit_record: Dict[int, Tuple[int, Status]] = {}
        round_no = 0
        while unknown:
            round_no += 1
            if round_no > graph.num_vertices + 1:
                raise SuperstepLimitExceeded(round_no)
            selected = {
                u
                for u in unknown
                if not any(
                    v in unknown and rank[v] < rank[u]
                    for v in graph.neighbors(u)
                )
            }
            for u in sorted(selected):
                exit_record[u] = (round_no, Status.IN)
            killed = {
                u
                for u in unknown - selected
                if any(v in selected for v in graph.neighbors(u))
            }
            for u in sorted(killed):
                exit_record[u] = (round_no, Status.NOTIN)
            metrics.active_vertices += len(unknown)
            metrics.compute_work += sum(graph.degree(u) for u in unknown)
            unknown -= selected | killed
        self._exit = exit_record
        self._rounds = round_no
        metrics.supersteps += 3 * round_no + 1
        self._charge_history_sync(metrics, graph.vertices(), round_no)
        metrics.observe_memory({0: int(self.history_memory_mb * 1024 * 1024)})

    def _charge_history_sync(self, metrics: RunMetrics, vertices: Iterable[int],
                             rounds: int) -> None:
        """Each listed vertex re-announces (id, status, info) once per round
        to each machine holding a guest copy — the replay's traffic."""
        payload = MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES + STATUS_BYTES + DEGREE_BYTES
        for u in vertices:
            copies = len(self._dgraph.guest_machines(u))
            metrics.bytes_sent += copies * payload * max(rounds, 1)
            metrics.remote_messages += copies * max(rounds, 1)

    # ------------------------------------------------------------------
    # incremental replay
    # ------------------------------------------------------------------
    def apply_batch(self, operations: Sequence[EdgeUpdate]) -> None:
        ops: List[EdgeUpdate] = list(operations)
        if not ops:
            return
        graph = self.graph
        touched: Set[int] = set()
        for op in ops:
            if isinstance(op, EdgeInsertion):
                self._dgraph.add_edge(op.u, op.v)
            elif isinstance(op, EdgeDeletion):
                self._dgraph.remove_edge(op.u, op.v)
            else:
                raise WorkloadError(f"unsupported operation {op!r}")
            touched.add(op.u)
            touched.add(op.v)
        for u in sorted(touched):
            if graph.has_vertex(u) and u not in self._exit:
                self._exit[u] = (_NEVER, Status.UNKNOWN)  # brand-new vertex
        self._replay(affected_vertices(graph, touched), self.update_metrics)
        self.updates_applied += len(ops)
        self.batches_applied += 1

    def apply_stream(self, operations: Iterable[EdgeUpdate], batch_size: int = 1) -> None:
        pending: List[EdgeUpdate] = []
        for op in operations:
            pending.append(op)
            if len(pending) >= batch_size:
                self.apply_batch(pending)
                pending = []
        if pending:
            self.apply_batch(pending)

    def _replay(self, seeds: Set[int], metrics: RunMetrics) -> None:
        """Incremental round replay against the stored timelines.

        A *dirty* vertex is re-classified live; a clean vertex answers from
        its record.  Divergence handling is the delicate part: within one
        round, the deletion superstep reads that round's selections, so a
        status change at the *end* of round ``r`` invalidates same-round
        ``NotIn`` decisions of clean neighbours — those must be re-checked
        inline (with cascading), not merely woken for round ``r + 1``;
        clean ``In`` decisions of round ``r`` stand because selection reads
        start-of-round state only.
        """
        graph = self.graph
        rank = {u: (graph.degree(u), u) for u in graph.vertices()}
        old_exit = dict(self._exit)

        def old_status_after(u: int, round_no: int) -> Status:
            exit_round, kind = old_exit[u]
            return kind if exit_round <= round_no else Status.UNKNOWN

        # dirty vertices carry a live replay status; seeds' inputs changed
        # (degrees / incident edges), so their whole timeline restarts
        status: Dict[int, Status] = {u: Status.UNKNOWN for u in seeds}
        new_exit: Dict[int, Tuple[int, Status]] = {}

        round_no = 0
        limit = graph.num_vertices + self._rounds + 2
        max_round_seen = 0
        while any(s == Status.UNKNOWN for s in status.values()):
            round_no += 1
            if round_no > limit:
                raise SuperstepLimitExceeded(limit)

            def unknown_at_start(v: int) -> bool:
                if v in status:
                    return status[v] == Status.UNKNOWN
                return old_exit[v][0] >= round_no

            def in_by(v: int) -> bool:
                if v in status:
                    return status[v] == Status.IN
                exit_round, kind = old_exit[v]
                return kind == Status.IN and exit_round <= round_no

            dirty_unknown = sorted(
                u for u, s in status.items() if s == Status.UNKNOWN
            )
            metrics.active_vertices += len(dirty_unknown)

            # selection superstep — evaluated against the start-of-round
            # snapshot, then applied (BSP semantics)
            newly_selected: List[int] = []
            for u in dirty_unknown:
                metrics.compute_work += graph.degree(u)
                if not any(
                    unknown_at_start(v) and rank[v] < rank[u]
                    for v in graph.neighbors(u)
                ):
                    newly_selected.append(u)
            for u in newly_selected:
                status[u] = Status.IN
                new_exit[u] = (round_no, Status.IN)

            # deletion superstep (reads this round's selections)
            for u in dirty_unknown:
                if status[u] != Status.UNKNOWN:
                    continue
                metrics.compute_work += graph.degree(u)
                if any(in_by(v) for v in graph.neighbors(u)):
                    status[u] = Status.NOTIN
                    new_exit[u] = (round_no, Status.NOTIN)

            # divergence propagation with same-round kill re-checks
            queue = [
                u for u in sorted(status)
                if status[u] != old_status_after(u, round_no)
            ]
            seen_in_queue = set(queue)
            while queue:
                u = queue.pop(0)
                for v in sorted(graph.neighbors(u)):
                    if v in status:
                        continue
                    exit_round, kind = old_exit[v]
                    if exit_round < round_no:
                        continue  # decided strictly earlier: inputs unchanged
                    if exit_round == round_no and kind == Status.IN:
                        # selection reads start-of-round state only: stands
                        # (and no neighbour can newly join In this round — two
                        # adjacent same-round selections contradict the total
                        # order)
                        continue
                    # v was Unknown at the start of this round in both
                    # executions; re-run its round-``round_no`` deletion
                    # against the *new* selections
                    metrics.compute_work += graph.degree(v)
                    killed_now = any(in_by(w) for w in graph.neighbors(v))
                    was_notin = exit_round == round_no  # old end-of-round kill
                    if killed_now:
                        status[v] = Status.NOTIN
                        new_exit[v] = (round_no, Status.NOTIN)
                    else:
                        status[v] = Status.UNKNOWN
                    if killed_now != was_notin and v not in seen_in_queue:
                        # v's end-of-round status diverged: cascade
                        queue.append(v)
                        seen_in_queue.add(v)
            max_round_seen = round_no

        # merge the replay's timelines into the records
        for u, record in new_exit.items():
            self._exit[u] = record
        self._rounds = max(
            (r for r, _ in self._exit.values() if r != _NEVER), default=0
        )

        # cost accounting: the replay walks the full round structure
        metrics.supersteps += 3 * max(self._rounds, 1) + 1
        self._charge_history_sync(metrics, sorted(status), max(max_round_seen, 1))
        metrics.observe_memory({0: int(self.history_memory_mb * 1024 * 1024)})
