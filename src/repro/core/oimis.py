"""OIMIS — Order-Independent MIS computation (Algorithm 2).

Every vertex carries one boolean ``in``.  An active vertex re-derives::

    in(u) = not exists v in nbr(u): v ≺ u and in(v)

against the previous superstep's states, and on change activates neighbours
per the configured :class:`~repro.core.activation.ActivationStrategy`.  The
run converges to the unique fixpoint of the degree-order greedy MIS —
exactly DisMIS's result (Theorem 4.1) — in at most as many supersteps as
DisMIS, independent of initial states.

Two implementations are provided:

- :class:`OIMISProgram` — the primary one, on the ScaleG engine, where
  neighbour states are local guest-copy reads and a changed vertex syncs
  once per machine.  This is what the paper deploys and what the dynamic
  algorithm (:mod:`repro.core.doimis`) resumes.
- :class:`OIMISPregelProgram` — a classic message-passing variant for
  cross-engine validation: each vertex caches neighbour ``(degree, in)``
  pairs from broadcasts.  Static graphs only (the cache does not track
  degree changes).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.core.activation import ActivationStrategy, activation_requests
from repro.graph.distributed_graph import DistributedGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.pregel.engine import PregelContext, PregelEngine, PregelProgram
from repro.pregel.metrics import DEGREE_BYTES, STATUS_BYTES, VERTEX_ID_BYTES, RunMetrics
from repro.pregel.partition import HashPartitioner
from repro.runtime.base import ExecutionBackend
from repro.scaleg.engine import ScaleGContext, ScaleGEngine, ScaleGProgram


class OIMISProgram(ScaleGProgram):
    """Algorithm 2 as a ScaleG vertex program.

    State is a plain ``bool`` (``u.in``).  ``strategy`` selects the
    activation filter of Section V; ``full_scan=True`` disables the early
    ``break`` of Algorithm 2 lines 6-8, which turns the program into the
    paper's ``SCALL`` baseline (identical results and communication, more
    neighbour scans).
    """

    def __init__(
        self,
        strategy: ActivationStrategy = ActivationStrategy.ALL,
        full_scan: bool = False,
    ):
        self.strategy = strategy
        self.full_scan = full_scan

    def initial_state(self, dgraph: DistributedGraph, u: int) -> bool:
        # Algorithm 2 line 2: u.in <- true.  (Theorem 4.2's order-independence
        # means any initialization converges to the same fixpoint; tests
        # exercise adversarial initializations too.)
        return True

    def compute(self, ctx: ScaleGContext) -> None:
        old = ctx.state
        new_in = True
        my_rank = (ctx.degree(), ctx.vertex)
        if self.full_scan:
            # SCALL: examine every neighbour (same full cost in any order)
            for v in ctx.ranked_neighbors():
                ctx.charge(1)  # rank comparison against the guest record
                if ctx.rank_of(v) < my_rank and ctx.neighbor_state(v):
                    new_in = False
        else:
            # Rank-ordered scan: dominating candidates form a prefix, so the
            # early break of Algorithm 2 fires at the first in-set neighbour
            # — and the whole scan stops once nothing can precede u.
            for v in ctx.ranked_neighbors():
                ctx.charge(1)  # rank comparison against the guest record
                if ctx.rank_of(v) > my_rank:
                    break
                if ctx.neighbor_state(v):
                    new_in = False
                    break
        ctx.set_state(new_in)
        if new_in != old:
            for v, predicate in activation_requests(ctx, self.strategy):
                ctx.activate(v, predicate)

    def sync_bytes(self, state: bool) -> int:
        # one boolean status per sync (the paper: "vertices only have two
        # status to synced")
        return STATUS_BYTES

    def state_bytes(self, state: bool) -> int:
        return STATUS_BYTES

    def uniform_state_bytes(self) -> int:
        return STATUS_BYTES

    def csr_kernel(self):
        from repro.graph.csr import OIMISKernel, numpy_available

        if not numpy_available():  # pragma: no cover - numpy-less installs
            return None
        return OIMISKernel(self.strategy, self.full_scan)

    def contract_members(self, states: Dict[int, bool]) -> Set[int]:
        return independent_set_from_states(states)


class OIMISPregelProgram(PregelProgram):
    """Message-passing OIMIS for cross-engine validation (static graphs).

    Vertex state is ``{"in": bool, "nbr": {v: (deg_v, in_v)}}``.  Superstep 0
    broadcasts ``(id, degree, True)``; later supersteps fold received
    broadcasts into the cache, recompute ``in``, and re-broadcast on change.
    """

    _BCAST_BYTES = VERTEX_ID_BYTES + DEGREE_BYTES + STATUS_BYTES

    def initial_state(self, dgraph: DistributedGraph, u: int) -> Dict[str, Any]:
        return {"in": True, "nbr": {}}

    def compute(self, ctx: PregelContext) -> None:
        state = dict(ctx.state)
        cache = dict(state["nbr"])
        if ctx.superstep == 0:
            ctx.broadcast((ctx.vertex, ctx.degree(), True), self._BCAST_BYTES)
            ctx.set_state({"in": True, "nbr": cache})
            return
        for v, deg_v, in_v in ctx.messages:
            cache[v] = (deg_v, in_v)
            ctx.charge(1)
        my_rank = (ctx.degree(), ctx.vertex)
        new_in = True
        # rank-ordered scan (the ScaleG variant reads this order straight
        # from the cached adjacency; here the per-vertex broadcast cache is
        # state-local, so it is ordered on the fly)
        for v, (deg_v, in_v) in sorted(
            cache.items(), key=lambda item: (item[1][0], item[0])
        ):
            ctx.charge(1)
            if (deg_v, v) > my_rank:
                break
            if in_v:
                new_in = False
                break
        changed = new_in != state["in"]
        ctx.set_state({"in": new_in, "nbr": cache})
        if changed:
            ctx.broadcast((ctx.vertex, ctx.degree(), new_in), self._BCAST_BYTES)

    def state_bytes(self, state: Dict[str, Any]) -> int:
        # the neighbour cache mirrors what ScaleG keeps as guest copies
        return STATUS_BYTES + len(state["nbr"]) * (
            VERTEX_ID_BYTES + DEGREE_BYTES + STATUS_BYTES
        )

    def contract_members(self, states: Dict[int, Dict[str, Any]]) -> Set[int]:
        return {u for u, s in states.items() if s["in"]}


def independent_set_from_states(states: Dict[int, bool]) -> Set[int]:
    """Extract ``{u | u.in}`` from an OIMIS state map."""
    return {u for u, in_set in states.items() if in_set}


def run_oimis(
    graph: DynamicGraph,
    num_workers: int = 10,
    strategy: ActivationStrategy = ActivationStrategy.ALL,
    partitioner=None,
    metrics: Optional[RunMetrics] = None,
    initial_states: Optional[Dict[int, bool]] = None,
    runtime=None,
    representation=None,
) -> "OIMISRun":
    """Compute the independent set of a static graph with OIMIS on ScaleG.

    Returns an :class:`OIMISRun` with the set, the raw states (reusable for
    dynamic maintenance), and the run metrics.  ``runtime`` selects the
    execution backend (``None``/``"inline"``, ``"process"``, or an
    :class:`~repro.runtime.base.ExecutionBackend`); a string-selected
    process runtime is closed before returning, a backend instance stays
    owned by the caller.  ``representation`` selects the partition layout
    (``"dict"``/``"csr"``, see :class:`~repro.scaleg.engine.ScaleGEngine`).
    """
    dgraph = DistributedGraph(
        graph, partitioner or HashPartitioner(num_workers)
    )
    engine = ScaleGEngine(dgraph, runtime=runtime,
                          representation=representation)
    program = OIMISProgram(strategy=strategy)
    states = dict(initial_states) if initial_states is not None else None
    try:
        result = engine.run(program, states=states, metrics=metrics)
    finally:
        if not isinstance(runtime, ExecutionBackend):
            engine.close()
    return OIMISRun(
        independent_set=independent_set_from_states(result.states),
        states=result.states,
        metrics=result.metrics,
    )


def run_oimis_pregel(
    graph: DynamicGraph,
    num_workers: int = 10,
    partitioner=None,
    metrics: Optional[RunMetrics] = None,
    runtime=None,
    representation=None,
) -> "OIMISRun":
    """Compute the independent set with the message-passing variant.

    ``representation`` is accepted for engine parity; the message-passing
    variant keeps per-vertex dict states (the broadcast cache), so it
    validates the flag and stays on the dict hot path.
    """
    dgraph = DistributedGraph(
        graph, partitioner or HashPartitioner(num_workers)
    )
    engine = PregelEngine(dgraph, runtime=runtime,
                          representation=representation)
    try:
        result = engine.run(OIMISPregelProgram(), metrics=metrics)
    finally:
        if not isinstance(runtime, ExecutionBackend):
            engine.close()
    states = {u: s["in"] for u, s in result.states.items()}
    return OIMISRun(
        independent_set=independent_set_from_states(states),
        states=states,
        metrics=result.metrics,
    )


class OIMISRun:
    """Outcome of a static OIMIS computation."""

    def __init__(self, independent_set: Set[int], states: Dict[int, bool],
                 metrics: RunMetrics):
        self.independent_set = independent_set
        self.states = states
        self.metrics = metrics

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OIMISRun(|MIS|={len(self.independent_set)}, "
            f"supersteps={self.metrics.supersteps})"
        )
