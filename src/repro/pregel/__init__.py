"""Classic message-passing Pregel runtime (simulated BSP cluster)."""

from repro.pregel.engine import PregelContext, PregelEngine, PregelProgram, PregelResult
from repro.pregel.library import (
    BFSProgram,
    ConnectedComponentsProgram,
    DegreeStatsProgram,
    PageRankProgram,
    bfs_distances,
    component_members,
    connected_components,
    degree_stats,
    pagerank,
)
from repro.pregel.message import Message
from repro.pregel.metrics import RunMetrics, SuperstepRecord
from repro.pregel.partition import (
    ExplicitPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    balanced_partition,
)

__all__ = [
    "BFSProgram",
    "ConnectedComponentsProgram",
    "DegreeStatsProgram",
    "ExplicitPartitioner",
    "PageRankProgram",
    "bfs_distances",
    "component_members",
    "connected_components",
    "degree_stats",
    "pagerank",
    "HashPartitioner",
    "Message",
    "Partitioner",
    "PregelContext",
    "PregelEngine",
    "PregelProgram",
    "PregelResult",
    "RangePartitioner",
    "RunMetrics",
    "SuperstepRecord",
    "balanced_partition",
]
