"""Classic message-passing Pregel engine (simulated BSP cluster).

One process simulates ``W`` workers executing Bulk-Synchronous-Parallel
supersteps.  Semantics follow Malewicz et al.:

- A vertex is *active* in superstep ``s+1`` iff it received a message sent
  during superstep ``s`` (or superstep 0, where a caller-selected set — by
  default every vertex — is active).
- ``compute`` sees the messages addressed to the vertex and may send
  messages (delivered next superstep) and update the vertex's state.
- The run terminates when no messages are in flight and no vertex is active.

Costs: messages whose source and destination live on different workers are
charged to the communication meter (framing + payload bytes, after the
optional combiner); worker-local messages are free on the wire but still
counted.  Compute work is whatever the program charges via
:meth:`PregelContext.charge` (the MIS programs charge one unit per neighbour
examined).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.errors import (
    SuperstepLimitExceeded,
    SyncRetryExhausted,
    WorkerFailure,
    WorkerLoss,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.distributed_graph import DistributedGraph
from repro.pregel.aggregator import Aggregator, AggregatorRegistry
from repro.pregel.combiner import Combiner
from repro.pregel.message import Message
from repro.pregel.metrics import RunMetrics, SuperstepRecord


class PregelProgram(ABC):
    """A vertex program for the message-passing engine."""

    @abstractmethod
    def initial_state(self, dgraph: "DistributedGraph", u: int) -> Any:
        """The state of vertex ``u`` before superstep 0."""

    @abstractmethod
    def compute(self, ctx: "PregelContext") -> None:
        """One vertex's superstep: read ``ctx.messages``, send, set state."""

    def state_bytes(self, state: Any) -> int:
        """Modelled resident size of a vertex state (memory meter)."""
        return 8

    def aggregators(self) -> Dict[str, Aggregator]:
        """Aggregators this program uses (empty by default)."""
        return {}

    def combiner(self) -> Optional[Combiner]:
        """Optional message combiner applied per (worker, destination)."""
        return None

    def contract_members(self, states: Dict[int, Any]) -> Optional[Set[int]]:
        """Members of the independent set this program maintains, or ``None``.

        Programs that compute an independent set override this so the
        runtime contract checker (:mod:`repro.analysis.runtime`) can assert
        independence + maximality at convergence; ``None`` (the default)
        skips the convergence contract.
        """
        return None


class PregelContext:
    """Per-vertex view handed to :meth:`PregelProgram.compute`."""

    __slots__ = (
        "_engine", "vertex", "superstep", "messages", "_state", "_new_state",
        "_changed", "_work",
    )

    def __init__(self, engine: "PregelEngine", vertex: int, superstep: int,
                 messages: List[Any], state: Any):
        self._engine = engine
        self.vertex = vertex
        self.superstep = superstep
        #: payloads of messages received this superstep
        self.messages = messages
        self._state = state
        self._new_state = state
        self._changed = False
        self._work = 0

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> Any:
        """Current state (new value if already set this superstep)."""
        return self._new_state

    def set_state(self, new_state: Any) -> None:
        """Replace the vertex state; change detection is by ``!=``."""
        self._new_state = new_state
        self._changed = new_state != self._state

    # -- topology ------------------------------------------------------
    def neighbors(self) -> Set[int]:
        """This vertex's neighbour ids (local adjacency)."""
        return self._engine.dgraph.neighbors(self.vertex)

    def degree(self) -> int:
        return self._engine.dgraph.degree(self.vertex)

    @property
    def num_vertices(self) -> int:
        return self._engine.dgraph.graph.num_vertices

    # -- messaging -----------------------------------------------------
    def send(self, dest: int, payload: Any, payload_bytes: int) -> None:
        """Send a message to ``dest`` (delivered and activates next superstep)."""
        self._engine._outbox.append(
            Message(self.vertex, dest, payload, payload_bytes)
        )

    def broadcast(self, payload: Any, payload_bytes: int) -> None:
        """Send the same message to every neighbour (in id order, so the
        outbox — and everything downstream of it: combiner grouping, inbox
        payload order — is independent of set-iteration order)."""
        for v in sorted(self.neighbors()):
            self.send(v, payload, payload_bytes)

    # -- bookkeeping ---------------------------------------------------
    def charge(self, work: int = 1) -> None:
        """Account ``work`` compute units (e.g. neighbour comparisons)."""
        self._work += work

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute to a named aggregator (visible next superstep)."""
        self._engine._aggregators.contribute(name, value)

    def aggregated(self, name: str) -> Any:
        """Read last superstep's reduced aggregator value."""
        return self._engine._aggregators.previous(name)


@dataclass
class PregelResult:
    """Final vertex states plus the run's metrics."""

    states: Dict[int, Any]
    metrics: RunMetrics
    aggregates: Dict[str, Any] = field(default_factory=dict)


class PregelEngine:
    """Executes a :class:`PregelProgram` over a :class:`DistributedGraph`."""

    def __init__(self, dgraph: "DistributedGraph", contracts=None, faults=None,
                 membership=None, runtime=None, sanitize=None,
                 representation=None):
        """``contracts``: ``None`` defers to the ``REPRO_CONTRACTS`` env
        flag, ``True``/``False`` force runtime contract checking on/off, or
        pass a :class:`~repro.analysis.runtime.ContractChecker` directly.
        ``faults``: a :class:`~repro.faults.plan.FaultPlan` or
        :class:`~repro.faults.injector.FaultInjector` enabling seeded fault
        injection + recovery; ``None`` (or an empty plan) leaves the run
        loop exactly as in the fault-free build.
        ``membership``: a :class:`~repro.faults.membership.MembershipConfig`
        or :class:`~repro.faults.membership.FailoverCoordinator` enabling
        permanent-loss failover (degraded: no guest copies exist here, so
        lost partitions reload from the barrier checkpoint); ``None``
        auto-attaches a default coordinator when the plan schedules
        losses.
        ``runtime``: execution backend for the compute sweep — ``None`` /
        ``"inline"`` (serial, the default), ``"process"``, or an
        :class:`~repro.runtime.base.ExecutionBackend` instance.
        ``sanitize``: ``None`` defers to the ``REPRO_SANITIZE`` env flag,
        ``True``/``False`` force the superstep race sanitizer on/off, or
        pass a :class:`~repro.analysis.parallel.RaceSanitizer` directly.
        ``representation``: accepted (and validated) for parity with
        :class:`~repro.scaleg.engine.ScaleGEngine`; the Pregel message
        discipline keeps per-vertex message payloads and arbitrary state
        dicts, so ``"csr"`` currently documents intent only — the sweep
        stays on the dict reference path."""
        from repro.analysis.parallel.sanitizer import resolve_sanitizer
        from repro.analysis.runtime import resolve_contracts
        from repro.faults.injector import resolve_faults
        from repro.faults.membership import resolve_membership
        from repro.graph.csr import resolve_representation
        from repro.runtime import resolve_runtime

        self.dgraph = dgraph
        self._representation = resolve_representation(representation)
        self._outbox: List[Message] = []
        self._aggregators = AggregatorRegistry()
        self._contracts = resolve_contracts(contracts)
        self._faults = resolve_faults(faults)
        self._membership = membership
        self._failover = resolve_membership(membership, self._faults, dgraph)
        self._sanitizer = resolve_sanitizer(sanitize)
        backend = resolve_runtime(runtime)
        if self._sanitizer is not None:
            backend = self._sanitizer.wrap(backend)
        self._runtime = backend

    @property
    def failover(self):
        """The attached failover coordinator (``None`` when neither the
        fault plan nor the caller asked for membership tracking)."""
        return self._failover

    @property
    def runtime(self):
        """The execution backend driving this engine's compute sweeps."""
        return self._runtime

    @property
    def sanitizer(self):
        """The attached race sanitizer (``None`` when sanitizing is off)."""
        return self._sanitizer

    def close(self) -> None:
        """Release the execution backend's resources (worker processes)."""
        self._runtime.close()

    def run(
        self,
        program: PregelProgram,
        initial_active: Optional[Iterable[int]] = None,
        max_supersteps: Optional[int] = None,
        states: Optional[Dict[int, Any]] = None,
        metrics: Optional[RunMetrics] = None,
        keep_records: bool = True,
        faults=None,
    ) -> PregelResult:
        """Run ``program`` to quiescence and return states + metrics.

        ``initial_active`` defaults to all vertices (static computation);
        dynamic callers pass the affected set.  ``states`` lets a caller
        resume from previously computed states (dynamic maintenance);
        otherwise states come from :meth:`PregelProgram.initial_state`.
        ``metrics`` lets a caller accumulate several runs — possibly across
        engines — into one shared meter (matching
        :meth:`~repro.scaleg.engine.ScaleGEngine.run`): counters add up and
        ``wall_time_s`` accumulates instead of being overwritten.
        ``keep_records`` retains per-superstep records on the meter.

        ``faults`` overrides the engine's fault injector for this run.

        Raises :class:`SuperstepLimitExceeded` if the program does not
        converge within ``max_supersteps`` (default ``4n + 16``, safely above
        the paper's ``O(n)`` bound).

        Exception safety: if the run raises, every entry of ``states`` is
        restored to its value at run entry — no partially converged
        superstep leaks into a caller's resumed states.
        """
        from repro.faults.injector import resolve_faults

        graph = self.dgraph.graph
        if metrics is None:
            metrics = RunMetrics(num_workers=self.dgraph.num_workers)
        started = time.perf_counter()

        if states is None:
            states = {
                u: program.initial_state(self.dgraph, u) for u in graph.vertices()
            }
        if max_supersteps is None:
            max_supersteps = 4 * max(graph.num_vertices, 1) + 16

        self._aggregators = AggregatorRegistry(program.aggregators())
        combiner = program.combiner()

        if initial_active is None:
            active: List[int] = graph.sorted_vertices()
        else:
            active = sorted({u for u in initial_active if graph.has_vertex(u)})
        if faults is not None:
            injector = resolve_faults(faults)
            failover = self._failover
            if failover is None:
                from repro.faults.membership import resolve_membership

                failover = resolve_membership(
                    self._membership, injector, self.dgraph
                )
        else:
            injector = self._faults
            failover = self._failover
        if injector is not None:
            injector.begin_run()

        runtime = self._runtime
        runtime.bind(self)
        runtime.begin_run(program, states)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.begin_engine_run(metrics, self.dgraph.num_workers)

        inbox: Dict[int, List[Any]] = {}
        #: wire bytes delivered per destination last superstep — the cost of
        #: re-fetching a crashed worker's inbox from the senders' logs
        inbox_bytes: Dict[int, int] = {}
        superstep = 0
        took_snapshot = False
        #: run-entry values of every state this run overwrote, restored if
        #: the run raises (exception safety for resumed maintenance states)
        dirty: Dict[int, Any] = {}
        try:
            while active or inbox:
                if superstep >= max_supersteps:
                    raise SuperstepLimitExceeded(max_supersteps)
                record = SuperstepRecord(superstep=superstep)
                record.worker_work = [0] * self.dgraph.num_workers
                self._outbox = []
                new_states: Dict[int, Any] = {}

                checkpoint = None
                draws = None
                if injector is not None:
                    from repro.faults.recovery import SuperstepCheckpoint

                    checkpoint = SuperstepCheckpoint.capture(
                        superstep, states, active
                    )
                    draws = runtime.predraw(
                        injector, superstep, self.dgraph.num_workers
                    )

                if self._contracts is not None:
                    self._contracts.begin_superstep(superstep, active, states)

                try:
                    sweep = runtime.sweep_pregel(
                        states, active, superstep, inbox, draws
                    )
                    new_states = sweep.new_states
                    record.active_vertices = len(active)
                    record.compute_work = sweep.compute_work
                    record.worker_work = sweep.worker_work
                    record.state_changes = len(new_states)
                    if draws is not None and sweep.fault_echo != draws.echo():
                        from repro.errors import ParallelRuntimeError

                        raise ParallelRuntimeError(
                            f"superstep {superstep}: worker fault echo "
                            f"{sweep.fault_echo!r} does not match the "
                            f"pre-drawn schedule {draws.echo()!r}"
                        )

                    if injector is not None:
                        if failover is not None:
                            failover.view.advance()
                        # -- worker sweep: straggler delays (modelled time)
                        if draws is None:
                            delays = [
                                injector.straggler_delay(superstep, w)
                                for w in range(self.dgraph.num_workers)
                            ]
                        else:
                            delays = draws.delays
                        for w, delay in enumerate(delays):
                            if delay:
                                metrics.merge_delta({
                                    "recovery_straggler_s": delay,
                                    "wall_time_s": delay,
                                })
                            if failover is not None and not failover.is_dead(w):
                                # flagged straggler delays never count
                                # toward suspicion (slow is not dead)
                                failover.view.heartbeat(
                                    w, delay_s=delay, injected=True
                                )
                        # -- barrier: permanent losses (silence, not delay)
                        if draws is None:
                            lost = injector.lost_workers(
                                superstep, range(self.dgraph.num_workers)
                            )
                        else:
                            lost = draws.lost
                        if lost:
                            raise_loss = WorkerLoss(
                                lost[0], superstep,
                                f"{len(lost)} worker(s) declared permanently "
                                "dead at the barrier",
                            )
                            raise_loss.workers = lost
                            raise raise_loss
                        # -- barrier commit: crash detection
                        if draws is None:
                            crashed = injector.crashed_workers(
                                superstep, range(self.dgraph.num_workers)
                            )
                        else:
                            crashed = draws.crashed
                        if crashed:
                            failure = WorkerFailure(
                                crashed[0], superstep,
                                f"{len(crashed)} worker(s) crashed at the "
                                "barrier",
                            )
                            failure.workers = crashed
                            raise failure
                except SyncRetryExhausted:
                    raise  # unrecoverable: escalate to the caller
                except WorkerLoss as loss:
                    if checkpoint is None or failover is None:
                        raise  # no membership subsystem: unrecoverable
                    # degraded failover: no guest copies to reconstruct
                    # from, so the lost partitions reload from the barrier
                    # checkpoint; the crashed inboxes are re-fetched from
                    # the senders' outbox logs like the transient path.
                    metrics.recovery_replayed_supersteps += 1
                    metrics.recovery_compute_work += record.compute_work
                    lost_set = set(loss.workers or [loss.worker])
                    failover.fail_over_degraded(
                        lost_set, superstep, checkpoint, states, metrics,
                        program.state_bytes,
                    )
                    for dest, payloads in inbox.items():
                        if self.dgraph.worker_of(dest) in lost_set:
                            metrics.recovery_resync_bytes += inbox_bytes.get(
                                dest, 0
                            )
                            metrics.recovery_resync_messages += len(payloads)
                    active = checkpoint.restore(states)
                    self._aggregators.reset_current()
                    continue
                except WorkerFailure as failure:
                    if checkpoint is None:
                        raise  # not injected by us: no checkpoint to replay
                    # rollback-and-replay: nothing committed.  The crashed
                    # workers lost their received messages; re-fetch them
                    # from the senders' outbox logs (charged as resync).
                    crashed_set = set(getattr(failure, "workers",
                                              [failure.worker]))
                    metrics.recovery_crashes += len(crashed_set)
                    metrics.recovery_replayed_supersteps += 1
                    metrics.recovery_compute_work += record.compute_work
                    for dest, payloads in inbox.items():
                        if self.dgraph.worker_of(dest) in crashed_set:
                            metrics.recovery_resync_bytes += inbox_bytes.get(
                                dest, 0
                            )
                            metrics.recovery_resync_messages += len(payloads)
                    active = checkpoint.restore(states)
                    self._aggregators.reset_current()
                    continue

                if self._contracts is not None:
                    self._contracts.at_barrier(superstep, states)
                for u in new_states:
                    if u not in dirty:
                        dirty[u] = states[u]
                states.update(new_states)
                runtime.commit(new_states)

                # --- deliver messages (with combining, cost accounting) ----
                outbox = self._outbox
                if combiner is not None and outbox:
                    outbox = self._apply_combiner(combiner, outbox)
                if injector is not None:
                    permuted = injector.permute(superstep, outbox)
                    if permuted is not outbox:
                        metrics.recovery_reorders += 1
                        outbox = permuted
                inbox = {}
                inbox_bytes = {}
                queue_bytes = 0
                for msg in outbox:
                    if not graph.has_vertex(msg.dest):
                        continue  # racing with vertex deletion: drop
                    wire = msg.wire_bytes()
                    remote = self.dgraph.is_remote_pair(msg.source, msg.dest)
                    if injector is not None and remote:
                        drops = injector.sync_drops(
                            superstep, msg.source, msg.dest
                        )
                        if drops:
                            if drops > injector.max_retries:
                                raise SyncRetryExhausted(
                                    msg.source, msg.dest, drops, superstep
                                )
                            metrics.recovery_sync_retries += drops
                            metrics.recovery_resync_bytes += drops * wire
                            metrics.recovery_resync_messages += drops
                            metrics.recovery_backoff_s += injector.backoff_time(
                                drops
                            )
                        dups = injector.sync_duplicates(
                            superstep, msg.source, msg.dest
                        )
                        if dups:
                            # the receiver deduplicates by (source, seq);
                            # only the wasted wire cost is real
                            metrics.recovery_sync_duplicates += dups
                            metrics.recovery_resync_bytes += dups * wire
                            metrics.recovery_resync_messages += dups
                    record.messages += 1
                    if remote:
                        record.remote_messages += 1
                        record.bytes_sent += wire
                    queue_bytes += wire
                    inbox.setdefault(msg.dest, []).append(msg.payload)
                    if injector is not None:
                        inbox_bytes[msg.dest] = inbox_bytes.get(msg.dest, 0) + wire

                metrics.observe(record, keep_record=keep_records)
                if failover is not None:
                    # voluntary joins/drains due at this barrier — applied
                    # after commit, costs quarantined in rebalance_*
                    failover.barrier_transitions(
                        superstep, states, metrics, program.state_bytes,
                        injector,
                    )
                self._aggregators.roll()
                active = sorted(inbox)
                superstep += 1

                # memory snapshot: structure + in-flight queue
                if superstep == 1 or queue_bytes:
                    per_worker = self._memory_snapshot(program, states, inbox)
                    metrics.observe_memory(per_worker)
                    took_snapshot = True
        except BaseException:
            # leave no partial superstep behind: callers resuming from
            # ``states`` (dynamic maintenance) see their run-entry values
            for u, value in sorted(dirty.items()):
                states[u] = value
            raise
        finally:
            if sanitizer is not None:
                sanitizer.end_engine_run(metrics)

        if self._contracts is not None:
            members = program.contract_members(states)
            if members is not None:
                self._contracts.at_convergence(graph, members)

        # guarantee >= 1 snapshot per run — keyed on this run, not the
        # meter: a shared meter may arrive with a peak from an earlier run
        if not took_snapshot:
            metrics.observe_memory(self._memory_snapshot(program, states, {}))
        metrics.wall_time_s += time.perf_counter() - started
        aggregates = {
            name: self._aggregators.previous(name)
            for name in self._aggregators.names()
        }
        return PregelResult(states=states, metrics=metrics, aggregates=aggregates)

    # ------------------------------------------------------------------
    def _apply_combiner(
        self, combiner: Combiner, outbox: List[Message]
    ) -> List[Message]:
        """Combine messages per (sending worker, destination vertex)."""
        groups: Dict[tuple, List[Message]] = {}
        for msg in outbox:
            key = (self.dgraph.worker_of(msg.source), msg.dest)
            groups.setdefault(key, []).append(msg)
        combined: List[Message] = []
        for key in sorted(groups):
            combined.extend(combiner.combine(groups[key]))
        return combined

    def _memory_snapshot(
        self,
        program: PregelProgram,
        states: Dict[int, Any],
        inbox: Dict[int, List[Any]],
    ) -> Dict[int, int]:
        state_bytes = {u: program.state_bytes(s) for u, s in sorted(states.items())}
        per_worker = self.dgraph.structural_memory_bytes(state_bytes)
        for dest, payloads in inbox.items():
            per_worker[self.dgraph.worker_of(dest)] += 16 * len(payloads)
        return per_worker
