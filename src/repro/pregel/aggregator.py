"""Global aggregators (Pregel's reduce-and-broadcast mechanism).

Each superstep, every vertex may contribute a value to a named aggregator;
the engine reduces the contributions and makes the result visible to all
vertices in the *next* superstep.  The MIS programs use a ``SumAggregator``
to expose the remaining ``Unknown`` count (DisMIS termination diagnostics)
and an ``OrAggregator`` to detect "any state changed".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional


class Aggregator(ABC):
    """One named, typed global reducer."""

    @abstractmethod
    def identity(self) -> Any:
        """The neutral element for the reduction."""

    @abstractmethod
    def reduce(self, acc: Any, value: Any) -> Any:
        """Fold one contribution into the accumulator."""


class SumAggregator(Aggregator):
    def identity(self) -> Any:
        return 0

    def reduce(self, acc: Any, value: Any) -> Any:
        return acc + value


class OrAggregator(Aggregator):
    def identity(self) -> Any:
        return False

    def reduce(self, acc: Any, value: Any) -> Any:
        return bool(acc or value)


class AndAggregator(Aggregator):
    def identity(self) -> Any:
        return True

    def reduce(self, acc: Any, value: Any) -> Any:
        return bool(acc and value)


class MinAggregator(Aggregator):
    def identity(self) -> Any:
        return None

    def reduce(self, acc: Any, value: Any) -> Any:
        if acc is None:
            return value
        return value if value < acc else acc


class MaxAggregator(Aggregator):
    def identity(self) -> Any:
        return None

    def reduce(self, acc: Any, value: Any) -> Any:
        if acc is None:
            return value
        return value if value > acc else acc


class AggregatorRegistry:
    """Holds the aggregators for one run and their per-superstep values."""

    def __init__(self, aggregators: Optional[Dict[str, Aggregator]] = None):
        self._aggregators: Dict[str, Aggregator] = dict(aggregators or {})
        self._current: Dict[str, Any] = {
            name: agg.identity() for name, agg in self._aggregators.items()
        }
        self._previous: Dict[str, Any] = dict(self._current)

    def contribute(self, name: str, value: Any) -> None:
        agg = self._aggregators.get(name)
        if agg is None:
            raise KeyError(f"unknown aggregator {name!r}")
        self._current[name] = agg.reduce(self._current[name], value)

    def previous(self, name: str) -> Any:
        """Last superstep's reduced value (what vertices may read)."""
        if name not in self._aggregators:
            raise KeyError(f"unknown aggregator {name!r}")
        return self._previous[name]

    def roll(self) -> None:
        """Finish a superstep: publish current values, reset accumulators."""
        self._previous = dict(self._current)
        self._current = {
            name: agg.identity() for name, agg in self._aggregators.items()
        }

    def reset_current(self) -> None:
        """Discard this superstep's contributions without publishing.

        Crash recovery replays an aborted superstep from its checkpoint; the
        aborted sweep's contributions must not double-count when the replay
        contributes again.
        """
        self._current = {
            name: agg.identity() for name, agg in self._aggregators.items()
        }

    def names(self):
        return self._aggregators.keys()
