"""Vertex-to-worker partitioners.

Pregel-like systems shard vertices across workers; all communication costs
in the simulation depend on which endpoint of an edge lives where.  The
default is multiplicative hashing (the standard Pregel choice and what the
paper's testbed uses); range and explicit partitioners exist for tests and
for studying partition sensitivity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Sequence

from repro.errors import PartitionError

# Knuth's multiplicative hashing constant (2^32 / golden ratio).
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = (1 << 32) - 1


class Partitioner(ABC):
    """Maps vertex ids to worker ids in ``[0, num_workers)``."""

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise PartitionError(f"num_workers must be >= 1, got {num_workers}")
        self._num_workers = num_workers

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @abstractmethod
    def worker_of(self, vertex: int) -> int:
        """The worker hosting ``vertex``."""

    def partition(self, vertices: Iterable[int]) -> Dict[int, List[int]]:
        """Group ``vertices`` by worker (workers with no vertices included)."""
        groups: Dict[int, List[int]] = {w: [] for w in range(self._num_workers)}
        for u in vertices:
            groups[self.worker_of(u)].append(u)
        return groups


class HashPartitioner(Partitioner):
    """Deterministic multiplicative-hash partitioner (the default).

    Unlike Python's built-in ``hash`` (identity on small ints), the
    multiplicative hash spreads consecutive ids across workers, matching how
    real systems behave on SNAP-style id spaces.
    """

    def __init__(self, num_workers: int, salt: int = 0):
        super().__init__(num_workers)
        self._salt = salt

    def worker_of(self, vertex: int) -> int:
        h = ((vertex + self._salt) * _HASH_MULTIPLIER) & _HASH_MASK
        return h % self._num_workers


class RangePartitioner(Partitioner):
    """Contiguous id ranges per worker, built from an upper id bound."""

    def __init__(self, num_workers: int, max_vertex_id: int):
        super().__init__(num_workers)
        if max_vertex_id < 0:
            raise PartitionError("max_vertex_id must be >= 0")
        self._width = max(1, (max_vertex_id + num_workers) // num_workers)

    def worker_of(self, vertex: int) -> int:
        return min(max(vertex, 0) // self._width, self._num_workers - 1)


class ExplicitPartitioner(Partitioner):
    """A fixed vertex→worker mapping, with a fallback hash for new vertices.

    Dynamic workloads can insert vertices that did not exist when the map
    was built; those fall through to a :class:`HashPartitioner` so that the
    engine never fails mid-stream.
    """

    def __init__(self, assignment: Dict[int, int], num_workers: int):
        super().__init__(num_workers)
        for u, w in assignment.items():
            if not 0 <= w < num_workers:
                raise PartitionError(
                    f"vertex {u} assigned to worker {w}, outside [0, {num_workers})"
                )
        self._assignment = dict(assignment)
        self._fallback = HashPartitioner(num_workers)

    def worker_of(self, vertex: int) -> int:
        worker = self._assignment.get(vertex)
        if worker is None:
            return self._fallback.worker_of(vertex)
        return worker


def balanced_partition(vertices: Sequence[int], num_workers: int) -> ExplicitPartitioner:
    """Round-robin assignment over sorted ids — perfectly balanced counts."""
    assignment = {u: i % num_workers for i, u in enumerate(sorted(vertices))}
    return ExplicitPartitioner(assignment, num_workers)
