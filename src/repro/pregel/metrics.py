"""Cost model and run metrics for the simulated distributed engines.

The paper reports four quantities per experiment: *response time*,
*communication cost* (MB shipped between workers), *memory cost* (peak MB per
worker) and *superstep number*, plus *active vertex number* for the
optimization study (Table III).  Real wall-clock on a cluster is unavailable
in a single-process reproduction, so the engines charge every logical event
to an explicit, documented cost model and additionally expose a BSP makespan
model (:meth:`RunMetrics.simulated_time`) used by the scalability figures.

The byte constants below are the serialized sizes a straightforward C++
implementation would ship; their absolute values only scale the reported MB,
while every comparison in the paper's tables depends on *ratios*, which are
set by message counts and per-state payload sizes supplied by the vertex
programs themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bytes of a vertex identifier on the wire (64-bit id).
VERTEX_ID_BYTES = 8
#: Bytes of a vertex degree value (32-bit int).
DEGREE_BYTES = 4
#: Bytes of a boolean / small-enum status value.
STATUS_BYTES = 1
#: Fixed framing overhead charged once per remote message / sync record.
MESSAGE_OVERHEAD_BYTES = 8
#: Bytes per remotely-activated vertex id piggybacked on a sync record
#: (ScaleG routes activation through the guest inverted index, so an
#: activation entry is a compact local offset, not a full id).
ACTIVATION_ENTRY_BYTES = 4

#: Modelled per-vertex bookkeeping overhead for the memory estimate
#: (hash-table slot + object header).
VERTEX_OVERHEAD_BYTES = 32
#: Modelled bytes per adjacency entry.
ADJACENCY_ENTRY_BYTES = 8
#: Modelled per-guest-copy overhead (directory slot + inverted index entry).
GUEST_OVERHEAD_BYTES = 16


@dataclass
class SuperstepRecord:
    """Everything measured during one superstep."""

    superstep: int
    active_vertices: int = 0
    #: neighbour-state reads / comparisons performed by vertex programs
    compute_work: int = 0
    #: total logical messages (including worker-local ones)
    messages: int = 0
    #: messages that crossed a worker boundary
    remote_messages: int = 0
    #: bytes shipped between workers this superstep
    bytes_sent: int = 0
    #: vertices whose state changed this superstep
    state_changes: int = 0
    #: per-worker compute work, for the BSP makespan model
    worker_work: List[int] = field(default_factory=list)


@dataclass
class RunMetrics:
    """Aggregate metrics for one engine run (or one maintenance session).

    Instances support ``+=``-style merging via :meth:`merge`, which the
    dynamic maintenance driver uses to accumulate costs over an update
    stream exactly the way the paper accumulates them over 100k updates.
    """

    num_workers: int = 1
    supersteps: int = 0
    active_vertices: int = 0
    compute_work: int = 0
    messages: int = 0
    remote_messages: int = 0
    bytes_sent: int = 0
    state_changes: int = 0
    wall_time_s: float = 0.0
    # -- recovery meter family (fault injection / recovery overhead) -----
    # Logical meters above describe the *committed* computation and stay
    # bit-identical whether or not faults were injected; everything a fault
    # costs extra — replayed sweeps, re-shipped sync records, backoff and
    # straggler time — is charged here so the overhead is measurable
    # instead of hidden.
    #: worker crashes detected and recovered at superstep barriers
    recovery_crashes: int = 0
    #: superstep attempts aborted and replayed after a crash
    recovery_replayed_supersteps: int = 0
    #: compute work of aborted superstep attempts (redundant on replay)
    recovery_compute_work: int = 0
    #: bytes re-shipped during recovery (retries, duplicates, guest rebuild)
    recovery_resync_bytes: int = 0
    #: remote records re-shipped during recovery
    recovery_resync_messages: int = 0
    #: failed sync-record attempts that were retried
    recovery_sync_retries: int = 0
    #: duplicated sync records discarded idempotently at the receiver
    recovery_sync_duplicates: int = 0
    #: supersteps whose sync/delivery order was adversarially permuted
    recovery_reorders: int = 0
    #: modelled wall time lost to straggling workers
    recovery_straggler_s: float = 0.0
    #: modelled wall time spent in retry exponential backoff
    recovery_backoff_s: float = 0.0
    #: workers declared permanently dead and failed over
    recovery_failovers: int = 0
    #: modelled wall time the barrier blocked until the phi-accrual
    #: detector declared the silent workers dead
    recovery_detection_s: float = 0.0
    #: host vertices whose partition moved to a surviving worker
    recovery_reassigned_vertices: int = 0
    #: lost host vertices whose state was rebuilt from a surviving guest
    #: copy, the delta log, or the barrier checkpoint
    recovery_reconstructed_vertices: int = 0
    #: vertices re-examined by the post-failover recovery sweep (the
    #: DOIMIS affected set around every reconstructed vertex)
    recovery_reactivated_vertices: int = 0
    #: bytes shipped to the replicated delta log (solitary vertices with no
    #: surviving guest copy anywhere)
    recovery_delta_log_bytes: int = 0
    #: records appended to the delta log
    recovery_delta_log_records: int = 0
    # -- divergence meter family (anti-entropy / guest auditing) ---------
    # Like recovery_*, these never touch the logical meters: checksum
    # sampling, detection, and read-repair of silently corrupted guest
    # copies are all quarantined here.
    #: guest copies whose checksum was compared against host state
    divergence_checks: int = 0
    #: bytes of checksum digests shipped by the sampled audit
    divergence_check_bytes: int = 0
    #: corrupted guest copies the auditor detected
    divergence_detected: int = 0
    #: corrupted guest copies repaired by re-shipping host state
    divergence_repaired: int = 0
    #: bytes re-shipped by read-repair
    divergence_repair_bytes: int = 0
    #: records re-shipped by read-repair
    divergence_repair_messages: int = 0
    # -- rebalance meter family (voluntary elasticity) -------------------
    # Planned membership transitions (joins/drains) are *chosen*, not
    # suffered, so their cost is quarantined separately from ``recovery_*``:
    # comparing the two families is how an operator decides whether a
    # rebalance was cheaper than riding out the skew.
    #: workers that voluntarily joined at a barrier
    rebalance_joins: int = 0
    #: workers that voluntarily drained at a barrier
    rebalance_drains: int = 0
    #: host vertices whose effective placement moved in a transition
    rebalance_moved_vertices: int = 0
    #: bytes streamed to re-establish moved hosts + their guest copies
    rebalance_resync_bytes: int = 0
    #: sync records streamed during transitions
    rebalance_resync_messages: int = 0
    #: rank-cache entries rebuilt on the receiving workers
    rebalance_rank_entries: int = 0
    #: modelled wall time the barrier stalled while transitions applied
    rebalance_stall_s: float = 0.0
    #: modelled peak bytes resident on the most-loaded worker
    peak_worker_memory_bytes: int = 0
    #: modelled total bytes across all workers
    total_memory_bytes: int = 0
    records: List[SuperstepRecord] = field(default_factory=list)
    #: per-superstep per-worker work kept only while ``keep_records``
    _worker_work_totals: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def observe(self, record: SuperstepRecord, keep_record: bool = True) -> None:
        """Fold one superstep's record into the aggregate."""
        self.supersteps += 1
        self.active_vertices += record.active_vertices
        self.compute_work += record.compute_work
        self.messages += record.messages
        self.remote_messages += record.remote_messages
        self.bytes_sent += record.bytes_sent
        self.state_changes += record.state_changes
        if keep_record:
            self.records.append(record)

    def observe_memory(self, per_worker_bytes: Dict[int, int]) -> None:
        """Record a memory snapshot (keeps the peak)."""
        if not per_worker_bytes:
            return
        peak = max(per_worker_bytes.values())
        total = sum(per_worker_bytes.values())
        self.peak_worker_memory_bytes = max(self.peak_worker_memory_bytes, peak)
        self.total_memory_bytes = max(self.total_memory_bytes, total)

    def merge(self, other: "RunMetrics") -> None:
        """Accumulate another run's metrics (used over update streams)."""
        self.supersteps += other.supersteps
        self.active_vertices += other.active_vertices
        self.compute_work += other.compute_work
        self.messages += other.messages
        self.remote_messages += other.remote_messages
        self.bytes_sent += other.bytes_sent
        self.state_changes += other.state_changes
        self.wall_time_s += other.wall_time_s
        self.recovery_crashes += other.recovery_crashes
        self.recovery_replayed_supersteps += other.recovery_replayed_supersteps
        self.recovery_compute_work += other.recovery_compute_work
        self.recovery_resync_bytes += other.recovery_resync_bytes
        self.recovery_resync_messages += other.recovery_resync_messages
        self.recovery_sync_retries += other.recovery_sync_retries
        self.recovery_sync_duplicates += other.recovery_sync_duplicates
        self.recovery_reorders += other.recovery_reorders
        self.recovery_straggler_s += other.recovery_straggler_s
        self.recovery_backoff_s += other.recovery_backoff_s
        self.recovery_failovers += other.recovery_failovers
        self.recovery_detection_s += other.recovery_detection_s
        self.recovery_reassigned_vertices += other.recovery_reassigned_vertices
        self.recovery_reconstructed_vertices += (
            other.recovery_reconstructed_vertices
        )
        self.recovery_reactivated_vertices += (
            other.recovery_reactivated_vertices
        )
        self.recovery_delta_log_bytes += other.recovery_delta_log_bytes
        self.recovery_delta_log_records += other.recovery_delta_log_records
        self.divergence_checks += other.divergence_checks
        self.divergence_check_bytes += other.divergence_check_bytes
        self.divergence_detected += other.divergence_detected
        self.divergence_repaired += other.divergence_repaired
        self.divergence_repair_bytes += other.divergence_repair_bytes
        self.divergence_repair_messages += other.divergence_repair_messages
        self.rebalance_joins += other.rebalance_joins
        self.rebalance_drains += other.rebalance_drains
        self.rebalance_moved_vertices += other.rebalance_moved_vertices
        self.rebalance_resync_bytes += other.rebalance_resync_bytes
        self.rebalance_resync_messages += other.rebalance_resync_messages
        self.rebalance_rank_entries += other.rebalance_rank_entries
        self.rebalance_stall_s += other.rebalance_stall_s
        self.peak_worker_memory_bytes = max(
            self.peak_worker_memory_bytes, other.peak_worker_memory_bytes
        )
        self.total_memory_bytes = max(self.total_memory_bytes, other.total_memory_bytes)
        self.records.extend(other.records)

    #: meter names :meth:`merge_delta` accepts as additive increments —
    #: the logical family plus the quarantined ``recovery_*``,
    #: ``divergence_*`` and ``rebalance_*`` families
    _ADDITIVE_METERS = frozenset({
        "supersteps", "active_vertices", "compute_work", "messages",
        "remote_messages", "bytes_sent", "state_changes", "wall_time_s",
        "recovery_crashes", "recovery_replayed_supersteps",
        "recovery_compute_work", "recovery_resync_bytes",
        "recovery_resync_messages", "recovery_sync_retries",
        "recovery_sync_duplicates", "recovery_reorders",
        "recovery_straggler_s", "recovery_backoff_s", "recovery_failovers",
        "recovery_detection_s", "recovery_reassigned_vertices",
        "recovery_reconstructed_vertices", "recovery_reactivated_vertices",
        "recovery_delta_log_bytes", "recovery_delta_log_records",
        "divergence_checks", "divergence_check_bytes",
        "divergence_detected", "divergence_repaired",
        "divergence_repair_bytes", "divergence_repair_messages",
        "rebalance_joins", "rebalance_drains", "rebalance_moved_vertices",
        "rebalance_resync_bytes", "rebalance_resync_messages",
        "rebalance_rank_entries", "rebalance_stall_s",
    })
    #: meters :meth:`merge_delta` folds with ``max`` (snapshots, not sums)
    _PEAK_METERS = frozenset({
        "peak_worker_memory_bytes", "total_memory_bytes",
    })

    def merge_delta(self, delta: Dict[str, float]) -> None:
        """Apply one worker's per-superstep meter increments.

        The parallel runtime's barrier reduce feeds each worker's echoed
        increments through here **exactly once per worker per superstep**,
        in ascending worker order — the same accumulation order as the
        inline path, so float meters (``recovery_straggler_s``,
        ``wall_time_s``) stay bit-identical, not just approximately equal.
        Additive meters (logical + the quarantined ``recovery_*`` /
        ``divergence_*`` families) are summed; peak meters are max-merged;
        an unknown meter name raises ``ValueError`` so a typo can never
        silently drop (or double-count) a meter.
        """
        for name, value in delta.items():
            if name in self._ADDITIVE_METERS:
                setattr(self, name, getattr(self, name) + value)
            elif name in self._PEAK_METERS:
                setattr(self, name, max(getattr(self, name), value))
            else:
                raise ValueError(f"unknown meter {name!r} in merge_delta")

    # ------------------------------------------------------------------
    @property
    def communication_mb(self) -> float:
        """Bytes shipped between workers, in MB (the paper's metric)."""
        return self.bytes_sent / (1024.0 * 1024.0)

    @property
    def memory_mb(self) -> float:
        """Modelled peak memory of the most-loaded worker, in MB."""
        return self.peak_worker_memory_bytes / (1024.0 * 1024.0)

    def simulated_time(
        self,
        work_per_second: float = 5e7,
        bandwidth_bytes_per_second: float = 1.25e8,
        superstep_latency_s: float = 1e-3,
    ) -> float:
        """BSP makespan under a simple machine model.

        Per superstep the cluster pays the *slowest* worker's compute time
        (``max_w work_w / work_per_second``), plus shipping the superstep's
        bytes over the interconnect, plus a fixed barrier latency.  Defaults
        approximate one 3 GHz core doing ~50M neighbour comparisons/s and
        Gigabit Ethernet, matching the paper's testbed flavour.  This model
        is what makes "more machines → faster but chattier" reproducible in
        one process (Fig. 12).
        """
        if not self.records:
            # Aggregate fallback (per-superstep records disabled, as over
            # long update streams): assume balanced work.
            workers = max(self.num_workers, 1)
            return (
                self.compute_work / (workers * work_per_second)
                + self.bytes_sent / bandwidth_bytes_per_second
                + self.supersteps * superstep_latency_s
            )
        total = 0.0
        for record in self.records:
            if record.worker_work:
                slowest = max(record.worker_work)
            else:
                # Fallback when per-worker detail was not kept: assume
                # perfectly balanced work.
                slowest = record.compute_work / max(self.num_workers, 1)
            total += slowest / work_per_second
            total += record.bytes_sent / bandwidth_bytes_per_second
            total += superstep_latency_s
        return total

    @property
    def recovery_events(self) -> int:
        """Total injected faults this meter recovered from."""
        return (
            self.recovery_crashes
            + self.recovery_sync_retries
            + self.recovery_sync_duplicates
            + self.recovery_reorders
        )

    def recovery_summary(self) -> Dict[str, float]:
        """The ``recovery_*`` meter family as a plain dict."""
        return {
            "recovery_crashes": self.recovery_crashes,
            "recovery_replayed_supersteps": self.recovery_replayed_supersteps,
            "recovery_compute_work": self.recovery_compute_work,
            "recovery_resync_bytes": self.recovery_resync_bytes,
            "recovery_resync_messages": self.recovery_resync_messages,
            "recovery_sync_retries": self.recovery_sync_retries,
            "recovery_sync_duplicates": self.recovery_sync_duplicates,
            "recovery_reorders": self.recovery_reorders,
            "recovery_straggler_s": round(self.recovery_straggler_s, 6),
            "recovery_backoff_s": round(self.recovery_backoff_s, 6),
            "recovery_failovers": self.recovery_failovers,
            "recovery_detection_s": round(self.recovery_detection_s, 6),
            "recovery_reassigned_vertices": self.recovery_reassigned_vertices,
            "recovery_reconstructed_vertices":
                self.recovery_reconstructed_vertices,
            "recovery_reactivated_vertices":
                self.recovery_reactivated_vertices,
            "recovery_delta_log_bytes": self.recovery_delta_log_bytes,
            "recovery_delta_log_records": self.recovery_delta_log_records,
        }

    def divergence_summary(self) -> Dict[str, float]:
        """The ``divergence_*`` meter family (anti-entropy) as a plain dict."""
        return {
            "divergence_checks": self.divergence_checks,
            "divergence_check_bytes": self.divergence_check_bytes,
            "divergence_detected": self.divergence_detected,
            "divergence_repaired": self.divergence_repaired,
            "divergence_repair_bytes": self.divergence_repair_bytes,
            "divergence_repair_messages": self.divergence_repair_messages,
        }

    def rebalance_summary(self) -> Dict[str, float]:
        """The ``rebalance_*`` meter family (voluntary elasticity) as a
        plain dict."""
        return {
            "rebalance_joins": self.rebalance_joins,
            "rebalance_drains": self.rebalance_drains,
            "rebalance_moved_vertices": self.rebalance_moved_vertices,
            "rebalance_resync_bytes": self.rebalance_resync_bytes,
            "rebalance_resync_messages": self.rebalance_resync_messages,
            "rebalance_rank_entries": self.rebalance_rank_entries,
            "rebalance_stall_s": round(self.rebalance_stall_s, 6),
        }

    def summary(self) -> Dict[str, float]:
        """Plain-dict summary used by the benchmark reporters."""
        summary = {
            "supersteps": self.supersteps,
            "active_vertices": self.active_vertices,
            "compute_work": self.compute_work,
            "messages": self.messages,
            "remote_messages": self.remote_messages,
            "communication_mb": round(self.communication_mb, 6),
            "memory_mb": round(self.memory_mb, 6),
            "wall_time_s": round(self.wall_time_s, 6),
            "state_changes": self.state_changes,
        }
        summary.update(self.recovery_summary())
        summary.update(self.divergence_summary())
        summary.update(self.rebalance_summary())
        return summary

    def to_json(self, include_records: bool = False) -> str:
        """Serialize for run logging (dashboards, regression archives).

        ``include_records`` adds the per-superstep trace (can be large on
        long runs; off by default).
        """
        import json

        payload = dict(self.summary())
        payload["num_workers"] = self.num_workers
        payload["total_memory_bytes"] = self.total_memory_bytes
        if include_records:
            payload["records"] = [
                {
                    "superstep": r.superstep,
                    "active_vertices": r.active_vertices,
                    "compute_work": r.compute_work,
                    "messages": r.messages,
                    "remote_messages": r.remote_messages,
                    "bytes_sent": r.bytes_sent,
                    "state_changes": r.state_changes,
                    "worker_work": list(r.worker_work),
                }
                for r in self.records
            ]
        return json.dumps(payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunMetrics(supersteps={self.supersteps}, "
            f"active={self.active_vertices}, comm={self.communication_mb:.3f}MB, "
            f"mem={self.memory_mb:.3f}MB, wall={self.wall_time_s:.4f}s)"
        )


def fresh_metrics(num_workers: int) -> RunMetrics:
    """A zeroed :class:`RunMetrics` for ``num_workers`` workers."""
    return RunMetrics(num_workers=num_workers)
