"""A small library of classic vertex programs for the simulated runtimes.

The paper's claim that OIMIS "works on all Pregel-like graph processing
systems" cuts both ways: the runtimes here are general-purpose, not
MIS-specific.  This module provides the canonical vertex-centric programs —
BFS distances, connected components, PageRank, degree statistics — both to
exercise the engines beyond MIS in the test suite and as ready-made tools
for users analysing the graphs they maintain MIS over (e.g. restricting a
maintainer to the giant component).

All message sizes use the shared cost-model constants so their
communication numbers are comparable with the MIS programs'.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.graph.distributed_graph import DistributedGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.pregel.aggregator import MaxAggregator, SumAggregator
from repro.pregel.combiner import Combiner, ReduceCombiner
from repro.pregel.engine import PregelContext, PregelEngine, PregelProgram
from repro.pregel.metrics import DEGREE_BYTES, VERTEX_ID_BYTES
from repro.pregel.partition import HashPartitioner

_FLOAT_BYTES = 8


class BFSProgram(PregelProgram):
    """Single-source BFS distances (unweighted shortest hop counts).

    Unreached vertices end with ``None``.
    """

    def __init__(self, source: int):
        self.source = source

    def initial_state(self, dgraph: DistributedGraph, u: int) -> Optional[int]:
        return 0 if u == self.source else None

    def compute(self, ctx: PregelContext) -> None:
        if ctx.superstep == 0:
            if ctx.vertex == self.source:
                ctx.broadcast(1, DEGREE_BYTES)
            return
        incoming = min(ctx.messages) if ctx.messages else None
        ctx.charge(len(ctx.messages))
        if incoming is not None and (ctx.state is None or incoming < ctx.state):
            ctx.set_state(incoming)
            ctx.broadcast(incoming + 1, DEGREE_BYTES)

    def combiner(self) -> Optional[Combiner]:
        return ReduceCombiner(min)

    def state_bytes(self, state: Any) -> int:
        return DEGREE_BYTES


class ConnectedComponentsProgram(PregelProgram):
    """Min-label propagation: every vertex ends with its component's min id."""

    def initial_state(self, dgraph: DistributedGraph, u: int) -> int:
        return u

    def compute(self, ctx: PregelContext) -> None:
        if ctx.superstep == 0:
            ctx.broadcast(ctx.state, VERTEX_ID_BYTES)
            return
        ctx.charge(len(ctx.messages))
        best = min(ctx.messages) if ctx.messages else ctx.state
        if best < ctx.state:
            ctx.set_state(best)
            ctx.broadcast(best, VERTEX_ID_BYTES)

    def combiner(self) -> Optional[Combiner]:
        return ReduceCombiner(min)

    def state_bytes(self, state: Any) -> int:
        return VERTEX_ID_BYTES


class PageRankProgram(PregelProgram):
    """Fixed-iteration PageRank with uniform teleport.

    Runs exactly ``iterations`` score-exchange supersteps (the Pregel
    paper's formulation); dangling mass is redistributed via the ``dangling``
    aggregator.
    """

    def __init__(self, iterations: int = 20, damping: float = 0.85):
        self.iterations = iterations
        self.damping = damping

    def initial_state(self, dgraph: DistributedGraph, u: int) -> float:
        return 1.0 / max(dgraph.graph.num_vertices, 1)

    def aggregators(self):
        return {"dangling": SumAggregator(), "mass": SumAggregator()}

    def compute(self, ctx: PregelContext) -> None:
        n = ctx.num_vertices
        if 0 < ctx.superstep <= self.iterations:
            incoming = sum(ctx.messages)
            ctx.charge(len(ctx.messages))
            dangling = ctx.aggregated("dangling") or 0.0
            rank = (1.0 - self.damping) / n + self.damping * (
                incoming + dangling / n
            )
            ctx.set_state(rank)
        if ctx.superstep < self.iterations:
            degree = ctx.degree()
            if degree:
                share = ctx.state / degree
                ctx.broadcast(share, _FLOAT_BYTES)
            else:
                ctx.aggregate("dangling", ctx.state)
            # keep every vertex active for the next round
            ctx.send(ctx.vertex, 0.0, 0)
        ctx.aggregate("mass", ctx.state)

    def state_bytes(self, state: Any) -> int:
        return _FLOAT_BYTES


class DegreeStatsProgram(PregelProgram):
    """One-superstep aggregation: max degree and total edge-endpoints."""

    def initial_state(self, dgraph: DistributedGraph, u: int) -> int:
        return 0

    def aggregators(self):
        return {"max_degree": MaxAggregator(), "endpoints": SumAggregator()}

    def compute(self, ctx: PregelContext) -> None:
        if ctx.superstep == 0:
            ctx.set_state(ctx.degree())
            ctx.aggregate("max_degree", ctx.degree())
            ctx.aggregate("endpoints", ctx.degree())

    def state_bytes(self, state: Any) -> int:
        return DEGREE_BYTES


# ---------------------------------------------------------------------------
# convenience runners
# ---------------------------------------------------------------------------
def _engine_for(graph: DynamicGraph, num_workers: int) -> PregelEngine:
    return PregelEngine(DistributedGraph(graph, HashPartitioner(num_workers)))


def bfs_distances(
    graph: DynamicGraph, source: int, num_workers: int = 4
) -> Dict[int, Optional[int]]:
    """Hop distances from ``source`` (``None`` where unreachable)."""
    result = _engine_for(graph, num_workers).run(BFSProgram(source))
    return result.states


def connected_components(
    graph: DynamicGraph, num_workers: int = 4
) -> Dict[int, int]:
    """Map vertex -> min id of its connected component."""
    result = _engine_for(graph, num_workers).run(ConnectedComponentsProgram())
    return result.states


def component_members(graph: DynamicGraph, num_workers: int = 4) -> Dict[int, Set[int]]:
    """Group vertices by component label."""
    labels = connected_components(graph, num_workers=num_workers)
    groups: Dict[int, Set[int]] = {}
    for u, label in labels.items():
        groups.setdefault(label, set()).add(u)
    return groups


def pagerank(
    graph: DynamicGraph,
    iterations: int = 20,
    damping: float = 0.85,
    num_workers: int = 4,
) -> Dict[int, float]:
    """PageRank scores (sum to ~1 over the graph)."""
    result = _engine_for(graph, num_workers).run(
        PageRankProgram(iterations=iterations, damping=damping)
    )
    return result.states


def degree_stats(graph: DynamicGraph, num_workers: int = 4) -> Dict[str, float]:
    """``{"max_degree": ..., "edges": ...}`` computed vertex-centrically."""
    result = _engine_for(graph, num_workers).run(DegreeStatsProgram())
    return {
        "max_degree": result.aggregates["max_degree"] or 0,
        "edges": (result.aggregates["endpoints"] or 0) / 2,
    }
