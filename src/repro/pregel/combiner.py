"""Message combiners.

A combiner folds the messages headed to one destination vertex into fewer
messages *before* they leave the sending worker — the classic Pregel
bandwidth optimization.  Combiners must be commutative and associative.

The MIS programs in this library send notification-style messages for which
:class:`DedupCombiner` applies (two identical notifications carry no more
information than one); generic reducers are provided for completeness and
for user programs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List

from repro.pregel.message import Message


class Combiner(ABC):
    """Reduces a list of same-destination messages from one worker."""

    @abstractmethod
    def combine(self, messages: List[Message]) -> List[Message]:
        """Return the (smaller or equal) combined message list."""


class NullCombiner(Combiner):
    """No combining — every message ships individually."""

    def combine(self, messages: List[Message]) -> List[Message]:
        return messages


class DedupCombiner(Combiner):
    """Collapse messages with identical payloads to a single message."""

    def combine(self, messages: List[Message]) -> List[Message]:
        seen = set()
        kept: List[Message] = []
        for msg in messages:
            key = msg.payload
            try:
                fresh = key not in seen
            except TypeError:  # unhashable payload: keep it
                kept.append(msg)
                continue
            if fresh:
                seen.add(key)
                kept.append(msg)
        return kept


class ReduceCombiner(Combiner):
    """Fold all payloads with a binary function into a single message.

    Example: ``ReduceCombiner(min)`` for shortest-path style programs.
    """

    def __init__(self, fn):
        self._fn = fn

    def combine(self, messages: List[Message]) -> List[Message]:
        if len(messages) <= 1:
            return messages
        acc: Any = messages[0].payload
        for msg in messages[1:]:
            acc = self._fn(acc, msg.payload)
        head = messages[0]
        return [Message(head.source, head.dest, acc, head.payload_bytes)]
