"""Message type for the message-passing (classic Pregel) engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.pregel.metrics import MESSAGE_OVERHEAD_BYTES


@dataclass(frozen=True)
class Message:
    """A vertex-to-vertex message.

    ``payload`` is opaque to the engine; ``payload_bytes`` is the modelled
    serialized size, charged (plus framing overhead) only when the message
    crosses a worker boundary.
    """

    source: int
    dest: int
    payload: Any
    payload_bytes: int

    def wire_bytes(self) -> int:
        """Bytes this message costs on the interconnect."""
        return MESSAGE_OVERHEAD_BYTES + self.payload_bytes
