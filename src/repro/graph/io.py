"""Graph serialization: SNAP-style edge lists and adjacency dumps.

The paper's datasets are distributed as SNAP edge lists (one ``u v`` pair
per line, ``#`` comments).  These readers/writers allow users to run the
library on their own graphs in the same format.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO, Iterator, Tuple, Union

from repro.errors import GraphError
from repro.graph.dynamic_graph import DynamicGraph

PathOrFile = Union[str, Path, IO[str]]


def _open_for_read(source: PathOrFile) -> Tuple[IO[str], bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_for_write(target: PathOrFile) -> Tuple[IO[str], bool]:
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def iter_edge_list(source: PathOrFile) -> Iterator[Tuple[int, int]]:
    """Yield ``(u, v)`` pairs from a SNAP-style edge list.

    Lines starting with ``#`` or ``%`` and blank lines are skipped.
    Separators may be spaces, tabs, or commas.

    Raises :class:`GraphError` on malformed lines, naming the line number.
    """
    handle, owned = _open_for_read(source)
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) < 2:
                raise GraphError(f"edge list line {lineno}: expected two ids, got {raw!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"edge list line {lineno}: non-integer vertex id in {raw!r}"
                ) from exc
            yield (u, v)
    finally:
        if owned:
            handle.close()


def read_edge_list(source: PathOrFile, skip_self_loops: bool = True) -> DynamicGraph:
    """Load a graph from a SNAP-style edge list.

    Duplicate edges collapse to one; self-loops are skipped by default
    (SNAP dumps contain them but simple graphs do not).
    """
    graph = DynamicGraph()
    for u, v in iter_edge_list(source):
        if u == v:
            if skip_self_loops:
                continue
            raise GraphError(f"self-loop ({u}, {v}) in input")
        graph.add_vertex(u)
        graph.add_vertex(v)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def write_edge_list(graph: DynamicGraph, target: PathOrFile, header: bool = True) -> None:
    """Write ``graph`` as a SNAP-style edge list (canonical ``u < v`` lines)."""
    handle, owned = _open_for_write(target)
    try:
        if header:
            handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for u, v in graph.sorted_edges():
            handle.write(f"{u}\t{v}\n")
    finally:
        if owned:
            handle.close()


def edge_list_string(graph: DynamicGraph, header: bool = False) -> str:
    """Render ``graph`` as an edge-list string (handy in tests and examples)."""
    buffer = io.StringIO()
    write_edge_list(graph, buffer, header=header)
    return buffer.getvalue()


def read_update_stream(source: PathOrFile):
    """Load an edge-update stream: one ``ins u v`` / ``del u v`` per line.

    ``#`` comments and blank lines are skipped.  Returns a list of
    :class:`~repro.graph.updates.EdgeInsertion` /
    :class:`~repro.graph.updates.EdgeDeletion` in file order.
    """
    from repro.graph.updates import EdgeDeletion, EdgeInsertion

    ops = []
    handle, owned = _open_for_read(source)
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise GraphError(
                    f"update stream line {lineno}: expected 'ins|del u v', got {raw!r}"
                )
            kind = parts[0].lower()
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise GraphError(
                    f"update stream line {lineno}: non-integer vertex id in {raw!r}"
                ) from exc
            if kind in ("ins", "insert", "+"):
                ops.append(EdgeInsertion(u, v))
            elif kind in ("del", "delete", "-"):
                ops.append(EdgeDeletion(u, v))
            else:
                raise GraphError(
                    f"update stream line {lineno}: unknown operation {parts[0]!r}"
                )
    finally:
        if owned:
            handle.close()
    return ops


def write_update_stream(operations, target: PathOrFile) -> None:
    """Write an edge-update stream in the format of :func:`read_update_stream`."""
    from repro.graph.updates import EdgeInsertion

    handle, owned = _open_for_write(target)
    try:
        for op in operations:
            kind = "ins" if isinstance(op, EdgeInsertion) else "del"
            handle.write(f"{kind} {op.u} {op.v}\n")
    finally:
        if owned:
            handle.close()


def read_adjacency(source: PathOrFile) -> DynamicGraph:
    """Load a graph from an adjacency format: ``u: v1 v2 v3`` per line.

    Vertices with no neighbours can be declared with a bare ``u:`` line.
    """
    graph = DynamicGraph()
    handle, owned = _open_for_read(source)
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if ":" not in line:
                raise GraphError(f"adjacency line {lineno}: missing ':' in {raw!r}")
            head, _, tail = line.partition(":")
            try:
                u = int(head.strip())
                nbrs = [int(tok) for tok in tail.split()]
            except ValueError as exc:
                raise GraphError(
                    f"adjacency line {lineno}: non-integer id in {raw!r}"
                ) from exc
            graph.add_vertex(u)
            for v in nbrs:
                graph.add_vertex(v)
                if u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
    finally:
        if owned:
            handle.close()
    return graph


def write_adjacency(graph: DynamicGraph, target: PathOrFile) -> None:
    """Write ``graph`` in the adjacency format accepted by :func:`read_adjacency`."""
    handle, owned = _open_for_write(target)
    try:
        for u in graph.sorted_vertices():
            nbrs = " ".join(str(v) for v in sorted(graph.neighbors(u)))
            handle.write(f"{u}: {nbrs}\n" if nbrs else f"{u}:\n")
    finally:
        if owned:
            handle.close()
