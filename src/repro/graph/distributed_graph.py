"""Partitioned view of a dynamic graph, with the ScaleG guest directory.

A :class:`DistributedGraph` wraps a :class:`~repro.graph.dynamic_graph.DynamicGraph`
with a vertex partitioning and maintains, for every vertex ``u``, the set of
*other* workers that host at least one neighbour of ``u``.  Those are exactly
the machines where ScaleG keeps a *guest copy* of ``u``'s state (Section IV
of the paper): whenever ``u``'s state changes it must be synced once to each
such machine, and activation of remote neighbours is routed through the
guest's inverted index.

The directory is maintained incrementally under edge/vertex updates with
per-worker reference counts, so a dynamic workload never rebuilds it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.pregel.metrics import (
    ADJACENCY_ENTRY_BYTES,
    GUEST_OVERHEAD_BYTES,
    VERTEX_OVERHEAD_BYTES,
)
from repro.pregel.partition import HashPartitioner, Partitioner


class DistributedGraph:
    """A dynamic graph sharded over ``num_workers`` logical workers."""

    def __init__(self, graph: DynamicGraph, partitioner: Partitioner):
        self._graph = graph
        self._partitioner = partitioner
        # _nbr_worker_counts[u][w] = number of u's neighbours hosted on w
        # (including u's own worker, so deletions stay O(1)).
        self._nbr_worker_counts: Dict[int, Dict[int, int]] = {}
        # per-vertex guest-copy count and per-worker aggregates (home
        # vertices, home degree sum, hosted guest copies), all kept in
        # lock-step with the directory so `num_guest_copies` and the
        # uniform memory snapshot are O(1)/O(num_workers)
        self._guest_count: Dict[int, int] = {}
        w = partitioner.num_workers
        self._home_vertices: List[int] = [0] * w
        self._home_degree_sum: List[int] = [0] * w
        self._guest_copies: List[int] = [0] * w
        # bulk build: identical arithmetic to add_vertex/_count_edge(+1),
        # with home workers memoized (one hash per vertex instead of four
        # per edge) and the guest bookkeeping specialized for the build-up
        # case, where reference counts only ever grow
        home: Dict[int, int] = {}
        worker_of = partitioner.worker_of
        counts_of = self._nbr_worker_counts
        guest_count = self._guest_count
        guest_copies = self._guest_copies
        degree_sum = self._home_degree_sum
        for u in graph.vertices():
            wu = worker_of(u)
            home[u] = wu
            counts_of[u] = {}
            self._home_vertices[wu] += 1
        for u, v in graph.edges():
            wu = home[u]
            wv = home[v]
            cu = counts_of[u]
            old = cu.get(wv, 0)
            cu[wv] = old + 1
            if old == 0 and wv != wu:
                guest_count[u] = guest_count.get(u, 0) + 1
                guest_copies[wv] += 1
            cv = counts_of[v]
            old = cv.get(wu, 0)
            cv[wu] = old + 1
            if old == 0 and wu != wv:
                guest_count[v] = guest_count.get(v, 0) + 1
                guest_copies[wu] += 1
            degree_sum[wu] += 1
            degree_sum[wv] += 1

    @classmethod
    def create(
        cls, graph: DynamicGraph, num_workers: int, partitioner: Partitioner = None
    ) -> "DistributedGraph":
        """Build with the default hash partitioner unless one is given."""
        if partitioner is None:
            partitioner = HashPartitioner(num_workers)
        return cls(graph, partitioner)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        """The underlying single-image graph."""
        return self._graph

    @property
    def partitioner(self) -> Partitioner:
        return self._partitioner

    @property
    def num_workers(self) -> int:
        return self._partitioner.num_workers

    def worker_of(self, u: int) -> int:
        """The worker that hosts vertex ``u``."""
        return self._partitioner.worker_of(u)

    def guest_machines(self, u: int) -> List[int]:
        """Workers (other than ``u``'s own) holding a guest copy of ``u``.

        A guest copy exists on worker ``w`` iff ``w`` hosts at least one
        neighbour of ``u``.
        """
        home = self._partitioner.worker_of(u)
        counts = self._nbr_worker_counts.get(u, {})
        return [w for w, c in counts.items() if c > 0 and w != home]

    def num_guest_copies(self, u: int) -> int:
        return self._guest_count.get(u, 0)

    def is_remote_pair(self, u: int, v: int) -> bool:
        """True when ``u`` and ``v`` live on different workers."""
        return self._partitioner.worker_of(u) != self._partitioner.worker_of(v)

    # ------------------------------------------------------------------
    # mutation (kept in lock-step with the guest directory)
    # ------------------------------------------------------------------
    def add_vertex(self, u: int) -> None:
        self._graph.add_vertex(u)
        if u not in self._nbr_worker_counts:
            self._nbr_worker_counts[u] = {}
            self._home_vertices[self._partitioner.worker_of(u)] += 1

    def add_edge(self, u: int, v: int) -> Tuple[int, int]:
        """Insert edge ``(u, v)``.

        Returns ``(new_guests_u, new_guests_v)``: how many *new* guest copies
        each endpoint gained (a new copy means its full state must be shipped
        to a machine that had no replica before — the engines charge this).
        """
        self._graph.add_edge(u, v)
        for end in (u, v):
            if end not in self._nbr_worker_counts:
                self._nbr_worker_counts[end] = {}
                self._home_vertices[self._partitioner.worker_of(end)] += 1
        return self._count_edge(u, v, +1)

    def remove_edge(self, u: int, v: int) -> Tuple[int, int]:
        """Delete edge ``(u, v)``; returns how many guest copies each
        endpoint *lost* (replicas garbage-collected on remote machines)."""
        self._graph.remove_edge(u, v)
        return self._count_edge(u, v, -1)

    def remove_vertex(self, u: int) -> List[Tuple[int, int]]:
        """Delete ``u`` and incident edges; returns the removed edges."""
        removed = []
        for v in sorted(self._graph.neighbors(u)):
            self.remove_edge(u, v)
            removed.append((u, v))
        self._graph.remove_vertex(u)
        if u in self._nbr_worker_counts:
            del self._nbr_worker_counts[u]
            self._home_vertices[self._partitioner.worker_of(u)] -= 1
        self._guest_count.pop(u, None)
        return removed

    def _count_edge(self, u: int, v: int, delta: int) -> Tuple[int, int]:
        """Adjust neighbour-worker reference counts for one edge.

        Returns the number of guest copies created (``delta=+1``) or removed
        (``delta=-1``) at ``u`` and at ``v`` respectively (0 or 1 each).
        """
        changed_u = self._bump(u, self._partitioner.worker_of(v), delta)
        changed_v = self._bump(v, self._partitioner.worker_of(u), delta)
        self._home_degree_sum[self._partitioner.worker_of(u)] += delta
        self._home_degree_sum[self._partitioner.worker_of(v)] += delta
        return (changed_u, changed_v)

    def _bump(self, u: int, worker: int, delta: int) -> int:
        counts = self._nbr_worker_counts[u]
        old = counts.get(worker, 0)
        new = old + delta
        if new:
            counts[worker] = new
        else:
            counts.pop(worker, None)
        if worker == self._partitioner.worker_of(u):
            return 0  # the home worker never holds a guest copy
        if old == 0 and new > 0:
            self._guest_count[u] = self._guest_count.get(u, 0) + 1
            self._guest_copies[worker] += 1
            return 1  # guest copy created
        if old > 0 and new == 0:
            self._guest_count[u] = self._guest_count.get(u, 0) - 1
            self._guest_copies[worker] -= 1
            return 1  # guest copy destroyed
        return 0

    # ------------------------------------------------------------------
    # read-through helpers
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> Set[int]:
        return self._graph.neighbors(u)

    def degree(self, u: int) -> int:
        return self._graph.degree(u)

    def has_vertex(self, u: int) -> bool:
        return self._graph.has_vertex(u)

    def vertices(self) -> Iterator[int]:
        return self._graph.vertices()

    # ------------------------------------------------------------------
    # memory model
    # ------------------------------------------------------------------
    def structural_memory_bytes(self, state_bytes_of: Dict[int, int]) -> Dict[int, int]:
        """Modelled resident bytes per worker.

        ``state_bytes_of`` maps each vertex to the size of its algorithm
        state; a worker pays for its local vertices (overhead + state +
        adjacency) and for every guest copy it hosts (overhead + state).
        """
        per_worker: Dict[int, int] = {w: 0 for w in range(self.num_workers)}
        for u in self._graph.vertices():
            home = self._partitioner.worker_of(u)
            state = state_bytes_of.get(u, 0)
            per_worker[home] += (
                VERTEX_OVERHEAD_BYTES
                + state
                + self._graph.degree(u) * ADJACENCY_ENTRY_BYTES
            )
            for w in self.guest_machines(u):
                per_worker[w] += GUEST_OVERHEAD_BYTES + state
        return per_worker

    def structural_memory_bytes_uniform(self, state_bytes: int) -> Dict[int, int]:
        """Closed-form :meth:`structural_memory_bytes` for programs whose
        every state serializes to the same ``state_bytes`` — identical
        integers, computed from the per-worker aggregates in
        O(num_workers) instead of walking every vertex and guest copy."""
        return {
            w: (
                self._home_vertices[w] * (VERTEX_OVERHEAD_BYTES + state_bytes)
                + self._home_degree_sum[w] * ADJACENCY_ENTRY_BYTES
                + self._guest_copies[w] * (GUEST_OVERHEAD_BYTES + state_bytes)
            )
            for w in range(self.num_workers)
        }

    def worker_vertex_counts(self) -> Dict[int, int]:
        """Number of local vertices per worker (load-balance diagnostics)."""
        counts = {w: 0 for w in range(self.num_workers)}
        for u in self._graph.vertices():
            counts[self._partitioner.worker_of(u)] += 1
        return counts

    def replication_factor(self) -> float:
        """Average number of copies (home + guests) per vertex."""
        n = self._graph.num_vertices
        if n == 0:
            return 0.0
        total = sum(1 + self.num_guest_copies(u) for u in self._graph.vertices())
        return total / n
