"""Deterministic synthetic graph generators.

The paper evaluates on 16 real graphs (SNAP + WebGraph corpora).  Those are
unavailable offline, so :mod:`repro.graph.datasets` builds scaled-down
stand-ins from the generators in this module.  All generators take an
explicit ``seed`` and produce identical graphs across runs and platforms.

Generators
----------
- :func:`erdos_renyi` — G(n, m) uniform random graph.
- :func:`barabasi_albert` — preferential attachment (heavy-tailed degrees).
- :func:`chung_lu` — power-law expected-degree model with a target average
  degree, the closest match to the paper's web/social graphs.
- :func:`watts_strogatz` — small-world rewiring model.
- structured graphs (:func:`path_graph`, :func:`cycle_graph`,
  :func:`star_graph`, :func:`complete_graph`, :func:`complete_bipartite`)
  used heavily by the unit tests because their greedy MIS is known in
  closed form.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from repro.errors import WorkloadError
from repro.graph.dynamic_graph import DynamicGraph


def _empty_with_vertices(n: int) -> DynamicGraph:
    graph = DynamicGraph()
    for u in range(n):
        graph.add_vertex(u)
    return graph


def erdos_renyi(n: int, m: int, seed: int = 0) -> DynamicGraph:
    """Uniform random graph with exactly ``n`` vertices and ``m`` edges.

    Raises :class:`WorkloadError` if ``m`` exceeds the number of vertex pairs.
    """
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise WorkloadError(f"cannot place {m} edges in a {n}-vertex simple graph")
    rng = random.Random(seed)
    graph = _empty_with_vertices(n)
    placed: Set[Tuple[int, int]] = set()
    while len(placed) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in placed:
            continue
        placed.add(edge)
        graph.add_edge(*edge)
    return graph


def barabasi_albert(n: int, attach: int, seed: int = 0) -> DynamicGraph:
    """Preferential-attachment graph: each new vertex attaches to ``attach``
    existing vertices chosen proportionally to degree.

    The first ``attach + 1`` vertices form a clique seed.
    """
    if attach < 1:
        raise WorkloadError("attach must be >= 1")
    if n < attach + 1:
        raise WorkloadError(f"need at least {attach + 1} vertices for attach={attach}")
    rng = random.Random(seed)
    graph = _empty_with_vertices(n)
    # repeated-endpoint list implements preferential attachment in O(1)
    endpoints: List[int] = []
    seed_size = attach + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            graph.add_edge(u, v)
            endpoints.extend((u, v))
    for u in range(seed_size, n):
        targets: Set[int] = set()
        while len(targets) < attach:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        # sorted: the endpoints list feeds the RNG-indexed attachment, so
        # its order must not depend on set iteration
        for v in sorted(targets):
            graph.add_edge(u, v)
            endpoints.extend((u, v))
    return graph


def chung_lu(
    n: int, avg_degree: float, exponent: float = 2.5, seed: int = 0
) -> DynamicGraph:
    """Power-law expected-degree (Chung–Lu) graph.

    Vertex ``i`` gets weight ``w_i ∝ (i + 1)^(-1/(exponent-1))``, scaled so the
    expected average degree is ``avg_degree``; each candidate edge ``(u, v)``
    is included with probability ``min(1, w_u * w_v / sum_w)``.  Sampling uses
    the standard weighted edge-list trick so generation is near-linear in the
    number of produced edges.
    """
    if n < 2:
        return _empty_with_vertices(n)
    rng = random.Random(seed)
    gamma = 1.0 / (exponent - 1.0)
    weights = [(i + 1.0) ** (-gamma) for i in range(n)]
    total = sum(weights)
    scale = avg_degree * n / total
    weights = [w * scale for w in weights]
    total_w = sum(weights)
    graph = _empty_with_vertices(n)
    # Expected number of (ordered) candidate pairs is total_w; draw that many
    # weighted endpoint pairs.  This is the "fast Chung-Lu" approximation.
    target_edges = int(total_w / 2.0)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)

    def draw() -> int:
        x = rng.uniform(0.0, acc)
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    placed: Set[Tuple[int, int]] = set()
    attempts = 0
    max_attempts = max(20 * target_edges, 1000)
    while len(placed) < target_edges and attempts < max_attempts:
        attempts += 1
        u, v = draw(), draw()
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in placed:
            continue
        placed.add(edge)
        graph.add_edge(*edge)
    return graph


def watts_strogatz(n: int, k: int, beta: float, seed: int = 0) -> DynamicGraph:
    """Small-world graph: ring lattice of even degree ``k`` with rewiring
    probability ``beta``.
    """
    if k % 2 != 0 or k >= n:
        raise WorkloadError("k must be even and smaller than n")
    rng = random.Random(seed)
    graph = _empty_with_vertices(n)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    # Rewire each lattice edge with probability beta.
    for u, v in list(graph.sorted_edges()):
        if rng.random() < beta:
            candidates = [
                w for w in range(n) if w != u and not graph.has_edge(u, w)
            ]
            if candidates:
                graph.remove_edge(u, v)
                graph.add_edge(u, rng.choice(candidates))
    return graph


def path_graph(n: int) -> DynamicGraph:
    """Path ``0 - 1 - ... - (n-1)``."""
    return DynamicGraph.from_edges(
        ((i, i + 1) for i in range(n - 1)), vertices=range(n)
    )


def cycle_graph(n: int) -> DynamicGraph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise WorkloadError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return DynamicGraph.from_edges(edges)


def star_graph(n_leaves: int) -> DynamicGraph:
    """Star: centre ``0`` connected to leaves ``1..n_leaves``."""
    return DynamicGraph.from_edges((0, i) for i in range(1, n_leaves + 1))


def complete_graph(n: int) -> DynamicGraph:
    """Clique on ``n`` vertices."""
    graph = _empty_with_vertices(n)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def complete_bipartite(a: int, b: int) -> DynamicGraph:
    """Complete bipartite graph ``K(a, b)``; left side is ``0..a-1``."""
    graph = _empty_with_vertices(a + b)
    for u in range(a):
        for v in range(a, a + b):
            graph.add_edge(u, v)
    return graph


def with_exact_edges(graph: DynamicGraph, target_edges: int, seed: int = 0) -> DynamicGraph:
    """Adjust ``graph`` in place to exactly ``target_edges`` edges.

    Excess edges are removed uniformly at random; missing edges are added
    uniformly at random between existing vertices.  Deterministic under
    ``seed``.  Used by the dataset stand-ins, whose memory-model behaviour
    (Table IV's OOM pattern) depends on exact sizes.
    """
    rng = random.Random(seed)
    n = graph.num_vertices
    max_edges = n * (n - 1) // 2
    if target_edges > max_edges:
        raise WorkloadError(
            f"cannot fit {target_edges} edges into {n} vertices"
        )
    current = graph.num_edges
    if current > target_edges:
        edges = graph.sorted_edges()
        rng.shuffle(edges)
        for u, v in edges[: current - target_edges]:
            graph.remove_edge(u, v)
    elif current < target_edges:
        vertices = graph.sorted_vertices()
        missing = target_edges - current
        while missing:
            u = vertices[rng.randrange(n)]
            v = vertices[rng.randrange(n)]
            if u == v or graph.has_edge(u, v):
                continue
            graph.add_edge(u, v)
            missing -= 1
    return graph


def paper_example_graph() -> DynamicGraph:
    """The 6-vertex running example of the paper's Figures 1-3.

    ``u1..u6`` map to ids ``1..6``: u2 is adjacent to u1 and u3; u4 is
    adjacent to u3, u5, u6.  The degree-order greedy MIS is
    ``{u1, u3, u5, u6}`` before updates.
    """
    return DynamicGraph.from_edges([(1, 2), (2, 3), (3, 4), (4, 5), (4, 6)])
