"""In-memory dynamic undirected graph.

:class:`DynamicGraph` is the single-image graph substrate every algorithm in
this library runs on.  It stores adjacency as hash sets, so edge insertion,
deletion and membership tests are expected O(1), and it keeps vertex degrees
implicitly (``len`` of the adjacency set).  The distributed engines wrap a
``DynamicGraph`` with a partitioning layer (:mod:`repro.graph.distributed_graph`).

Self-loops are rejected because an independent set can never contain a
self-looped vertex and the paper's graphs are simple.  Parallel edges are
rejected for the same reason.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph.rank_cache import RankedAdjacency


def normalize_edge(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical ``(min, max)`` form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class DynamicGraph:
    """An undirected simple graph supporting efficient dynamic updates.

    Vertices are integers.  The class deliberately exposes a small, explicit
    API; algorithm-specific state (MIS membership, ranks, ...) lives with the
    algorithms, never on the graph.

    Example
    -------
    >>> g = DynamicGraph.from_edges([(1, 2), (2, 3)])
    >>> g.degree(2)
    2
    >>> g.remove_edge(1, 2)
    >>> sorted(g.neighbors(2))
    [3]
    """

    __slots__ = (
        "_adj", "_rank_caches", "_default_rank_cache", "_mutation_observers"
    )

    def __init__(self) -> None:
        self._adj: Dict[int, Set[int]] = {}
        # rank-ordered adjacency caches kept in lock-step with mutations
        # (see repro.graph.rank_cache); attached lazily, so plain graphs
        # pay nothing beyond the empty-list check per update
        self._rank_caches: List[RankedAdjacency] = []
        self._default_rank_cache: Optional[RankedAdjacency] = None
        # mutation observers (e.g. the process runtime's replica shipper);
        # notified after each committed mutation, same lazy-attach economy
        # as the rank caches
        self._mutation_observers: List[Any] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[int, int]], vertices: Iterable[int] = ()
    ) -> "DynamicGraph":
        """Build a graph from an edge iterable (plus optional isolated vertices).

        Duplicate edges in the input are tolerated (applied once); self-loops
        raise :class:`SelfLoopError`.
        """
        graph = cls()
        for v in vertices:
            graph.add_vertex(v)
        for u, v in edges:
            if not graph.has_vertex(u):
                graph.add_vertex(u)
            if not graph.has_vertex(v):
                graph.add_vertex(v)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
        return graph

    def copy(self) -> "DynamicGraph":
        """Return a deep copy (adjacency sets and rank caches not shared)."""
        clone = DynamicGraph()
        clone._adj = {u: set(nbrs) for u, nbrs in self._adj.items()}
        return clone

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(self, u: int) -> None:
        """Add an isolated vertex.  Adding an existing vertex is a no-op."""
        if u not in self._adj:
            self._adj[u] = set()
            for obs in self._mutation_observers:
                obs.on_add_vertex(u)

    def remove_vertex(self, u: int) -> List[Tuple[int, int]]:
        """Remove ``u`` and all incident edges.

        Returns the list of removed edges (useful for maintenance algorithms
        that must process the implied edge deletions).

        Observers receive a single ``on_remove_vertex`` event covering the
        implied edge deletions (replicas replay it through their own
        ``remove_vertex``), so the incident ``remove_edge`` calls below are
        not notified separately.
        """
        nbrs = self._require(u)
        removed = [(u, v) for v in sorted(nbrs)]
        observers = self._mutation_observers
        if self._rank_caches:
            # route through remove_edge so every incident deletion repairs
            # the attached rank caches (neighbour degrees all shift)
            self._mutation_observers = ()
            try:
                for _, v in removed:
                    self.remove_edge(u, v)
            finally:
                self._mutation_observers = observers
            del self._adj[u]
            for cache in self._rank_caches:
                cache.on_remove_vertex(u)
        else:
            for v in nbrs:
                self._adj[v].discard(u)
            del self._adj[u]
        for obs in observers:
            obs.on_remove_vertex(u)
        return removed

    def has_vertex(self, u: int) -> bool:
        return u in self._adj

    def vertex_keys(self):
        """Live vertex-id keys view — C-level membership and set ops."""
        return self._adj.keys()

    def vertices(self) -> Iterator[int]:
        """Iterate over all vertex ids (no ordering guarantee)."""
        return iter(self._adj)

    def sorted_vertices(self) -> List[int]:
        """All vertex ids in ascending order (deterministic iteration)."""
        return sorted(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``(u, v)``; endpoints are created if missing.

        Raises
        ------
        SelfLoopError
            if ``u == v``.
        EdgeExistsError
            if the edge is already present.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            raise EdgeExistsError(u, v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        for cache in self._rank_caches:
            cache.on_add_edge(u, v)
        for obs in self._mutation_observers:
            obs.on_add_edge(u, v)

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``.

        Raises
        ------
        EdgeNotFoundError
            if either endpoint or the edge itself is missing.
        """
        if u not in self._adj or v not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        for cache in self._rank_caches:
            cache.on_remove_edge(u, v)
        for obs in self._mutation_observers:
            obs.on_remove_edge(u, v)

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges once each, in canonical ``(u < v)`` form."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def sorted_edges(self) -> List[Tuple[int, int]]:
        """All edges in canonical form, sorted (deterministic iteration)."""
        return sorted(self.edges())

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    # ------------------------------------------------------------------
    # neighbourhoods
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> Set[int]:
        """The neighbour set of ``u`` (a live view; do not mutate)."""
        return self._require(u)

    def degree(self, u: int) -> int:
        """Current degree of ``u`` (the paper's ``deg(u, G)``)."""
        return len(self._require(u))

    def average_degree(self) -> float:
        """``2m / n`` — the paper's ``deg_avg`` dataset statistic."""
        if not self._adj:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    def max_degree(self) -> int:
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # rank-ordered adjacency (the paper's ≺ scan order, cached)
    # ------------------------------------------------------------------
    def rank_cache(self) -> RankedAdjacency:
        """The shared ``(degree, id)``-ordered adjacency cache.

        Created on first use — with a single bulk build of every ranked
        list (the engines' first run activates all vertices anyway, so the
        bulk pass never sorts a list lazy materialization wouldn't) — and
        kept in lock-step with every mutation; all engines running on this
        graph share it.
        """
        if self._default_rank_cache is None:
            self._default_rank_cache = RankedAdjacency(self)
            self._rank_caches.append(self._default_rank_cache)
            self._default_rank_cache.build_all()
        return self._default_rank_cache

    def ranked_neighbors(self, u: int) -> List[int]:
        """Neighbours of ``u`` in ascending ``(degree, id)`` order (cached;
        a live view — do not mutate)."""
        return self.rank_cache().ranked_neighbors(u)

    def attach_rank_cache(
        self, key: Callable[[int], Any], bulk: bool = False
    ) -> RankedAdjacency:
        """Attach an extra cache ordered by a custom rank key (e.g. the
        weighted ``≺_w``); it is repaired on every subsequent mutation.

        ``bulk=True`` materializes every list immediately via
        :meth:`RankedAdjacency.build_all` (one counted build); the default
        keeps lazy materialization, which is the right economy for caches
        re-attached per run over small affected sets."""
        cache = RankedAdjacency(self, key=key)
        self._rank_caches.append(cache)
        if bulk:
            cache.build_all()
        return cache

    def detach_rank_cache(self, cache: RankedAdjacency) -> None:
        """Stop repairing ``cache`` (no-op if it is not attached)."""
        if cache in self._rank_caches:
            self._rank_caches.remove(cache)
        if cache is self._default_rank_cache:
            self._default_rank_cache = None

    # ------------------------------------------------------------------
    # mutation observers
    # ------------------------------------------------------------------
    def attach_mutation_observer(self, observer: Any) -> None:
        """Notify ``observer`` after every committed mutation.

        The observer implements ``on_add_vertex(u)``, ``on_add_edge(u, v)``,
        ``on_remove_edge(u, v)`` and ``on_remove_vertex(u)``; the process
        runtime uses this to replay the maintenance driver's updates on
        each worker replica.  Attaching twice is a no-op.
        """
        if observer not in self._mutation_observers:
            self._mutation_observers.append(observer)

    def detach_mutation_observer(self, observer: Any) -> None:
        """Stop notifying ``observer`` (no-op if it is not attached)."""
        if observer in self._mutation_observers:
            self._mutation_observers.remove(observer)

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def _require(self, u: int) -> Set[int]:
        try:
            return self._adj[u]
        except KeyError:
            raise VertexNotFoundError(u) from None

    def __contains__(self, u: int) -> bool:
        return u in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"deg_avg={self.average_degree():.2f})"
        )
