"""Scaled-down stand-ins for the paper's 16 evaluation datasets.

The paper evaluates on real graphs from SNAP and the Laboratory for Web
Algorithmics (Table I), up to ~1 billion vertices / 47 billion edges.  Those
corpora are unavailable offline and far beyond a single-process simulator, so
this module provides deterministic synthetic stand-ins that keep each
dataset's *tag* (SL, AM, ..., GSH) and its qualitative degree distribution
(power-law via Chung–Lu / Barabási–Albert) at a scale of hundreds to
thousands of vertices.

Two deliberate deviations from simple proportional scaling, both documented
in DESIGN.md §4:

1. **Exact edge counts.**  Each stand-in is trimmed/padded to an exact
   ``m`` (:func:`repro.graph.generators.with_exact_edges`) because the
   Table IV experiment reproduces the paper's out-of-memory pattern through
   a *modelled* memory budget (:mod:`repro.serial.memory_model`), and the
   pass/fail margins depend on sizes.
2. **Ordering by failure pattern, not by Table I ratio.**  The paper's sizes
   span a factor of ~90000; a laptop-scale suite cannot.  The stand-in sizes
   are chosen so that, under the scaled single-machine budget, exactly the
   paper's Table IV failures reproduce: DGTwo OOMs from SK-2005 on
   (except FR, where the paper reports a result), DTSwap from UK-2006 on,
   ARW and LazyDTSwap from UK-2014 on, while the distributed algorithms
   handle everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.graph import generators
from repro.graph.dynamic_graph import DynamicGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one stand-in dataset.

    ``paper_vertices`` / ``paper_edges`` record the real dataset's size from
    Table I for documentation; ``n`` / ``m`` define the stand-in exactly.
    """

    tag: str
    name: str
    paper_vertices: int
    paper_edges: int
    n: int
    m: int
    model: str  # "chung_lu" | "barabasi_albert"
    group: str  # "small" | "large"
    seed: int

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.m / self.n if self.n else 0.0

    def build(self) -> DynamicGraph:
        """Materialize the stand-in graph deterministically."""
        if self.model == "chung_lu":
            graph = generators.chung_lu(
                self.n, self.avg_degree, exponent=2.3, seed=self.seed
            )
        elif self.model == "barabasi_albert":
            attach = max(1, round(self.avg_degree / 2))
            graph = generators.barabasi_albert(self.n, attach, seed=self.seed)
        else:
            raise WorkloadError(f"unknown generator model {self.model!r}")
        return generators.with_exact_edges(graph, self.m, seed=self.seed + 7)


# Table I of the paper with stand-in sizes (see module docstring for how the
# n/m values were chosen).  Seeds are fixed per tag so every experiment sees
# the same stand-in.
_SPECS: Tuple[DatasetSpec, ...] = (
    DatasetSpec("SL", "Slashdot", 82_168, 504_230, 800, 4_900, "chung_lu", "small", 101),
    DatasetSpec("AM", "Amazon", 334_863, 925_872, 1_200, 3_300, "chung_lu", "small", 102),
    DatasetSpec("GO", "Google", 875_713, 4_322_051, 1_600, 7_900, "chung_lu", "small", 103),
    DatasetSpec("DB", "Dblp", 986_207, 13_414_472, 1_800, 24_500, "chung_lu", "small", 104),
    DatasetSpec("SKI", "Skitter", 1_696_415, 11_095_298, 2_000, 13_000, "chung_lu", "small", 105),
    DatasetSpec("WK", "Wikitalk", 2_394_385, 4_659_565, 2_200, 4_300, "chung_lu", "small", 106),
    DatasetSpec("OR", "Orkut", 2_997_167, 106_349_209, 2_400, 26_000, "barabasi_albert", "small", 107),
    DatasetSpec("UK02", "UK-2002", 18_520_343, 261_787_258, 2_500, 27_000, "chung_lu", "large", 108),
    DatasetSpec("TW", "Twitter", 41_652_230, 1_468_365_182, 2_000, 27_500, "barabasi_albert", "large", 109),
    DatasetSpec("SK05", "SK-2005", 50_636_154, 1_810_063_330, 1_900, 38_500, "chung_lu", "large", 110),
    DatasetSpec("FR", "Friendster", 65_608_366, 1_806_067_135, 2_600, 27_000, "barabasi_albert", "large", 111),
    DatasetSpec("UK06", "UK-2006", 92_734_067, 2_797_759_396, 2_900, 44_000, "chung_lu", "large", 112),
    DatasetSpec("UK07", "UK-2007", 109_499_800, 3_448_528_200, 3_200, 50_000, "chung_lu", "large", 113),
    DatasetSpec("UK14", "UK-2014", 787_801_471, 47_614_527_250, 4_500, 90_000, "chung_lu", "large", 114),
    DatasetSpec("CW", "Clueweb12", 978_409_098, 42_574_107_469, 5_000, 95_000, "chung_lu", "large", 115),
    DatasetSpec("GSH", "GSH-2015", 988_490_691, 33_877_399_152, 5_200, 88_000, "chung_lu", "large", 116),
)

_BY_TAG: Dict[str, DatasetSpec] = {spec.tag: spec for spec in _SPECS}

_CACHE: Dict[str, DynamicGraph] = {}


def dataset_tags() -> List[str]:
    """All 16 dataset tags in Table I order."""
    return [spec.tag for spec in _SPECS]


def dataset_spec(tag: str) -> DatasetSpec:
    """The spec for ``tag`` (raises :class:`WorkloadError` if unknown)."""
    try:
        return _BY_TAG[tag]
    except KeyError:
        raise WorkloadError(
            f"unknown dataset tag {tag!r}; known: {', '.join(dataset_tags())}"
        ) from None


def load_dataset(tag: str, fresh: bool = True) -> DynamicGraph:
    """Build (or fetch from cache) the stand-in graph for ``tag``.

    Returns a private copy safe to mutate by default; pass ``fresh=False``
    for the shared cached instance (read-only use).
    """
    spec = dataset_spec(tag)
    if tag not in _CACHE:
        _CACHE[tag] = spec.build()
    return _CACHE[tag].copy() if fresh else _CACHE[tag]


def small_datasets() -> List[str]:
    """Tags in the paper's small group."""
    return [spec.tag for spec in _SPECS if spec.group == "small"]


def large_datasets() -> List[str]:
    """Tags in the paper's large group."""
    return [spec.tag for spec in _SPECS if spec.group == "large"]
