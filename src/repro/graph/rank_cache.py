"""Rank-ordered cached adjacency (the paper's ``≺`` scan order).

Every scan loop in OIMIS/DOIMIS examines a vertex's neighbours looking for a
*dominating* neighbour — one that precedes the vertex under the total order
``≺`` = ``(degree, id)``.  Scanning in ascending ``≺`` order makes the
Algorithm 2 early-``break`` fire at the first dominating in-neighbour (and
lets the scan stop outright once a neighbour no longer precedes the vertex),
but a naive implementation re-sorts the adjacency set on every ``compute``
call — O(d log d) per active vertex per superstep.

:class:`RankedAdjacency` caches per-vertex neighbour lists sorted by a rank
key and repairs them *incrementally* under graph updates: an edge update
``(u, v)`` changes only the keys of ``u`` and ``v``, so it dirties the two
endpoint lists (membership changed) plus, for each *materialized* list of a
neighbour ``w``, the single entry whose relative rank key changed — repaired
with one bisect-remove plus one bisect-insert instead of a full re-sort.
Lists are materialized lazily (only queried vertices pay memory), and the
flattened id view handed to scan loops is cached until its list changes.

The key function is pluggable so the weighted extension can keep a cache in
its GWMIN order ``≺_w`` (see :mod:`repro.core.weighted`): any key that
depends only on a vertex's own degree and per-vertex attributes works —
degree shifts are repaired automatically on edge updates, attribute shifts
(e.g. a weight change) via :meth:`refresh_key`.

Caches register with their :class:`~repro.graph.dynamic_graph.DynamicGraph`,
which notifies them from every mutation path (``add_edge`` / ``remove_edge``
/ ``remove_vertex``, and therefore also every
:class:`~repro.graph.distributed_graph.DistributedGraph` update op).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Callable, Dict, List, Optional, Tuple


def degree_rank_key(graph: Any) -> Callable[[int], Tuple[int, int]]:
    """The paper's ``≺`` key: ``(degree, id)``, ascending."""

    def key(u: int) -> Tuple[int, int]:
        return (graph.degree(u), u)

    return key


class RankedAdjacency:
    """Per-vertex neighbour lists kept sorted by a rank key.

    Do not mutate the returned lists: like
    :meth:`~repro.graph.dynamic_graph.DynamicGraph.neighbors`, they are live
    views owned by the cache.

    Invariants (checked by ``tests/test_rank_cache.py`` property tests):

    - ``_keys[u]``, when present, equals the current ``key(u)``;
    - every materialized ``_entries[w]`` equals
      ``sorted((key(v), v) for v in neighbors(w))``.

    The counters :attr:`repairs` (single-entry repositions) and
    :attr:`rebuilds` feed the perf benchmarks.  ``rebuilds`` counts *build
    events*, not vertices: one lazy per-vertex materialization adds one,
    and one :meth:`build_all` bulk pass adds one regardless of how many
    lists it sorts.
    """

    __slots__ = ("_graph", "_key_of", "_keys", "_entries", "_ids",
                 "repairs", "rebuilds")

    def __init__(self, graph: Any, key: Optional[Callable[[int], Any]] = None):
        self._graph = graph
        self._key_of = key if key is not None else degree_rank_key(graph)
        #: published rank key per vertex (only vertices seen by some list)
        self._keys: Dict[int, Any] = {}
        #: vertex -> sorted [(key, neighbour)] (materialized lazily)
        self._entries: Dict[int, List[Tuple[Any, int]]] = {}
        #: vertex -> flattened neighbour-id view of ``_entries``
        self._ids: Dict[int, List[int]] = {}
        self.repairs = 0
        self.rebuilds = 0

    @property
    def graph(self) -> Any:
        return self._graph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def ranked_neighbors(self, u: int) -> List[int]:
        """Neighbours of ``u`` in ascending rank order (cached; do not mutate)."""
        ids = self._ids.get(u)
        if ids is None:
            entries = self._entries.get(u)
            if entries is None:
                entries = self._materialize(u)
            ids = [v for _, v in entries]
            self._ids[u] = ids
        return ids

    def ranked_entries(self, u: int) -> List[Tuple[Any, int]]:
        """``(key, neighbour)`` pairs in rank order (for bisect callers)."""
        entries = self._entries.get(u)
        if entries is None:
            entries = self._materialize(u)
        return entries

    def rank_key(self, u: int) -> Any:
        """Current rank key of ``u`` (published if not yet seen)."""
        key = self._keys.get(u)
        if key is None:
            key = self._key_of(u)
            self._keys[u] = key
        return key

    def build_all(self) -> None:
        """Materialize every vertex's ranked list in one bulk pass.

        Publishes all keys first, then sorts each adjacency list once —
        the same end state lazy materialization reaches after touching
        every vertex, but the whole pass counts as **one** bulk build on
        :attr:`rebuilds` instead of one rebuild per vertex (the counter
        semantics the perf benchmarks assert: ``rebuilds`` = bulk builds +
        lazy per-vertex materializations).  Already-materialized lists are
        kept as-is; vertices added after the pass still materialize lazily.
        """
        graph = self._graph
        keys = self._keys
        key_of = self._key_of
        entries_map = self._entries
        for u in graph.vertices():
            if u not in keys:
                keys[u] = key_of(u)
        # per-vertex sorts are independent; set-iteration order is erased
        # by each sort, so the dict iteration below cannot leak ordering
        for u in graph.vertices():
            if u not in entries_map:
                entries_map[u] = sorted(
                    (keys[v], v) for v in graph.neighbors(u)
                )
        self.rebuilds += 1

    def _materialize(self, u: int) -> List[Tuple[Any, int]]:
        keys = self._keys
        key_of = self._key_of
        entries = []
        # set-iteration order is erased by the sort below
        for v in self._graph.neighbors(u):  # repro-lint: disable=D1
            key = keys.get(v)
            if key is None:
                key = key_of(v)
                keys[v] = key
            entries.append((key, v))
        entries.sort()
        self._entries[u] = entries
        self.rebuilds += 1
        return entries

    # ------------------------------------------------------------------
    # incremental repair (called by DynamicGraph after its own mutation)
    # ------------------------------------------------------------------
    def refresh_key(self, u: int) -> None:
        """Re-derive ``u``'s key and reposition ``u`` in every materialized
        neighbour list whose relative order it changed."""
        old = self._keys.get(u)
        if old is None:
            return  # never published: u appears in no materialized list
        new = self._key_of(u)
        if new == old:
            return
        self._keys[u] = new
        entries_map = self._entries
        ids = self._ids
        # per-list repairs are independent, so visit order cannot matter
        for w in self._graph.neighbors(u):  # repro-lint: disable=D1
            entries = entries_map.get(w)
            if entries is None:
                continue
            i = bisect_left(entries, (old, u))
            if i < len(entries) and entries[i] == (old, u):
                del entries[i]
                insort(entries, (new, u))
                ids.pop(w, None)
                self.repairs += 1

    def _insert_member(self, owner: int, member: int) -> None:
        entries = self._entries.get(owner)
        if entries is None:
            return
        insort(entries, (self.rank_key(member), member))
        self._ids.pop(owner, None)

    def _remove_member(self, owner: int, member: int) -> None:
        entries = self._entries.get(owner)
        if entries is None:
            return
        key = self._keys.get(member)
        if key is not None:
            i = bisect_left(entries, (key, member))
            if i < len(entries) and entries[i] == (key, member):
                del entries[i]
                self._ids.pop(owner, None)
                return
        # key never published while the member sat in a materialized list
        # would break the invariant; fall back defensively to a rebuild
        self._entries.pop(owner, None)  # pragma: no cover - defensive
        self._ids.pop(owner, None)  # pragma: no cover - defensive

    # -- mutation notifications (graph already mutated when these run) ---
    def on_add_edge(self, u: int, v: int) -> None:
        # Reposition the endpoints first (their keys changed), then insert
        # the new memberships under the fresh keys.  During the repositioning
        # sweep the other endpoint's list cannot yet contain the mover, so
        # the equality guard in refresh_key skips it cleanly.
        self.refresh_key(u)
        self.refresh_key(v)
        self._insert_member(u, v)
        self._insert_member(v, u)

    def on_remove_edge(self, u: int, v: int) -> None:
        # Drop memberships under the *old* keys, then reposition.
        self._remove_member(u, v)
        self._remove_member(v, u)
        self.refresh_key(u)
        self.refresh_key(v)

    def on_remove_vertex(self, u: int) -> None:
        """``u`` is already isolated (incident edges went via on_remove_edge)."""
        self._entries.pop(u, None)
        self._ids.pop(u, None)
        self._keys.pop(u, None)
