"""Graph update operations.

The paper's dynamic workload is a sequence of edge insertions and deletions
(Section VII), plus vertex insertion/deletion handled as batches of incident
edge updates (Section VI).  This module defines the operation types, the
batch container, and helpers to apply operations to a
:class:`~repro.graph.dynamic_graph.DynamicGraph` while reporting the affected
vertex set of Definition 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Set, Tuple, Union

from repro.errors import WorkloadError
from repro.graph.dynamic_graph import DynamicGraph, normalize_edge


@dataclass(frozen=True)
class EdgeInsertion:
    """Insert edge ``(u, v)`` — the paper's ``(ins, u, v)``."""

    u: int
    v: int

    @property
    def edge(self) -> Tuple[int, int]:
        return normalize_edge(self.u, self.v)

    def inverse(self) -> "EdgeDeletion":
        """The operation that undoes this one."""
        return EdgeDeletion(self.u, self.v)


@dataclass(frozen=True)
class EdgeDeletion:
    """Delete edge ``(u, v)`` — the paper's ``(del, u, v)``."""

    u: int
    v: int

    @property
    def edge(self) -> Tuple[int, int]:
        return normalize_edge(self.u, self.v)

    def inverse(self) -> EdgeInsertion:
        return EdgeInsertion(self.u, self.v)


@dataclass(frozen=True)
class VertexInsertion:
    """Insert vertex ``u`` together with its incident edges.

    Per Section VI of the paper, a vertex insertion is processed by first
    adding ``u`` to the MIS (``u.in = true``) and then applying all incident
    edges as one batch.
    """

    u: int
    neighbors: Tuple[int, ...] = ()

    def edge_updates(self) -> List[EdgeInsertion]:
        return [EdgeInsertion(self.u, v) for v in self.neighbors]


@dataclass(frozen=True)
class VertexDeletion:
    """Delete vertex ``u``: batch-delete incident edges, then drop ``u``."""

    u: int


EdgeUpdate = Union[EdgeInsertion, EdgeDeletion]
UpdateOp = Union[EdgeInsertion, EdgeDeletion, VertexInsertion, VertexDeletion]


class UpdateBatch:
    """An ordered batch of edge updates (the paper's ``OP``).

    Iterating yields the operations in insertion order.  The batch also
    exposes :meth:`touched_vertices` (terminal vertices of all operations)
    used to seed the affected set of Definition 4.1 / Section VI.
    """

    def __init__(self, operations: Iterable[EdgeUpdate] = ()) -> None:
        self._ops: List[EdgeUpdate] = list(operations)
        for op in self._ops:
            if not isinstance(op, (EdgeInsertion, EdgeDeletion)):
                raise WorkloadError(
                    f"UpdateBatch only holds edge updates, got {type(op).__name__}"
                )

    def append(self, op: EdgeUpdate) -> None:
        if not isinstance(op, (EdgeInsertion, EdgeDeletion)):
            raise WorkloadError(
                f"UpdateBatch only holds edge updates, got {type(op).__name__}"
            )
        self._ops.append(op)

    def touched_vertices(self) -> Set[int]:
        """All terminal vertices of the batch's operations."""
        touched: Set[int] = set()
        for op in self._ops:
            touched.add(op.u)
            touched.add(op.v)
        return touched

    def inverse(self) -> "UpdateBatch":
        """The batch that undoes this one (reversed order, inverted ops)."""
        return UpdateBatch(op.inverse() for op in reversed(self._ops))

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index: int) -> EdgeUpdate:
        return self._ops[index]

    def __repr__(self) -> str:
        ins = sum(1 for op in self._ops if isinstance(op, EdgeInsertion))
        return f"UpdateBatch(len={len(self._ops)}, insertions={ins}, deletions={len(self._ops) - ins})"


def apply_edge_update(graph: DynamicGraph, op: EdgeUpdate) -> None:
    """Apply a single edge update to ``graph`` in place."""
    if isinstance(op, EdgeInsertion):
        graph.add_edge(op.u, op.v)
    elif isinstance(op, EdgeDeletion):
        graph.remove_edge(op.u, op.v)
    else:  # pragma: no cover - defensive
        raise WorkloadError(f"unknown edge update {op!r}")


def affected_vertices(graph: DynamicGraph, touched: Iterable[int]) -> Set[int]:
    """The affected vertex set of Definition 4.1 on the *updated* graph.

    ``touched`` is the set of terminal vertices of the update operations; the
    affected set is those vertices plus all their current neighbours.
    Vertices that were removed from the graph (vertex deletion) are skipped.
    """
    affected: Set[int] = set()
    for u in touched:
        if not graph.has_vertex(u):
            continue
        affected.add(u)
        affected.update(graph.neighbors(u))
    return affected


def apply_batch(graph: DynamicGraph, batch: Sequence[EdgeUpdate]) -> Set[int]:
    """Apply a batch of edge updates and return the affected vertex set.

    The affected set is computed on the updated graph per Section VI:
    every terminal vertex of every operation, plus their neighbours after
    all updates are applied.
    """
    touched: Set[int] = set()
    for op in batch:
        apply_edge_update(graph, op)
        touched.add(op.u)
        touched.add(op.v)
    return affected_vertices(graph, touched)
