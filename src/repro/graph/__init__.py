"""Graph substrate: dynamic storage, partitioned views, generators, I/O."""

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.distributed_graph import DistributedGraph
from repro.graph.rank_cache import RankedAdjacency, degree_rank_key
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    UpdateBatch,
    VertexDeletion,
    VertexInsertion,
    affected_vertices,
    apply_batch,
    apply_edge_update,
)

__all__ = [
    "DistributedGraph",
    "DynamicGraph",
    "EdgeDeletion",
    "EdgeInsertion",
    "RankedAdjacency",
    "UpdateBatch",
    "degree_rank_key",
    "VertexDeletion",
    "VertexInsertion",
    "affected_vertices",
    "apply_batch",
    "apply_edge_update",
]
