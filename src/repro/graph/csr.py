"""Array-native (CSR) partition representation for the sweep hot path.

The dict-path engines walk Python sets/dicts vertex by vertex — correct,
and the bit-identity reference, but the gating cost on the Fig. 10/11
workloads.  This module keeps a flat-array mirror of one
:class:`~repro.graph.distributed_graph.DistributedGraph` partition-local
view so a whole superstep sweep becomes a few vectorized numpy passes:

- ``ids``      — every vertex id, ascending ``int64`` (row order);
- ``keys``     — the paper's total order ``≺`` packed into one ``int64``
  per vertex: ``(degree << 32) | id``, which compares exactly like the
  ``(degree, id)`` tuple for ``0 <= id < 2^32`` and ``degree < 2^31``;
- ``indptr`` / ``nbr`` — CSR adjacency, each row holding the neighbour
  *row indices* sorted ascending by the neighbour's ``keys`` entry (the
  rank-ordered scan of Algorithm 2, precomputed);
- ``home``     — the owning logical worker per row (vectorized
  multiplicative hash for the stock :class:`HashPartitioner`);
- ``in_``      — the packed membership bitmap (one ``bool`` per row),
  synced from the engine's state dict at run entry and updated in place
  at every barrier commit.

The mirror registers as a :class:`DynamicGraph` mutation observer (the
same protocol the rank caches and the process runtime use) and repairs
itself incrementally: an edge update re-sorts only the rows whose content
or order can have changed (the endpoints, plus every row containing an
endpoint — their ``keys`` moved); vertex insertion/removal schedules a
full rebuild.  ``ensure()`` settles all pending repairs before a run.

For the multi-process runtime the arrays are published once into a single
``multiprocessing.shared_memory`` segment; worker processes map it
(zero-copy) and per-barrier frames shrink to the active row indices down
and compact typed delta arrays back — no pickled state dicts, no
activation-request object graphs.  The master's bitmap *is* the shared
view after publication, so barrier commits propagate without reshipping.

numpy is an optional dependency: importing this module without it is
fine; constructing a :class:`CSRPartition` raises a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

try:  # numpy is optional at import time (CI lint jobs, minimal installs)
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

#: env flag consulted when an engine/maintainer is built without an
#: explicit ``representation=`` argument
REPRESENTATION_ENV = "REPRO_REPRESENTATION"

_REPRESENTATIONS = ("dict", "csr")


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable."""
    return np is not None


def resolve_representation(value: Optional[str]) -> str:
    """Resolve an engine's ``representation=`` argument.

    ``None`` defers to the ``REPRO_REPRESENTATION`` environment variable
    (default ``"dict"``); explicit values are validated.  Choosing
    ``"csr"`` without numpy installed raises immediately — a silent
    fallback would invalidate any speedup comparison.
    """
    if value is None:
        import os

        value = os.environ.get(REPRESENTATION_ENV) or "dict"
    if value not in _REPRESENTATIONS:
        raise ValueError(
            f"unknown representation {value!r}: expected one of "
            f"{_REPRESENTATIONS}"
        )
    if value == "csr" and np is None:
        raise RuntimeError(
            "representation='csr' requires numpy, which is not installed"
        )
    return value


@dataclass
class CSRSweepExtras:
    """Typed delta arrays a CSR fast-path sweep hands to the barrier.

    All four are numpy arrays over *row indices* of the partition's CSR
    arrays (not vertex ids); ``req_src``/``req_tgt`` are aligned pairs,
    one entry per raw activation request (duplicates preserved — the
    engine's ``messages`` meter counts requests, not targets).
    """

    changed_idx: Any  # int64[k] rows whose state flipped, ascending
    changed_val: Any  # bool[k]  their new membership values
    req_src: Any  # int64[r] activation source rows (non-decreasing)
    req_tgt: Any  # int64[r] activation target rows


class CSRPartition:
    """Flat-array mirror of a distributed partition, repaired under
    mutations via the graph's observer protocol (see module docstring)."""

    def __init__(self, dgraph) -> None:
        if np is None:
            raise RuntimeError(
                "CSRPartition requires numpy, which is not installed"
            )
        self._dgraph = dgraph
        self._graph = dgraph.graph
        self.ids = None
        self.keys = None
        self.indptr = None
        self.nbr = None
        self.home = None
        self.in_ = None
        self._index: Dict[int, int] = {}
        self._ids_list: List[int] = []
        #: bumped whenever ids/keys/indptr/nbr/home change (repairs and
        #: rebuilds both); the shared-memory publisher keys off it
        self.structure_version = 0
        self.rebuilds = 0
        self.repairs = 0
        self._needs_rebuild = True
        self._dirty_keys: set = set()
        #: per-row sorted badge (uint8): rows whose members are current
        #: but whose rank order may be stale carry 0 and re-sort lazily on
        #: first scan (see :meth:`freshen`)
        self._row_fresh = None
        # shared-memory publication state
        self._shm = None
        self._shm_epoch = 0
        self._shm_meta = None
        self._published_version = -1
        self._bitmap_in_shm = False
        # epoch pinning (snapshot read path): refcounts per segment name
        # and the retired-but-still-pinned segments awaiting their last
        # reader (unlink is deferred until the count drops to zero)
        self._pins: Dict[str, int] = {}
        self._retired: Dict[str, Any] = {}

    # -- attachment -----------------------------------------------------
    @classmethod
    def attach(cls, dgraph) -> "CSRPartition":
        """The (cached) CSR mirror of ``dgraph``, observer-attached."""
        part = getattr(dgraph, "_csr_partition", None)
        if part is None:
            part = cls(dgraph)
            dgraph._csr_partition = part
            dgraph.graph.attach_mutation_observer(part)
        return part

    # -- mutation observer (DynamicGraph protocol) ----------------------
    def on_add_vertex(self, u: int) -> None:
        self._needs_rebuild = True

    def on_remove_vertex(self, u: int) -> None:
        self._needs_rebuild = True

    def on_add_edge(self, u: int, v: int) -> None:
        self._mark_edge(u, v)

    def on_remove_edge(self, u: int, v: int) -> None:
        self._mark_edge(u, v)

    def _mark_edge(self, u: int, v: int) -> None:
        if self._needs_rebuild:
            return
        if u not in self._index or v not in self._index:
            # an endpoint this mirror has never seen (implicitly created
            # by add_edge): row set changed, full rebuild
            self._needs_rebuild = True
            return
        # the endpoints' degrees (hence keys) changed; the rows their key
        # change un-sorts are derived vectorially at repair time
        self._dirty_keys.add(u)
        self._dirty_keys.add(v)

    # -- build / repair -------------------------------------------------
    def ensure(self) -> None:
        """Settle every pending repair; cheap no-op when already fresh."""
        if self._needs_rebuild or self.ids is None:
            self._rebuild()
            self._needs_rebuild = False
            self._dirty_keys.clear()
        elif self._dirty_keys:
            self._repair()
            self._dirty_keys.clear()

    def _rebuild(self) -> None:
        graph = self._graph
        order = graph.sorted_vertices()
        n = len(order)
        ids = np.fromiter(order, np.int64, count=n)
        index = {u: i for i, u in enumerate(order)}
        adj = [graph.neighbors(u) for u in order]
        degs = np.fromiter(map(len, adj), np.int64, count=n)
        if n:
            if int(ids[0]) < 0 or int(ids[-1]) >= 1 << 32:
                raise ValueError(
                    "representation='csr' requires vertex ids in "
                    "[0, 2^32): the packed rank key would misorder"
                )
        keys = (degs << 32) | ids
        indptr = np.zeros(n + 1, np.int64)
        np.cumsum(degs, out=indptr[1:])
        total = int(indptr[-1])
        from itertools import chain

        # one flat pass over the adjacency sets, then a vectorized id →
        # row translation (ids are ascending, so searchsorted is exact)
        dst = np.searchsorted(ids, np.fromiter(
            chain.from_iterable(adj), np.int64, count=total
        ))
        src = np.repeat(np.arange(n, dtype=np.int64), degs)
        # per-row rank order: primary key the row, secondary the ≺ key
        grab = np.lexsort((keys[dst], src))
        self.ids = ids
        self.keys = keys
        self.indptr = indptr
        self.nbr = dst[grab]
        self.home = self._home_array(ids)
        self.in_ = np.zeros(n, np.bool_)
        self._bitmap_in_shm = False
        self._index = index
        self._ids_list = ids.tolist()
        self._row_fresh = np.ones(n, np.uint8)
        self.structure_version += 1
        self.rebuilds += 1

    def _repair(self) -> None:
        graph = self._graph
        index = self._index
        keys = self.keys
        for u in self._dirty_keys:
            keys[index[u]] = (graph.degree(u) << 32) | u
        indptr = self.indptr
        nbr = self.nbr
        # two repair classes: the endpoints themselves changed *membership*
        # (their rows refetch from the adjacency sets, lengths may differ);
        # every other row containing an endpoint merely holds a member
        # whose key moved, so it needs re-*sorting* only — and row order is
        # read by nothing but lists mode's scan of the active rows, so
        # those re-sorts defer to first scan (a maintained stream
        # re-dirties the same hub rows batch after batch while the sweep
        # touches a handful of them).  Refetched rows are rewritten
        # *unsorted* and drop their badge like the rest.
        refetch = {index[u] for u in self._dirty_keys}
        rows = sorted(refetch)
        if rows:
            from itertools import chain

            row_sets = [graph.neighbors(int(self.ids[r])) for r in rows]
            counts = np.fromiter(map(len, row_sets), np.int64,
                                 count=len(rows))
            flat = np.searchsorted(self.ids, np.fromiter(
                chain.from_iterable(row_sets), np.int64,
                count=int(counts.sum()),
            ))
            rows_arr = np.fromiter(rows, np.int64, count=len(rows))
            same_len = bool(np.array_equal(
                counts, indptr[rows_arr + 1] - indptr[rows_arr]
            ))
            # the rows containing a re-keyed endpoint are exactly its
            # current neighbours (a row that *lost* the endpoint belongs
            # to the other endpoint — refetched here itself), and `flat`
            # already gathers those: one scatter un-badges them all
            self._row_fresh[flat] = 0
            self._row_fresh[rows_arr] = 0
            if same_len:
                # scatter every refetched row in one shot: map flat's
                # positions onto the rows' existing slices
                starts = indptr[rows_arr]
                offs = np.zeros(rows_arr.size, np.int64)
                np.cumsum(counts[:-1], out=offs[1:])
                owners = np.repeat(
                    np.arange(rows_arr.size, dtype=np.int64), counts
                )
                nbr[np.arange(flat.size, dtype=np.int64)
                    - offs[owners] + starts[owners]] = flat
            else:
                new_rows = np.split(flat, np.cumsum(counts[:-1]))
                lens = np.diff(indptr)
                pieces = []
                prev = 0
                for ridx, arr in zip(rows, new_rows):
                    start = int(indptr[ridx])
                    pieces.append(nbr[prev:start])
                    pieces.append(arr)
                    prev = int(indptr[ridx + 1])
                    lens[ridx] = arr.size
                pieces.append(nbr[prev:])
                self.nbr = np.concatenate(pieces) if pieces else nbr[:0]
                nptr = np.zeros(lens.size + 1, np.int64)
                np.cumsum(lens, out=nptr[1:])
                self.indptr = nptr
        self.structure_version += 1
        self.repairs += 1

    def freshen(self, active_idx) -> None:
        """Re-sort any stale rows among ``active_idx`` (row indices).

        Must run before a sweep scans those rows — and, in the process
        runtime, before :meth:`publish_shared`, so the refreshed order is
        what lands in the frame (the version bump forces a re-publish).
        """
        badge = self._row_fresh
        if badge is None:
            return
        if not isinstance(active_idx, np.ndarray):
            active_idx = np.fromiter(active_idx, np.int64,
                                     count=len(active_idx))
        rows_arr = active_idx[badge[active_idx] == 0]
        if not rows_arr.size:
            return
        badge[rows_arr] = 1
        indptr = self.indptr
        nbr = self.nbr
        keys = self.keys
        starts = indptr[rows_arr]
        lens = indptr[rows_arr + 1] - starts
        total = int(lens.sum())
        if total:
            # one lexsort keyed (row, ≺ key) re-sorts every row at once:
            # flat gathers the rows' slices, the primary key keeps slices
            # grouped, and the grouped order scatters straight back
            owners = np.repeat(np.arange(rows_arr.size, dtype=np.int64),
                               lens)
            offs = np.zeros(rows_arr.size, np.int64)
            np.cumsum(lens[:-1], out=offs[1:])
            flat = (np.arange(total, dtype=np.int64)
                    - offs[owners] + starts[owners])
            vals = nbr[flat]
            order = np.lexsort((keys[vals], owners))
            nbr[flat] = vals[order]
        self.structure_version += 1
        self.repairs += 1

    def mark_membership_change(self) -> None:
        """Invalidate the published frame after a membership transition.

        A voluntary join/drain changes the effective placement overlay, so
        any shared-memory frame published before the transition must not be
        reused: bumping :attr:`structure_version` makes the next
        :meth:`publish_shared` reship the frame instead of short-circuiting
        on the cached version.
        """
        self.structure_version += 1

    def _home_array(self, ids):
        from repro.pregel.partition import (
            _HASH_MASK,
            _HASH_MULTIPLIER,
            HashPartitioner,
        )

        partitioner = self._dgraph.partitioner
        worker_of = partitioner.worker_of
        if (
            type(partitioner) is HashPartitioner
            and ids.size
            and isinstance(getattr(partitioner, "_salt", None), int)
            and 0 <= partitioner._salt < 1 << 31
        ):
            salted = ids.astype(np.uint64) + np.uint64(partitioner._salt)
            hashed = (salted * np.uint64(_HASH_MULTIPLIER)) & np.uint64(
                _HASH_MASK
            )
            home = (hashed % np.uint64(partitioner.num_workers)).astype(
                np.int64
            )
            # spot-check the vectorized hash against the scalar one
            for i in (0, int(ids.size) // 2, int(ids.size) - 1):
                if int(home[i]) != worker_of(int(ids[i])):
                    break
            else:
                return home
        return np.fromiter(
            (worker_of(int(u)) for u in ids), np.int64, count=ids.size
        )

    # -- state bitmap ---------------------------------------------------
    def sync_states(self, states: Dict[int, Any]) -> None:
        """(Re)load the membership bitmap from the engine's state dict.

        Requires a state entry for every vertex of the graph (the engines
        guarantee it); missing entries raise ``KeyError`` rather than
        silently diverging from the dict path.
        """
        n = len(self._ids_list)
        vals = np.fromiter(
            map(states.__getitem__, self._ids_list), np.bool_, count=n
        )
        if self.in_ is not None and self.in_.shape == (n,):
            self.in_[:] = vals  # keeps any shared-memory backing
        else:
            self.in_ = vals
            self._bitmap_in_shm = False

    def apply_new_states(self, new_states: Dict[int, Any]) -> None:
        """Fold one barrier's committed states into the bitmap (in place,
        so a published shared frame sees the writes without reshipping)."""
        if not new_states:
            return
        count = len(new_states)
        rows = np.searchsorted(
            self.ids,
            np.fromiter(new_states.keys(), np.int64, count=count),
        )
        self.in_[rows] = np.fromiter(
            new_states.values(), np.bool_, count=count
        )

    def index_of(self, vertex_ids) -> Any:
        """Row indices of ``vertex_ids`` (every id must be present)."""
        count = len(vertex_ids)
        arr = np.fromiter(vertex_ids, np.int64, count=count)
        return np.searchsorted(self.ids, arr)

    # -- shared-memory publication --------------------------------------
    def publish_shared(self) -> Tuple[str, int, list]:
        """Publish (or refresh) the arrays into one shared-memory segment.

        Returns the frame meta ``(segment_name, epoch, layout)`` a worker
        process needs to map the arrays.  When the structure is unchanged
        since the last publication this is a cheap no-op returning the
        cached meta — the master's bitmap already lives inside the
        segment, so barrier commits are visible without any copy.
        """
        self.ensure()
        if (
            self._shm is not None
            and self._published_version == self.structure_version
            and self._bitmap_in_shm
        ):
            return self._shm_meta
        if self._bitmap_in_shm and self.in_ is not None:
            # re-laying out a reused segment: the live bitmap still aliases
            # the buffer at its *old* offset, and a structure change (nbr
            # grew/shrank) shifts every later offset — copying the earlier
            # arrays would clobber the bitmap before it is read.  Detach it
            # into private memory first; the copy loop re-homes it below.
            self.in_ = np.array(self.in_)
            self._bitmap_in_shm = False
        arrays = [
            ("ids", self.ids),
            ("keys", self.keys),
            ("indptr", self.indptr),
            ("nbr", self.nbr),
            ("home", self.home),
            ("in_", self.in_),
        ]
        need = sum(int(a.nbytes) for _, a in arrays)
        if self._shm is None or self._shm.size < need:
            from multiprocessing import shared_memory

            self._release_segment()
            # headroom so steady edge churn re-uses the segment in place
            capacity = max(need + need // 2 + 4096, 1)
            self._shm = shared_memory.SharedMemory(create=True, size=capacity)
        layout = []
        offset = 0
        buf = self._shm.buf
        bitmap_view = None
        for name, arr in arrays:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf,
                              offset=offset)
            view[...] = arr
            layout.append((name, arr.dtype.str, arr.shape, offset))
            offset += int(arr.nbytes)
            if name == "in_":
                bitmap_view = view
        # the master's bitmap IS the shared view from here on: barrier
        # commits write straight into the frame the workers map
        self.in_ = bitmap_view
        self._bitmap_in_shm = True
        self._shm_epoch += 1
        self._published_version = self.structure_version
        self._shm_meta = (self._shm.name, self._shm_epoch, layout)
        return self._shm_meta

    def _release_segment(self) -> None:
        if self._shm is None:
            return
        if self._bitmap_in_shm and self.in_ is not None:
            self.in_ = np.array(self.in_)  # detach before unmapping
        self._bitmap_in_shm = False
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass
        self._shm = None
        self._shm_meta = None
        self._published_version = -1

    # -- epoch pinning (snapshot read path) ------------------------------
    def pin_shared(self) -> Tuple[str, int, list]:
        """Freeze the currently published frame as an immutable epoch.

        Publishes first if needed, takes one pin on the segment and
        *detaches the writer* from it: the live bitmap moves back to
        private memory and the publication cache resets, so the next
        :meth:`publish_shared` lays the arrays out in a brand-new segment
        and nothing ever writes the pinned frame again.  Readers map the
        returned meta with :class:`WorkerCSRView`; every pin (this one and
        any extra taken via :meth:`pin`) must be paired with one
        :meth:`retire` call — the segment is unlinked only when the last
        pin drops, so a reader attached to epoch *e* keeps a consistent
        view while the writer republishes *e+1*.
        """
        meta = self.publish_shared()
        name = meta[0]
        self._pins[name] = self._pins.get(name, 0) + 1
        if self._bitmap_in_shm and self.in_ is not None:
            self.in_ = np.array(self.in_)  # writer's bitmap goes private
        self._bitmap_in_shm = False
        self._retired[name] = self._shm
        self._shm = None
        self._shm_meta = None
        self._published_version = -1
        return meta

    def pin(self, name: str) -> None:
        """Take one more pin on an already-pinned segment."""
        count = self._pins.get(name)
        if count is None:
            raise ValueError(f"segment {name!r} is not pinned")
        self._pins[name] = count + 1

    def retire(self, name: str) -> None:
        """Drop one pin on ``name``; unlink the segment on the last one.

        Readers that still hold a mapping keep reading it (POSIX keeps the
        memory alive until the last mapping closes) — only the *name* goes
        away, so no new reader can attach a dead epoch.
        """
        count = self._pins.get(name)
        if count is None:
            raise ValueError(f"segment {name!r} is not pinned")
        if count > 1:
            self._pins[name] = count - 1
            return
        del self._pins[name]
        self._unlink_retired(name)

    def pinned_segments(self) -> Dict[str, int]:
        """Current pin counts per retired segment name (a copy)."""
        return dict(self._pins)

    def _unlink_retired(self, name: str) -> None:
        shm = self._retired.pop(name, None)
        if shm is None:
            return
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass
        try:
            shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass

    def release_shared(self) -> None:
        """Close and unlink the published segment plus every retired one
        (idempotent teardown; outstanding pins are forcibly dropped)."""
        self._release_segment()
        for name in list(self._retired):
            self._unlink_retired(name)
        self._pins.clear()

    def __del__(self):  # pragma: no cover - interpreter teardown ordering
        try:
            self.release_shared()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# vectorized OIMIS sweep kernel
# ---------------------------------------------------------------------------
def _sweep_arrays(arrs, active_idx, full_scan: bool, suffix_only: bool,
                  num_workers: int):
    """One OIMIS compute sweep over ``active_idx`` rows, vectorized.

    Reproduces the dict path's work accounting exactly (see
    ``OIMISProgram.compute``): with ``P`` prefix neighbours (rank key
    below the vertex's own) and the early break enabled, a vertex whose
    first in-set prefix neighbour sits at 0-based rank position ``f``
    charges ``2*(f+1)``; a vertex with no hit charges
    ``P + min(P+1, deg)``; the SCALL full scan always charges
    ``deg + P``.  Activation requests are emitted for changed vertices
    only — the full ranked row (`ALL`) or its non-prefix suffix
    (`LOWER_RANKING`/`SAME_STATUS`).  Nothing here depends on the rows
    being rank-sorted (prefix membership and the early-break position are
    both key comparisons), so the fast path skips lazy row re-sorts; only
    lists mode needs :meth:`CSRPartition.freshen` first, because it
    materializes request targets in the dict path's rank order for the
    fault machinery's draw sequence.

    Returns ``(compute_work, worker_work, changed_idx, changed_val,
    req_src, req_tgt)`` with row-index arrays (see
    :class:`CSRSweepExtras`).
    """
    a = active_idx
    n_a = int(a.size)
    empty = np.empty(0, np.int64)
    if n_a == 0:
        return (0, [0] * num_workers, empty, np.empty(0, np.bool_),
                empty, np.empty(0, np.int64))
    indptr = arrs.indptr
    keys = arrs.keys
    in_ = arrs.in_
    starts = indptr[a]
    lens = indptr[a + 1] - starts
    total = int(lens.sum())
    if total:
        offs = np.zeros(n_a, np.int64)
        np.cumsum(lens[:-1], out=offs[1:])
        owners = np.repeat(np.arange(n_a, dtype=np.int64), lens)
        flat = np.arange(total, dtype=np.int64) - offs[owners] + starts[owners]
        nbrs = arrs.nbr[flat]
        nkeys = keys[nbrs]
        prefix = nkeys < keys[a][owners]
        pcounts = np.bincount(
            owners, weights=prefix, minlength=n_a
        ).astype(np.int64)
        # first-hit position without assuming rank-sorted rows: the
        # early break stops at the *minimum-key* in-set prefix neighbour,
        # and its 0-based rank position equals the count of members keyed
        # strictly below it (all of which are prefix members themselves)
        hit_pos = np.flatnonzero(prefix & in_[nbrs])
        if hit_pos.size:
            h_owner = owners[hit_pos]
            gstarts = np.concatenate((
                np.zeros(1, np.int64), np.flatnonzero(np.diff(h_owner)) + 1
            ))
            hit_owner = h_owner[gstarts]
            min_keys = np.minimum.reduceat(nkeys[hit_pos], gstarts)
            # keys are non-negative, so a zero threshold counts nothing
            # for owners without a hit (their f is never read anyway)
            thresh = np.zeros(n_a, np.int64)
            thresh[hit_owner] = min_keys
            f_local = np.bincount(
                owners, weights=nkeys < thresh[owners], minlength=n_a
            ).astype(np.int64)[hit_owner]
        else:
            hit_owner = empty
            f_local = empty
    else:
        owners = empty
        nbrs = empty
        prefix = np.empty(0, np.bool_)
        pcounts = np.zeros(n_a, np.int64)
        hit_owner = empty
        f_local = empty
    new_in = np.ones(n_a, np.bool_)
    new_in[hit_owner] = False
    if full_scan:
        work = lens + pcounts
    else:
        work = pcounts + np.minimum(pcounts + 1, lens)
        work[hit_owner] = 2 * (f_local + 1)
    compute_work = int(work.sum())
    worker_work = np.bincount(
        arrs.home[a], weights=np.maximum(work, 1), minlength=num_workers
    ).astype(np.int64).tolist()
    changed_mask = new_in != in_[a]
    changed_sel = np.flatnonzero(changed_mask)
    changed_idx = a[changed_sel]
    changed_val = new_in[changed_sel]
    if total and changed_sel.size:
        sel = changed_mask[owners]
        if suffix_only:
            sel = sel & ~prefix
        req_src = a[owners[sel]]
        req_tgt = nbrs[sel]
    else:
        req_src = empty
        req_tgt = np.empty(0, np.int64)
    return (compute_work, worker_work, changed_idx, changed_val,
            req_src, req_tgt)


def _requests_from_arrays(part, req_src, req_tgt, strategy):
    """Rebuild the dict path's activation-request lists from the typed
    arrays (used when faults/sanitizer need standard-shaped sweeps)."""
    from repro.core.activation import ActivationStrategy, _same_status

    requests: List[Tuple[int, List[int], List[Tuple[int, Any]]]] = []
    if not req_src.size:
        return requests
    split_at = np.flatnonzero(np.diff(req_src)) + 1
    groups = np.split(req_tgt, split_at)
    sources = req_src[np.concatenate((np.zeros(1, np.int64), split_at))]
    same_status = strategy is ActivationStrategy.SAME_STATUS
    ids = part.ids
    for src_row, tgt_rows in zip(sources, groups):
        source = int(ids[src_row])
        targets = ids[tgt_rows].tolist()
        if same_status:
            requests.append(
                (source, [], [(t, _same_status) for t in targets])
            )
        else:
            requests.append((source, targets, []))
    return requests


class OIMISKernel:
    """Array-native sweep kernel for :class:`~repro.core.oimis.OIMISProgram`.

    Picklable and tiny (strategy + scan mode only): the multi-process
    runtime ships its config to workers once per pool, never per barrier.
    """

    #: every OIMIS state syncs as one status byte (uniform)
    def __init__(self, strategy, full_scan: bool):
        from repro.pregel.metrics import STATUS_BYTES

        self.strategy = strategy
        self.full_scan = full_scan
        self.sync_bytes_const = STATUS_BYTES

    @property
    def same_status(self) -> bool:
        from repro.core.activation import ActivationStrategy

        return self.strategy is ActivationStrategy.SAME_STATUS

    @property
    def suffix_only(self) -> bool:
        from repro.core.activation import ActivationStrategy

        return self.strategy is not ActivationStrategy.ALL

    def config(self, num_workers: int) -> Tuple[str, bool, bool, int]:
        """Wire form shipped to worker processes (picklable primitives)."""
        return (self.strategy.value, self.full_scan, self.suffix_only,
                num_workers)

    def sweep(self, engine, active, superstep: int):
        """Run one inline sweep; returns a standard ``ScaleGSweep``.

        In fast mode (no faults, no sanitizer, no isolation snapshots)
        the sweep carries :class:`CSRSweepExtras` and an empty request
        list — the engine's vectorized barrier consumes the arrays.
        Otherwise the exact dict-shaped requests are materialized so the
        fault/sanitizer machinery sees the standard sweep shape.
        """
        from repro.runtime.base import ScaleGSweep

        part = engine._csr
        active_idx = part.index_of(active)
        if not getattr(engine, "_csr_fast", False):
            # lists mode replays request targets in rank order so the
            # fault injector's draw sequence matches the dict path
            part.freshen(active_idx)
        (compute_work, worker_work, changed_idx, changed_val,
         req_src, req_tgt) = _sweep_arrays(
            part, active_idx, self.full_scan, self.suffix_only,
            engine.dgraph.num_workers,
        )
        changed_ids = part.ids[changed_idx].tolist()
        new_states = dict(zip(changed_ids, changed_val.tolist()))
        if getattr(engine, "_csr_fast", False):
            return ScaleGSweep(
                new_states=new_states,
                changed=changed_ids,
                forced=[],
                requests=[],
                compute_work=compute_work,
                worker_work=worker_work,
                csr=CSRSweepExtras(changed_idx, changed_val,
                                   req_src, req_tgt),
            )
        return ScaleGSweep(
            new_states=new_states,
            changed=changed_ids,
            forced=[],
            requests=_requests_from_arrays(
                part, req_src, req_tgt, self.strategy
            ),
            compute_work=compute_work,
            worker_work=worker_work,
        )


def finish_barrier(part, kernel, extras, changed, record, dgraph):
    """Vectorized barrier charging for a fast-path sweep.

    Mirrors the engine's dict-path loops exactly: one sync record per
    (changed vertex, guest machine); activation requests filtered by the
    end-of-superstep same-status predicate where the strategy asks, each
    surviving request counted once (duplicates included), remote pairs
    charged the piggybacked activation entry (every OIMIS activation
    source changed state, so it is always in the synced set).  Returns
    the next active vertex ids, ascending and deduplicated.  Must run
    *after* the barrier committed (``apply_new_states``) — the predicate
    and the piggyback rule read post-commit state.
    """
    from repro.pregel.metrics import (
        ACTIVATION_ENTRY_BYTES,
        MESSAGE_OVERHEAD_BYTES,
        VERTEX_ID_BYTES,
    )

    record.state_changes = len(changed)
    copies = sum(map(dgraph.num_guest_copies, changed))
    if copies:
        wire = (MESSAGE_OVERHEAD_BYTES + VERTEX_ID_BYTES
                + kernel.sync_bytes_const)
        record.remote_messages += copies
        record.bytes_sent += copies * wire
    req_src = extras.req_src
    req_tgt = extras.req_tgt
    if req_src.size and kernel.same_status:
        keep = part.in_[req_src] == part.in_[req_tgt]
        req_src = req_src[keep]
        req_tgt = req_tgt[keep]
    if not req_src.size:
        return []
    record.messages += int(req_src.size)
    remote = part.home[req_src] != part.home[req_tgt]
    remote_count = int(np.count_nonzero(remote))
    record.remote_messages += remote_count
    record.bytes_sent += remote_count * ACTIVATION_ENTRY_BYTES
    return part.ids[np.unique(req_tgt)].tolist()


# ---------------------------------------------------------------------------
# worker-process side (multi-process runtime)
# ---------------------------------------------------------------------------
class WorkerCSRView:
    """A worker process's zero-copy mapping of the published frame."""

    def __init__(self, meta):
        from multiprocessing import shared_memory

        name, epoch, layout = meta
        # The master owns the segment's lifecycle; a worker must attach
        # WITHOUT registering it with the (shared) resource tracker, or
        # the tracker's refcount diverges and the master's unlink warns
        # (bpo-39959).  Python 3.13 has track=False for exactly this;
        # earlier versions need the registration suppressed around the
        # attach.
        try:
            self.shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track= parameter
            from multiprocessing import resource_tracker

            orig_register = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                self.shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = orig_register
        self.name = name
        self.epoch = 0
        self.remap(meta)

    def remap(self, meta) -> None:
        _, epoch, layout = meta
        buf = self.shm.buf
        for name, dtype, shape, offset in layout:
            setattr(self, name, np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=buf, offset=offset
            ))
        self.epoch = epoch

    def close(self) -> None:
        for name in ("ids", "keys", "indptr", "nbr", "home", "in_"):
            if hasattr(self, name):
                delattr(self, name)
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass


def worker_attach(view: Optional[WorkerCSRView], meta) -> WorkerCSRView:
    """(Re)map the published frame inside a worker process."""
    name = meta[0]
    if view is not None:
        if view.name == name:
            view.remap(meta)
            return view
        view.close()
    return WorkerCSRView(meta)


def worker_sweep(view: WorkerCSRView, active_idx, cfg):
    """One worker's share of a fast-path sweep, wire-encoded.

    Row indices travel as ``int32`` (row counts are far below 2^31) and
    the request pairs as (unique sources, run lengths, targets) — the
    source column is non-decreasing, so run-length grouping shrinks it to
    one entry per requesting vertex.  :func:`decode_worker_sweep` is the
    inverse.
    """
    _strategy_value, full_scan, suffix_only, num_workers = cfg
    compute_work, worker_work, changed_idx, changed_val, req_src, req_tgt = (
        _sweep_arrays(view, active_idx.astype(np.int64), full_scan,
                      suffix_only, num_workers)
    )
    if req_src.size:
        starts = np.flatnonzero(np.diff(req_src)) + 1
        bounds = np.concatenate(
            (np.zeros(1, np.int64), starts,
             np.array([req_src.size], np.int64))
        )
        sources = req_src[bounds[:-1]].astype(np.int32)
        counts = np.diff(bounds).astype(np.int32)
    else:
        sources = np.empty(0, np.int32)
        counts = np.empty(0, np.int32)
    return (
        compute_work,
        worker_work,
        changed_idx.astype(np.int32),
        changed_val,
        sources,
        counts,
        req_tgt.astype(np.int32),
    )


def decode_worker_sweep(payload):
    """Decode one worker's wire frame back to int64 row-index arrays."""
    compute_work, worker_work, changed_idx, changed_val, sources, counts, \
        req_tgt = payload
    req_src = np.repeat(sources.astype(np.int64), counts)
    return (
        compute_work,
        worker_work,
        changed_idx.astype(np.int64),
        changed_val,
        req_src,
        req_tgt.astype(np.int64),
    )
