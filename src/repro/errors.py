"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch everything library-specific with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex that does not exist."""

    def __init__(self, vertex: int):
        super().__init__(f"vertex {vertex!r} does not exist")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """Raised when deleting or querying an edge that does not exist."""

    def __init__(self, u: int, v: int):
        super().__init__(f"edge ({u!r}, {v!r}) does not exist")
        self.edge = (u, v)


class EdgeExistsError(GraphError):
    """Raised when inserting an edge that already exists."""

    def __init__(self, u: int, v: int):
        super().__init__(f"edge ({u!r}, {v!r}) already exists")
        self.edge = (u, v)


class SelfLoopError(GraphError):
    """Raised when inserting a self-loop, which independent sets disallow."""

    def __init__(self, u: int):
        super().__init__(f"self-loop ({u!r}, {u!r}) is not allowed")
        self.vertex = u


class EngineError(ReproError):
    """Base class for errors raised by the distributed engines."""


class SuperstepLimitExceeded(EngineError):
    """Raised when a vertex program fails to converge within the limit.

    The engines bound the number of supersteps (default ``O(n)`` plus slack,
    matching the paper's convergence bound) to turn a non-terminating vertex
    program into a loud failure instead of an infinite loop.
    """

    def __init__(self, limit: int):
        super().__init__(f"vertex program did not converge within {limit} supersteps")
        self.limit = limit


class PartitionError(EngineError):
    """Raised when a partitioner produces an invalid worker assignment."""


class ParallelRuntimeError(EngineError):
    """Raised when the multi-process runtime breaks its contract.

    Covers a worker process dying mid-superstep, an unpicklable program or
    state crossing the pipe, and a fault echo that disagrees with the
    barrier draws — anything where the parallel backend can no longer
    guarantee bit-identity with the inline run.
    """


class WorkerFailure(EngineError):
    """Raised when a simulated worker fails and recovery cannot proceed.

    The engines *handle* injected crashes internally (rollback to the last
    barrier checkpoint and replay); this exception surfaces only when a
    failure is unrecoverable — e.g. sync retries exhausted — so callers
    (the maintainer, the streaming session) can keep their own state
    consistent and decide whether to retry the whole batch.
    """

    def __init__(self, worker: "int | None", superstep: "int | None", reason: str):
        where = []
        if worker is not None:
            where.append(f"worker {worker}")
        if superstep is not None:
            where.append(f"superstep {superstep}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"worker failure{suffix}: {reason}")
        self.worker = worker
        self.superstep = superstep
        self.reason = reason


class WorkerLoss(WorkerFailure):
    """A worker was declared permanently dead by the failure detector.

    Unlike a transient crash (rollback and replay on the same worker set),
    a loss removes the worker from the membership view for good: its
    partition is reassigned to survivors and every lost host vertex is
    reconstructed from the freshest surviving guest copy (or the delta
    log).  The engines *handle* injected losses internally through the
    :class:`~repro.faults.membership.FailoverCoordinator`; this exception
    escalates only when failover is impossible — no membership subsystem
    attached, or no barrier checkpoint to reconstruct from.
    """

    def __init__(self, worker: "int | None", superstep: "int | None", reason: str):
        super().__init__(worker, superstep, reason)
        #: all workers declared dead at this barrier (set by the raiser)
        self.workers = [worker] if worker is not None else []


class SyncRetryExhausted(WorkerFailure):
    """A guest-sync record kept being dropped past the retry budget.

    Transient drops are retried with exponential backoff and charged to the
    ``recovery_*`` meters; a record dropped more than ``max_retries`` times
    is treated as a dead link and escalates to this failure.
    """

    def __init__(self, vertex: int, machine: int, attempts: int,
                 superstep: "int | None" = None):
        super().__init__(
            machine, superstep,
            f"sync record for vertex {vertex} dropped {attempts} times "
            f"(retry budget exhausted)",
        )
        self.vertex = vertex
        self.machine = machine
        self.attempts = attempts


class CheckpointError(ReproError):
    """Raised when a checkpoint file cannot be loaded.

    Always carries the offending path and a human-readable reason so a
    truncated, corrupt, or future-versioned checkpoint fails loudly instead
    of surfacing a bare ``json.JSONDecodeError``/``KeyError``.
    """

    def __init__(self, path, reason: str):
        super().__init__(f"cannot load checkpoint {path}: {reason}")
        self.path = path
        self.reason = reason


class ContractViolation(EngineError):
    """Raised by the runtime contract checker when a BSP invariant breaks.

    ``contract`` names the violated invariant (``"double-buffer"``,
    ``"independence"``, ``"maximality"``); ``superstep`` and ``vertex``
    localize the violation when known.  See
    :mod:`repro.analysis.runtime` for what each contract asserts.
    """

    def __init__(
        self,
        contract: str,
        detail: str,
        superstep: "int | None" = None,
        vertex: "int | None" = None,
    ):
        where = []
        if superstep is not None:
            where.append(f"superstep {superstep}")
        if vertex is not None:
            where.append(f"vertex {vertex}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"{contract} contract violated{suffix}: {detail}")
        self.contract = contract
        self.detail = detail
        self.superstep = superstep
        self.vertex = vertex


class RaceViolation(EngineError):
    """Raised by the runtime race sanitizer when a superstep breaks the
    parallel execution discipline.

    ``check`` names the violated invariant (``"mid-superstep-commit"``,
    ``"write-write-overlap"``, ``"non-owned-write"``, ``"meter-double-merge"``);
    ``superstep`` and ``vertex``/``worker`` localize it when known.  See
    :mod:`repro.analysis.parallel.sanitizer` for what each check asserts.
    """

    def __init__(
        self,
        check: str,
        detail: str,
        superstep: "int | None" = None,
        vertex: "int | None" = None,
        worker: "int | None" = None,
    ):
        where = []
        if superstep is not None:
            where.append(f"superstep {superstep}")
        if worker is not None:
            where.append(f"worker {worker}")
        if vertex is not None:
            where.append(f"vertex {vertex}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"race sanitizer: {check}{suffix}: {detail}")
        self.check = check
        self.detail = detail
        self.superstep = superstep
        self.vertex = vertex
        self.worker = worker


class WALError(ReproError):
    """Raised when the ingestion write-ahead log cannot be read or written.

    Carries the offending path and a human-readable reason.  A torn tail
    (the record being appended when the process died) is *not* an error —
    recovery truncates it silently; this exception covers real corruption:
    a checksum mismatch in the middle of a sealed segment, a segment with a
    foreign magic header, an unwritable directory.
    """

    def __init__(self, path, reason: str):
        super().__init__(f"write-ahead log {path}: {reason}")
        self.path = path
        self.reason = reason


class RecoveryError(ReproError):
    """Raised when WAL replay cannot reproduce the pre-crash state.

    Replay is deterministic: re-applying a committed window's events to the
    restored checkpoint must yield exactly the cumulative logical meters
    the commit record stored.  A divergence means the log and the
    checkpoint disagree (foreign checkpoint file, hand-edited log, changed
    engine semantics) — recovery refuses to continue on a state it cannot
    vouch for.
    """


class BackpressureError(ReproError):
    """Raised by the ``error`` admission policy when the ingress queue is
    above its high watermark — the producer must back off and retry.

    ``pending`` is the queue depth that triggered the rejection,
    ``high_watermark`` the configured limit.
    """

    def __init__(self, pending: int, high_watermark: int):
        super().__init__(
            f"ingress queue at {pending} pending operation(s), "
            f"high watermark {high_watermark}: submission rejected"
        )
        self.pending = pending
        self.high_watermark = high_watermark


class WorkloadError(ReproError):
    """Raised when an update workload cannot be generated as requested."""


class QueryError(ReproError):
    """Raised by the read path when a query cannot be answered.

    Covers querying an unknown vertex for a neighbourhood or why-not
    certificate, reading from a closed snapshot registry, and asking for
    an epoch that was never published.
    """


class VerificationError(ReproError):
    """Raised when a computed result violates a checked invariant."""


class MemoryBudgetExceeded(ReproError):
    """Raised by serial baselines when their modelled memory exceeds a budget.

    This mirrors the out-of-memory failures of the centralized dynamic
    algorithms in the paper's Table IV without needing billion-edge inputs.
    """

    def __init__(self, needed_mb: float, budget_mb: float):
        super().__init__(
            f"modelled memory {needed_mb:.1f} MB exceeds budget {budget_mb:.1f} MB"
        )
        self.needed_mb = needed_mb
        self.budget_mb = budget_mb
