"""Streaming session layer: continuous maintenance over an event stream.

The paper's maintainer consumes explicit batches; real deployments see an
*event stream* (edges appearing/disappearing with timestamps) and must
decide when to cut batches.  :class:`StreamingSession` wraps any maintainer
with the ``apply_batch`` interface and provides:

- **windowing** — events buffer until ``window_size`` operations or, when a
  ``window_interval`` is set, until an event's timestamp crosses the
  current window's end (count- and time-based triggers compose);
- **membership deltas** — each flushed window reports exactly which
  vertices entered/left the maintained set, so applications (alerting,
  cache invalidation, reward accounting) react to changes instead of
  re-reading the whole set;
- **history** — per-window cost accounting (ops, supersteps,
  communication), the stream-level counterpart of the paper's Fig. 13
  measurements.

Batch-size choice is the Fig. 11 trade-off: bigger windows amortize
supersteps and sync, smaller windows bound staleness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.errors import WorkloadError
from repro.graph.updates import EdgeUpdate
from repro.util import percentile

__all__ = ["StreamingSession", "WindowReport", "percentile"]


@dataclass
class WindowReport:
    """What one flushed window did."""

    index: int
    operations: int
    set_size: int
    entered: Set[int] = field(default_factory=set)
    left: Set[int] = field(default_factory=set)
    supersteps: int = 0
    communication_mb: float = 0.0
    wall_time_s: float = 0.0
    #: workers declared permanently dead while applying this window (0 for
    #: maintainers without a membership/failover subsystem)
    failovers: int = 0
    #: timestamp of the first event in the window (None when untimed)
    started_at: Optional[float] = None
    #: the window's apply raised: nothing committed, its events are still
    #: buffered in the session, and ``set_size`` is the pre-flush size
    failed: bool = False

    @property
    def churn(self) -> int:
        """Vertices whose membership changed in this window."""
        return len(self.entered) + len(self.left)


class StreamingSession:
    """Windowed event feed into a dynamic MIS maintainer.

    Parameters
    ----------
    maintainer:
        Anything with ``apply_batch(ops)`` / ``independent_set()`` /
        ``update_metrics`` — a :class:`~repro.core.maintainer.MISMaintainer`,
        any baseline from :func:`~repro.core.baselines.make_algorithm`, or
        the weighted maintainer.
    window_size:
        Flush after this many buffered operations (default 100).
    window_interval:
        When set, also flush before accepting an event whose timestamp is
        ``>= window_start + window_interval``.  Timestamps must be
        non-decreasing.
    on_window:
        Optional callback invoked with each :class:`WindowReport`.
    close_maintainer:
        When True, :meth:`close` (and context-manager exit) also calls the
        maintainer's own ``close()`` if it has one — use this when the
        session owns a maintainer running on the multi-process
        :mod:`repro.runtime` backend, so the worker pool is torn down with
        the stream.  Default False: the maintainer stays caller-owned.
    """

    def __init__(
        self,
        maintainer,
        window_size: int = 100,
        window_interval: Optional[float] = None,
        on_window: Optional[Callable[[WindowReport], None]] = None,
        close_maintainer: bool = False,
    ):
        if window_size < 1:
            raise WorkloadError(f"window_size must be >= 1, got {window_size}")
        if window_interval is not None and window_interval <= 0:
            raise WorkloadError("window_interval must be positive")
        self.maintainer = maintainer
        self.window_size = window_size
        self.window_interval = window_interval
        self.on_window = on_window
        self.close_maintainer = close_maintainer
        self.history: List[WindowReport] = []
        #: reports of the windows an :meth:`offer_many` call flushed before
        #: a later flush raised (also attached to the exception itself as
        #: ``exc.partial_reports`` when the exception allows attributes)
        self.partial_reports: List[WindowReport] = []
        #: most operations ever buffered at once (backpressure high-water
        #: mark — how deep the ingress queue got behind a slow or stuck
        #: window)
        self.max_pending: int = 0
        self._buffer: List[EdgeUpdate] = []
        self._window_start_ts: Optional[float] = None
        self._last_ts: Optional[float] = None
        self._membership: Set[int] = set(maintainer.independent_set())
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Buffered operations not yet applied."""
        return len(self._buffer)

    @property
    def windows_flushed(self) -> int:
        """Successfully applied windows (failed attempts don't count)."""
        return sum(1 for r in self.history if not r.failed)

    def independent_set(self) -> Set[int]:
        """The maintained set as of the last flush (buffered ops excluded)."""
        return set(self._membership)

    # ------------------------------------------------------------------
    def offer(self, op: EdgeUpdate, timestamp: Optional[float] = None):
        """Feed one event; returns the :class:`WindowReport` if it caused a
        flush (of the *previous* window), else ``None``."""
        if self._closed:
            raise WorkloadError("session is closed")
        if timestamp is not None:
            if self._last_ts is not None and timestamp < self._last_ts:
                raise WorkloadError(
                    f"timestamps must be non-decreasing ({timestamp} < {self._last_ts})"
                )
            self._last_ts = timestamp
        report = None
        if (
            self.window_interval is not None
            and timestamp is not None
            and self._window_start_ts is not None
            and self._buffer
            and timestamp >= self._window_start_ts + self.window_interval
        ):
            try:
                report = self.flush()
            except BaseException:
                # the failed window keeps its events, but the *offered*
                # event must not be lost with them — queue it behind the
                # stuck window before the failure propagates, so a later
                # retry applies both
                self._buffer.append(op)
                self.max_pending = max(self.max_pending, len(self._buffer))
                raise
        if not self._buffer:
            self._window_start_ts = timestamp
        elif self._window_start_ts is None and timestamp is not None:
            # a window opened by untimed events anchors its time trigger
            # on the first timed event it sees — otherwise the whole
            # window would be pinned untimed and never time-flush
            self._window_start_ts = timestamp
        self._buffer.append(op)
        self.max_pending = max(self.max_pending, len(self._buffer))
        if len(self._buffer) >= self.window_size:
            report = self.flush()
        return report

    def offer_many(
        self, operations: Sequence[EdgeUpdate], timestamps: Optional[Sequence[float]] = None
    ) -> List[WindowReport]:
        """Feed a sequence of events; returns the reports of all flushes.

        If a flush raises part-way through, the reports of the windows that
        *did* apply are not lost: they are exposed as
        :attr:`partial_reports` on the session and attached to the raised
        exception as ``exc.partial_reports`` (best-effort — some exception
        types reject new attributes).
        """
        reports: List[WindowReport] = []
        try:
            for i, op in enumerate(operations):
                ts = timestamps[i] if timestamps is not None else None
                report = self.offer(op, timestamp=ts)
                if report is not None:
                    reports.append(report)
        except BaseException as exc:
            self.partial_reports = reports
            try:
                exc.partial_reports = reports
            except (AttributeError, TypeError):  # __slots__ exceptions
                pass
            raise
        return reports

    def flush(self) -> Optional[WindowReport]:
        """Apply the buffered window now; returns its report (None if empty).

        Atomic: if the maintainer's ``apply_batch`` raises (invalid
        operation, superstep-limit blowup, exhausted sync retries under
        fault injection), the buffered events stay queued, the session
        remains usable — the next :meth:`flush` retries the same window —
        and a report with :attr:`WindowReport.failed` set is recorded in
        :attr:`history` before the exception propagates.
        """
        if not self._buffer:
            return None
        metrics = self.maintainer.update_metrics
        # recovery_failovers exists on RunMetrics; getattr guards baseline
        # maintainers whose update_metrics is a simpler meter object
        failovers_before = getattr(metrics, "recovery_failovers", 0)
        before = (metrics.supersteps, metrics.bytes_sent, metrics.wall_time_s)
        ops = list(self._buffer)
        started_at = self._window_start_ts
        try:
            self.maintainer.apply_batch(ops)
        except BaseException:
            # the maintainer rolled back (apply_batch is atomic); keep the
            # buffer so the caller may drop/repair/retry the window
            # meters are not rolled back with the graph state: the failed
            # attempt's supersteps, bytes, wall time and failovers all
            # really happened — record every delta, not just wall/failovers
            report = WindowReport(
                index=len(self.history),
                operations=len(ops),
                set_size=len(self._membership),
                supersteps=metrics.supersteps - before[0],
                communication_mb=(metrics.bytes_sent - before[1])
                / (1024.0 * 1024.0),
                wall_time_s=metrics.wall_time_s - before[2],
                failovers=getattr(metrics, "recovery_failovers", 0)
                - failovers_before,
                started_at=started_at,
                failed=True,
            )
            self.history.append(report)
            if self.on_window is not None:
                self.on_window(report)
            raise
        self._buffer = []
        self._window_start_ts = None
        current = set(self.maintainer.independent_set())
        report = WindowReport(
            index=len(self.history),
            operations=len(ops),
            set_size=len(current),
            entered=current - self._membership,
            left=self._membership - current,
            supersteps=metrics.supersteps - before[0],
            communication_mb=(metrics.bytes_sent - before[1]) / (1024.0 * 1024.0),
            wall_time_s=metrics.wall_time_s - before[2],
            failovers=getattr(metrics, "recovery_failovers", 0)
            - failovers_before,
            started_at=started_at,
        )
        self._membership = current
        self.history.append(report)
        if self.on_window is not None:
            self.on_window(report)
        return report

    def take_pending(self) -> List[EdgeUpdate]:
        """Remove and return the buffered (un-applied) operations.

        The window anchor resets with the buffer.  This is the hook
        :class:`repro.serve.service.IngestionService` uses to bisect a
        poison window: take the stuck events out, re-offer the halves, and
        quarantine the operation(s) that still refuse to apply.
        """
        taken = self._buffer
        self._buffer = []
        self._window_start_ts = None
        return taken

    def close(self) -> Optional[WindowReport]:
        """Flush any remaining events and refuse further offers.

        Exception-safe: even when the final flush raises (a poison event in
        the tail window, a fault escalation), the session still seals itself
        and — with ``close_maintainer=True`` — still releases the
        maintainer's execution backend, so a
        :class:`~repro.runtime.parallel.ParallelRuntime` worker pool is
        never leaked behind a failed close.
        """
        try:
            report = self.flush()
        finally:
            self._closed = True
            self._close_maintainer()
        return report

    def _close_maintainer(self) -> None:
        if self.close_maintainer:
            closer = getattr(self.maintainer, "close", None)
            if closer is not None:
                closer()

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True
            self._close_maintainer()

    # ------------------------------------------------------------------
    def totals(self) -> dict:
        """Aggregate statistics across flushed windows.

        Failed attempts contribute to ``failed_windows``, ``failovers``
        and ``failed_wall_time_s`` — their events never applied, but the
        time burned attempting them (and any worker declared dead) is
        real and must not vanish from the stream's account.

        Per-window latency is summarized as nearest-rank percentiles of
        the applied windows' ``wall_time_s`` (P50/P95/P99 — the numbers a
        latency SLO is written against), and ``max_pending`` reports the
        ingress high-water mark: the deepest the buffer ever got, e.g.
        while events queued behind a stuck window."""
        applied = [r for r in self.history if not r.failed]
        walls = sorted(r.wall_time_s for r in applied)
        return {
            "windows": len(applied),
            "failed_windows": len(self.history) - len(applied),
            "operations": sum(r.operations for r in applied),
            "churn": sum(r.churn for r in applied),
            "supersteps": sum(r.supersteps for r in applied),
            "communication_mb": sum(r.communication_mb for r in applied),
            "wall_time_s": sum(r.wall_time_s for r in applied),
            "failed_wall_time_s": sum(
                r.wall_time_s for r in self.history if r.failed
            ),
            # failed windows roll back state but a worker declared dead
            # stays dead — count failovers across every attempt
            "failovers": sum(r.failovers for r in self.history),
            "wall_time_p50_s": percentile(walls, 0.50),
            "wall_time_p95_s": percentile(walls, 0.95),
            "wall_time_p99_s": percentile(walls, 0.99),
            "max_pending": self.max_pending,
        }
