"""Skew watching and autoscaling for the elastic runtime pool.

Two small, deterministic decision engines sit on top of the voluntary
membership transitions (:mod:`repro.faults.membership`) and the resizable
process pool (:meth:`~repro.runtime.parallel.ParallelRuntime.add_worker` /
:meth:`~repro.runtime.parallel.ParallelRuntime.drain_worker`):

- :class:`LoadBalancer` watches per-worker ``compute_work`` and
  active-vertex counts across a sliding window of superstep barriers and
  reports load *skew* (slowest worker / mean worker) — the signal that a
  hub-heavy partition is dragging the barrier.
- :class:`AutoscalePolicy` turns the window into a scale decision:
  target-utilization with hysteresis (so the pool does not flap around the
  target), a rebalance-cost budget (HRW moves ~1/N of the partitions per
  transition; a policy may refuse a move it cannot afford), and a cooldown
  between consecutive scale actions.

Both read only logical meters (integers) and emit
:class:`Recommendation` values, so every decision is a pure function of
the observed window — deterministic across replays, which is what lets
the serve loop's control decisions be committed to the WAL.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError

#: recommendation actions
HOLD = "hold"
SCALE_UP = "scale_up"
SCALE_DOWN = "scale_down"
REBALANCE = "rebalance"


@dataclass(frozen=True)
class Recommendation:
    """One decision emitted by the balancer or the autoscale policy."""

    action: str
    reason: str
    #: window skew (slowest worker's work / mean worker's work; 1.0 = flat)
    skew: float = 0.0
    #: window utilization against the policy's per-worker capacity
    utilization: float = 0.0
    #: pool-size change the action implies (+1 / -1 / 0)
    workers_delta: int = 0
    #: estimated fraction of partitions an applied transition would move
    estimated_moved_fraction: float = 0.0


class LoadBalancer:
    """Sliding-window observer of per-worker load across barriers.

    Feed it one :meth:`observe` per superstep barrier (``worker_work`` is
    the engines' per-worker compute vector — the ``SuperstepRecord.worker_work``
    vector), or fold a whole run's records at once with
    :meth:`observe_metrics`.  ``skew()`` is the window's
    ``max(worker totals) / mean(worker totals)``: 1.0 means perfectly flat,
    2.0 means the slowest worker carries twice the mean and every barrier
    waits for it.
    """

    def __init__(self, window: int = 16, skew_threshold: float = 2.0):
        if window < 1:
            raise WorkloadError(f"window must be >= 1, got {window}")
        if skew_threshold < 1.0:
            raise WorkloadError(
                f"skew_threshold must be >= 1.0, got {skew_threshold}"
            )
        self.window = window
        self.skew_threshold = skew_threshold
        #: newest-last (active_vertices, tuple(worker_work)) per barrier
        self._barriers: Deque[Tuple[int, Tuple[int, ...]]] = deque(
            maxlen=window
        )
        self.barriers_observed = 0

    # ------------------------------------------------------------------
    def observe(self, worker_work: Sequence[int],
                active_vertices: int) -> None:
        """Fold one barrier's per-worker work into the window."""
        self._barriers.append((active_vertices, tuple(worker_work)))
        self.barriers_observed += 1

    def observe_metrics(self, metrics) -> None:
        """Fold every kept superstep record of a run's metrics."""
        for record in metrics.records:
            if record.worker_work:
                self.observe(record.worker_work, record.active_vertices)

    # ------------------------------------------------------------------
    def worker_totals(self) -> List[int]:
        """Per-worker work summed over the window (ragged vectors padded)."""
        totals: List[int] = []
        for _active, work in self._barriers:
            if len(work) > len(totals):
                totals.extend([0] * (len(work) - len(totals)))
            for w, units in enumerate(work):
                totals[w] += units
        return totals

    def skew(self) -> float:
        """``max / mean`` of the window's per-worker totals (1.0 = flat)."""
        totals = [t for t in self.worker_totals() if t > 0]
        if not totals:
            return 1.0
        mean = sum(totals) / len(totals)
        return max(totals) / mean if mean else 1.0

    def mean_work_per_barrier(self) -> float:
        """Total compute work per barrier, averaged over the window."""
        if not self._barriers:
            return 0.0
        total = sum(sum(work) for _a, work in self._barriers)
        return total / len(self._barriers)

    def mean_active_per_barrier(self) -> float:
        if not self._barriers:
            return 0.0
        return sum(a for a, _w in self._barriers) / len(self._barriers)

    # ------------------------------------------------------------------
    def recommend(self, num_workers: int) -> Recommendation:
        """Skew-only recommendation (the policy layers utilization on top)."""
        skew = self.skew()
        if skew >= self.skew_threshold and num_workers > 1:
            return Recommendation(
                action=REBALANCE,
                reason=(
                    f"window skew {skew:.2f} >= threshold "
                    f"{self.skew_threshold:.2f}"
                ),
                skew=skew,
                estimated_moved_fraction=1.0 / num_workers,
            )
        return Recommendation(
            action=HOLD,
            reason=f"window skew {skew:.2f} below threshold",
            skew=skew,
        )


class AutoscalePolicy:
    """Target-utilization autoscaling with hysteresis and a cost budget.

    Utilization is the window's mean per-barrier compute work divided by
    the pool's modelled capacity (``num_workers * worker_capacity`` work
    units per barrier).  The policy recommends growth above
    ``target + hysteresis``, shrink below ``target - hysteresis``, and
    holds inside the band — and it refuses any transition whose estimated
    movement (HRW moves ~1/N of partitions) exceeds ``rebalance_budget``,
    or that lands inside the ``cooldown`` window of the previous action.
    """

    def __init__(
        self,
        target_utilization: float = 0.7,
        hysteresis: float = 0.15,
        worker_capacity: float = 5000.0,
        rebalance_budget: float = 0.5,
        min_workers: int = 1,
        max_workers: int = 64,
        cooldown: int = 2,
    ):
        if not (0.0 < target_utilization <= 1.0):
            raise WorkloadError(
                f"target_utilization must be in (0, 1], "
                f"got {target_utilization}"
            )
        if hysteresis < 0.0 or hysteresis >= target_utilization:
            raise WorkloadError(
                f"hysteresis must be in [0, target), got {hysteresis}"
            )
        if worker_capacity <= 0:
            raise WorkloadError(
                f"worker_capacity must be positive, got {worker_capacity}"
            )
        if not (0.0 < rebalance_budget <= 1.0):
            raise WorkloadError(
                f"rebalance_budget must be in (0, 1], got {rebalance_budget}"
            )
        if min_workers < 1 or max_workers < min_workers:
            raise WorkloadError(
                f"need 1 <= min_workers <= max_workers, "
                f"got {min_workers}/{max_workers}"
            )
        if cooldown < 0:
            raise WorkloadError(f"cooldown must be >= 0, got {cooldown}")
        self.target_utilization = target_utilization
        self.hysteresis = hysteresis
        self.worker_capacity = worker_capacity
        self.rebalance_budget = rebalance_budget
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.cooldown = cooldown
        #: decisions since the last non-hold action (starts expired)
        self._since_action = cooldown
        self.decisions: List[Recommendation] = []

    # ------------------------------------------------------------------
    def utilization(self, balancer: LoadBalancer, num_workers: int) -> float:
        if num_workers < 1:
            return 0.0
        return balancer.mean_work_per_barrier() / (
            num_workers * self.worker_capacity
        )

    def decide(self, balancer: LoadBalancer,
               num_workers: int) -> Recommendation:
        """One scale decision for the current window (records itself)."""
        skew = balancer.skew()
        utilization = self.utilization(balancer, num_workers)
        decision = self._decide(balancer, num_workers, skew, utilization)
        if decision.action == HOLD:
            self._since_action += 1
        else:
            self._since_action = 0
        self.decisions.append(decision)
        return decision

    def _decide(self, balancer: LoadBalancer, num_workers: int,
                skew: float, utilization: float) -> Recommendation:
        high = self.target_utilization + self.hysteresis
        low = self.target_utilization - self.hysteresis
        if self._since_action < self.cooldown:
            return Recommendation(
                action=HOLD,
                reason=(
                    f"cooling down ({self._since_action}/"
                    f"{self.cooldown} windows since last action)"
                ),
                skew=skew, utilization=utilization,
            )
        if utilization > high and num_workers < self.max_workers:
            moved = 1.0 / (num_workers + 1)
            if moved > self.rebalance_budget:
                return Recommendation(
                    action=HOLD,
                    reason=(
                        f"overloaded (u={utilization:.2f}) but the move "
                        f"(~{moved:.0%}) exceeds the rebalance budget "
                        f"({self.rebalance_budget:.0%})"
                    ),
                    skew=skew, utilization=utilization,
                    estimated_moved_fraction=moved,
                )
            return Recommendation(
                action=SCALE_UP,
                reason=(
                    f"utilization {utilization:.2f} above "
                    f"{high:.2f}"
                ),
                skew=skew, utilization=utilization, workers_delta=1,
                estimated_moved_fraction=moved,
            )
        if utilization < low and num_workers > self.min_workers:
            moved = 1.0 / num_workers
            if moved > self.rebalance_budget:
                return Recommendation(
                    action=HOLD,
                    reason=(
                        f"underloaded (u={utilization:.2f}) but the move "
                        f"(~{moved:.0%}) exceeds the rebalance budget "
                        f"({self.rebalance_budget:.0%})"
                    ),
                    skew=skew, utilization=utilization,
                    estimated_moved_fraction=moved,
                )
            return Recommendation(
                action=SCALE_DOWN,
                reason=(
                    f"utilization {utilization:.2f} below "
                    f"{low:.2f}"
                ),
                skew=skew, utilization=utilization, workers_delta=-1,
                estimated_moved_fraction=moved,
            )
        base = balancer.recommend(num_workers)
        if (base.action == REBALANCE
                and base.estimated_moved_fraction <= self.rebalance_budget):
            return Recommendation(
                action=REBALANCE,
                reason=base.reason,
                skew=skew, utilization=utilization,
                estimated_moved_fraction=base.estimated_moved_fraction,
            )
        return Recommendation(
            action=HOLD,
            reason=(
                f"utilization {utilization:.2f} inside the "
                f"[{low:.2f}, {high:.2f}] band"
            ),
            skew=skew, utilization=utilization,
        )


def resolve_autoscale(
    autoscale, target_utilization: Optional[float] = None
) -> Optional[AutoscalePolicy]:
    """Normalize a service's ``autoscale`` argument.

    ``None``/``False`` disables autoscaling, ``True`` builds a default
    policy (honouring ``target_utilization`` when given), and an
    :class:`AutoscalePolicy` is used as-is.
    """
    if autoscale is None or autoscale is False:
        return None
    if autoscale is True:
        if target_utilization is not None:
            return AutoscalePolicy(target_utilization=target_utilization)
        return AutoscalePolicy()
    if isinstance(autoscale, AutoscalePolicy):
        return autoscale
    raise WorkloadError(
        f"autoscale must be None, a bool, or an AutoscalePolicy, "
        f"got {autoscale!r}"
    )
