"""Pluggable execution backends for the BSP engines.

``InlineExecutor`` (default) runs every logical worker serially in the
calling process; ``ParallelRuntime`` fans the compute sweep out over
persistent OS worker processes with a deterministic barrier merge, so both
backends produce bit-identical members and logical meters.  See
:mod:`repro.runtime.base` for the backend contract and
:mod:`repro.runtime.parallel` for the process model and wire format.
"""

from repro.runtime.base import (
    BarrierDraws,
    ExecutionBackend,
    InlineExecutor,
    PregelSweep,
    ScaleGSweep,
    predraw_barrier_faults,
    resolve_runtime,
)
from repro.runtime.elastic import (
    AutoscalePolicy,
    LoadBalancer,
    Recommendation,
    resolve_autoscale,
)
from repro.runtime.parallel import ParallelRuntime

__all__ = [
    "AutoscalePolicy",
    "BarrierDraws",
    "ExecutionBackend",
    "InlineExecutor",
    "LoadBalancer",
    "ParallelRuntime",
    "PregelSweep",
    "Recommendation",
    "ScaleGSweep",
    "predraw_barrier_faults",
    "resolve_autoscale",
    "resolve_runtime",
]
