"""Pluggable execution backends for the BSP engines.

``InlineExecutor`` (default) runs every logical worker serially in the
calling process; ``ParallelRuntime`` fans the compute sweep out over
persistent OS worker processes with a deterministic barrier merge, so both
backends produce bit-identical members and logical meters.  See
:mod:`repro.runtime.base` for the backend contract and
:mod:`repro.runtime.parallel` for the process model and wire format.
"""

from repro.runtime.base import (
    BarrierDraws,
    ExecutionBackend,
    InlineExecutor,
    PregelSweep,
    ScaleGSweep,
    predraw_barrier_faults,
    resolve_runtime,
)
from repro.runtime.parallel import ParallelRuntime

__all__ = [
    "BarrierDraws",
    "ExecutionBackend",
    "InlineExecutor",
    "ParallelRuntime",
    "PregelSweep",
    "ScaleGSweep",
    "predraw_barrier_faults",
    "resolve_runtime",
]
