"""Multi-process execution backend for the BSP engines.

:class:`ParallelRuntime` runs the per-superstep compute sweep across ``N``
persistent OS worker processes (stdlib :mod:`multiprocessing`, spawn-safe,
no extra dependencies).  The process model:

- Each worker process holds a **resident replica** for the whole run: the
  dynamic graph, the full host-state table, and its own rank-ordered
  adjacency cache (rebuilt locally from the shipped program, repaired by
  replayed graph ops).  Logical partition ``w`` is owned by process
  ``w % N`` for the lifetime of the pool, so ownership never migrates.
- Only **deltas cross the pipe**, length-prefixed (``Connection`` frames
  every message with a length header) and batched per barrier: the active
  ids grouped by logical partition + any state upserts/removals and graph
  ops committed since the last dispatch go down; changed states,
  force-sync ids, activation requests, per-partition work counters and the
  fault echo come back.
- Workers compute against their replica of the **last barrier's** states
  and never apply their own writes; the master ships each committed
  barrier's deltas with the next dispatch.  An aborted superstep (crash
  rollback, loss failover, exception-path restore) therefore needs no
  undo on the workers — they never saw it.  Any out-of-band state edit
  between runs (batch drivers creating implicit vertices, checkpoint
  restores) is caught by an O(n) mirror diff in :meth:`begin_run`.
- The barrier merge is **deterministic**: per-process replies are reduced
  in partition order and re-sorted by vertex id, which is exactly the
  inline sweep order (the active list is ascending).  Compute/meter sums
  are integers, so members, ``members_checksum`` and all logical meters
  are bit-identical to :class:`~repro.runtime.base.InlineExecutor`.
- Fault injection: the engine pre-draws each barrier's schedule
  (:meth:`predraw`), the dispatch ships every process the slice of draws
  its partitions own, the process observes/echoes them, and the merge
  verifies the echo against the draws before the engine acts on them —
  crash/straggler/loss faults thus *fire inside the owning worker
  process* while recovery stays on the master, byte-identical to inline.

Pickling contract: vertex states, message payloads, activation predicates
and the program itself must be picklable (module-level functions and
classes).  Everything the stock programs use qualifies; a violation
raises :class:`~repro.errors.ParallelRuntimeError` with the original
pickling error attached.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from operator import itemgetter
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ParallelRuntimeError
from repro.runtime.base import (
    BarrierDraws,
    ExecutionBackend,
    PregelSweep,
    ScaleGSweep,
    predraw_barrier_faults,
)

_MISSING = object()

# graph mutation opcodes (master observer -> worker replay)
_OP_ADD_VERTEX = 0
_OP_ADD_EDGE = 1
_OP_REMOVE_EDGE = 2
_OP_REMOVE_VERTEX = 3


def _send_msg(conn, obj: Any) -> None:
    """One length-prefixed frame: pickle the batch, ship it whole.

    ``Connection.send_bytes`` writes a length header before the payload,
    so the receiver always knows the frame boundary — no streaming parse.
    """
    conn.send_bytes(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _recv_msg(conn) -> Any:
    return pickle.loads(conn.recv_bytes())


# ---------------------------------------------------------------------------
# worker-process side
# ---------------------------------------------------------------------------
class _WorkerDGraph:
    """The slim ``dgraph`` facade contexts read inside a worker process."""

    __slots__ = ("graph",)

    def __init__(self, graph):
        self.graph = graph

    def degree(self, u: int) -> int:
        return self.graph.degree(u)

    def neighbors(self, u: int) -> Set[int]:
        return self.graph.neighbors(u)


class _WorkerAggregators:
    """Aggregator facade: reads last barrier's shipped values, records
    contributions for the master to replay in deterministic order."""

    __slots__ = ("previous_values", "sink")

    def __init__(self):
        self.previous_values: Dict[str, Any] = {}
        self.sink: List[Tuple[str, Any]] = []

    def contribute(self, name: str, value: Any) -> None:
        if name not in self.previous_values:
            raise KeyError(f"unknown aggregator {name!r}")
        self.sink.append((name, value))

    def previous(self, name: str) -> Any:
        if name not in self.previous_values:
            raise KeyError(f"unknown aggregator {name!r}")
        return self.previous_values[name]


class _WorkerHost:
    """Engine stand-in inside a worker process.

    Exposes exactly the attributes the vertex contexts dereference
    (``_states``, ``dgraph``, ``_ranked``, ``_outbox``, ``_aggregators``),
    so :class:`~repro.scaleg.engine.ScaleGContext` and
    :class:`~repro.pregel.engine.PregelContext` run unmodified against the
    resident replica.
    """

    def __init__(self, graph, states):
        self._states = states
        self.dgraph = _WorkerDGraph(graph)
        self._ranked = None
        self._outbox: List[Any] = []
        self._aggregators = _WorkerAggregators()
        self._scaleg_ctx = None

    def scaleg_context(self):
        """The worker-local (cached) ScaleG compute context."""
        ctx = self._scaleg_ctx
        if ctx is None:
            from repro.scaleg.engine import ScaleGContext

            ctx = self._scaleg_ctx = ScaleGContext(self, 0, 0, None)
        return ctx

    def begin_pregel_sweep(self, prev_agg):
        """Arm the aggregator view with last barrier's values; return it."""
        aggs = self._aggregators
        aggs.previous_values = prev_agg
        return aggs

    def begin_vertex(self):
        """Fresh per-vertex outbox and aggregator sink, installed and returned."""
        outbox: List[Any] = []
        sink: List[Any] = []
        self._outbox = outbox
        self._aggregators.sink = sink
        return outbox, sink


def _apply_graph_ops(graph, ops) -> None:
    """Replay the master's committed mutations on the replica.

    Replaying through the public :class:`DynamicGraph` API repairs the
    worker's attached rank caches exactly the way the master's were.
    """
    for op in ops:
        code = op[0]
        if code == _OP_ADD_EDGE:
            graph.add_edge(op[1], op[2])
        elif code == _OP_REMOVE_EDGE:
            graph.remove_edge(op[1], op[2])
        elif code == _OP_ADD_VERTEX:
            graph.add_vertex(op[1])
        else:
            graph.remove_vertex(op[1])


def _worker_sweep_scaleg(host, program, groups, superstep):
    ctx = host.scaleg_context()
    states = host._states
    compute = program.compute
    compute_work = 0
    per_lw: List[Tuple[int, int]] = []
    changed: List[Tuple[int, Any]] = []
    forced: List[int] = []
    requests: List[Tuple[int, List[int], List[Tuple[int, Any]]]] = []
    for lw, vertices in groups:
        lw_work = 0
        for u in vertices:
            ctx._reset(u, superstep, states[u])
            compute(ctx)
            work = ctx._work
            compute_work += work
            lw_work += work if work > 1 else 1
            if ctx._changed:
                changed.append((u, ctx._new))
            elif ctx._force_sync:
                forced.append(u)
            if ctx._activations or ctx._pred_activations:
                requests.append((u, ctx._activations, ctx._pred_activations))
                ctx._activations = []
                ctx._pred_activations = []
        per_lw.append((lw, lw_work))
    return (per_lw, compute_work, changed, forced, requests)


def _worker_sweep_pregel(host, program, groups, superstep, inbox, prev_agg):
    from repro.pregel.engine import PregelContext

    states = host._states
    host.begin_pregel_sweep(prev_agg)
    compute = program.compute
    compute_work = 0
    per_lw: List[Tuple[int, int]] = []
    results = []
    for lw, vertices in groups:
        lw_work = 0
        for u in vertices:
            outbox, sink = host.begin_vertex()
            ctx = PregelContext(host, u, superstep, inbox.get(u, []), states[u])
            compute(ctx)
            compute_work += ctx._work
            lw_work += max(ctx._work, 1)
            msgs = [(m.dest, m.payload, m.payload_bytes) for m in outbox]
            new_state = ctx._new_state if ctx._changed else None
            results.append((u, ctx._changed, new_state, msgs, sink))
        per_lw.append((lw, lw_work))
    return (per_lw, compute_work, results)


#: per-worker retained snapshot read views (pinned epoch segments); small
#: because the serve loop reads the newest epoch — older mappings age out
_READER_VIEW_CACHE = 4


def _worker_main(conn) -> None:
    """Entry point of one persistent worker process (spawn-importable)."""
    graph = None
    states: Dict[int, Any] = {}
    host = None
    program = None
    #: mapped shared-memory CSR frame (array-native sweeps), if any
    csr_view = None
    #: snapshot read views keyed by segment name, LRU order (oldest first)
    reader_views: Dict[str, Any] = {}

    def _drop_view():
        if csr_view is not None:
            csr_view.close()
        for name in sorted(reader_views):
            reader_views[name].close()
        reader_views.clear()

    while True:
        try:
            msg = _recv_msg(conn)
        except (EOFError, OSError):
            _drop_view()
            return
        kind = msg[0]
        if kind == "close":
            _drop_view()
            conn.close()
            return
        try:
            if kind == "init":
                graph, states = msg[1], msg[2]
                host = _WorkerHost(graph, states)
                program = None
                reply = ("ok", None)
            elif kind == "prologue":
                # out-of-band replica delta (elastic pool resize flushes
                # pending mutations without dispatching a sweep)
                ops, upserts, removals, new_program = msg[1]
                if ops:
                    _apply_graph_ops(graph, ops)
                for u in removals:
                    states.pop(u, None)
                states.update(upserts)
                if new_program is not None:
                    program = new_program
                    rank_cache = getattr(program, "rank_cache", None)
                    if rank_cache is not None:
                        host._ranked = rank_cache(graph)
                reply = ("ok", None)
            elif kind == "csr_sweep":
                _, superstep, meta, active_idx, cfg = msg
                from repro.graph import csr as _csr

                if meta is not None:
                    csr_view = _csr.worker_attach(csr_view, meta)
                if csr_view is None:
                    raise ParallelRuntimeError(
                        "csr sweep dispatched before any frame meta"
                    )
                payload = _csr.worker_sweep(csr_view, active_idx, cfg)
                reply = ("ok", payload, None)
            elif kind == "csr_read":
                # membership batch against a *pinned* epoch segment: map
                # it zero-copy (cached per name), gather the bitmap rows,
                # reply with one bool array — no per-query objects
                _, meta, rows = msg
                from repro.graph import csr as _csr

                seg_name = meta[0]
                view = reader_views.pop(seg_name, None)
                if view is None:
                    view = _csr.WorkerCSRView(meta)
                reader_views[seg_name] = view  # most recently used last
                while len(reader_views) > _READER_VIEW_CACHE:
                    reader_views.pop(
                        next(iter(reader_views))
                    ).close()
                reply = ("ok", view.in_[rows])
            elif kind == "sweep":
                _, mode, superstep, prologue, groups, extra, draw_slice = msg
                if prologue is not None:
                    ops, upserts, removals, new_program = prologue
                    if ops:
                        _apply_graph_ops(graph, ops)
                    for u in removals:
                        states.pop(u, None)
                    states.update(upserts)
                    if new_program is not None:
                        program = new_program
                        rank_cache = getattr(program, "rank_cache", None)
                        if rank_cache is not None:
                            host._ranked = rank_cache(graph)
                if mode == "scaleg":
                    payload = _worker_sweep_scaleg(host, program, groups, superstep)
                else:
                    inbox, prev_agg = extra
                    payload = _worker_sweep_pregel(
                        host, program, groups, superstep, inbox, prev_agg
                    )
                reply = ("ok", payload, draw_slice)
            else:
                reply = ("err", f"unknown message kind {kind!r}")
        except BaseException:
            reply = ("err", traceback.format_exc())
        try:
            _send_msg(conn, reply)
        except (BrokenPipeError, OSError):
            _drop_view()
            return


# ---------------------------------------------------------------------------
# master side
# ---------------------------------------------------------------------------
class ParallelRuntime(ExecutionBackend):
    """Process-pool execution backend (see module docstring).

    Parameters
    ----------
    procs:
        Worker process count; defaults to ``os.cpu_count()``.  Clamped to
        the engine's logical worker count at spawn time (extra processes
        would never own a partition).
    start_method:
        ``multiprocessing`` start method.  ``"spawn"`` (default) works on
        every platform and never inherits master state by accident;
        ``"fork"`` starts faster where available (tests use it).

    One instance may be shared across engines and reused across runs; the
    pool starts lazily on the first sweep and :meth:`close` (or garbage
    collection) tears it down.  The runtime registers itself as a graph
    mutation observer so the maintenance driver's edge updates replay on
    every replica before the next sweep.
    """

    kind = "process"

    def __init__(self, procs: Optional[int] = None, start_method: str = "spawn"):
        if procs is not None and procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        self.procs = procs if procs is not None else (os.cpu_count() or 1)
        self._mp = multiprocessing.get_context(start_method)
        self._engine = None
        self._graph = None
        self._conns: List[Any] = []
        self._workers: List[Any] = []
        self._needs_init = True
        # replica bookkeeping: _mirror is what the workers will hold after
        # every message sent *or buffered* so far; _pending_* is the
        # not-yet-shipped delta (next dispatch's prologue)
        self._mirror: Dict[int, Any] = {}
        self._pending_ops: List[Tuple[int, ...]] = []
        self._pending_upserts: Dict[int, Any] = {}
        self._pending_removals: Set[int] = set()
        self._current_program = None
        self._shipped_program = None
        #: what the pool was initialised with: None (nothing yet), "light"
        #: (no replica — array-native sweeps only) or "full" (graph +
        #: states replica for dict-path sweeps)
        self._init_kind: Optional[str] = None
        #: (segment name, epoch) of the CSR frame meta the workers hold
        self._csr_shipped: Optional[Tuple[str, int]] = None
        # pipe-traffic accounting (bytes actually pickled per direction);
        # reset via reset_frame_stats(), read via frame_stats()
        self.frames_sent = 0
        self.frame_bytes_sent = 0
        self.frame_bytes_received = 0
        self.sweeps_dispatched = 0
        #: snapshot read batches dispatched to workers (round-robin)
        self.reads_dispatched = 0

    @property
    def start_method(self) -> str:
        """The multiprocessing start method workers are created with."""
        return self._mp.get_start_method()

    # -- pipe-traffic accounting ----------------------------------------
    def frame_stats(self) -> Dict[str, int]:
        """Bytes pickled across the pipes since the last reset.

        ``frame_bytes_sent``/``frame_bytes_received`` are the exact pickle
        payload sizes (the ``Connection`` length header is excluded);
        ``sweeps_dispatched`` counts barrier dispatches, so
        ``frame_bytes_sent / sweeps_dispatched`` is the per-barrier
        down-link cost a backend comparison wants.
        """
        return {
            "frames_sent": self.frames_sent,
            "frame_bytes_sent": self.frame_bytes_sent,
            "frame_bytes_received": self.frame_bytes_received,
            "sweeps_dispatched": self.sweeps_dispatched,
        }

    def reset_frame_stats(self) -> None:
        self.frames_sent = 0
        self.frame_bytes_sent = 0
        self.frame_bytes_received = 0
        self.sweeps_dispatched = 0
        self.reads_dispatched = 0

    # -- snapshot reads --------------------------------------------------
    def read_membership(self, meta, rows):
        """Gather membership bits for ``rows`` from a pinned epoch frame
        inside a worker process.

        ``meta`` is the frame meta returned by
        :meth:`~repro.graph.csr.CSRPartition.pin_shared`; ``rows`` is an
        integer array of row indices.  One frame goes down (meta + rows),
        one bool array comes back; the worker maps the segment zero-copy
        and caches the mapping per segment name.  Batches round-robin
        across the pool so reads share capacity with maintenance sweeps.
        """
        self._ensure_workers(full_init=False)
        p = self.reads_dispatched % len(self._conns)
        self.reads_dispatched += 1
        self._send(p, self._conns[p], ("csr_read", meta, rows))
        return self._recv_ok(p)[1]

    # -- lifecycle ------------------------------------------------------
    def bind(self, engine) -> None:
        self._engine = engine
        graph = engine.dgraph.graph
        if graph is not self._graph:
            self._attach_graph(graph)

    def _attach_graph(self, graph) -> None:
        if self._graph is not None:
            self._graph.detach_mutation_observer(self)
        self._graph = graph
        graph.attach_mutation_observer(self)
        self._needs_init = True
        self._mirror.clear()
        self._pending_ops.clear()
        self._pending_upserts.clear()
        self._pending_removals.clear()

    def begin_run(self, program, states: Dict[int, Any]) -> None:
        self._current_program = program
        # mirror diff: catch every out-of-band state edit since the last
        # commit (implicit vertex creation, checkpoint restores, rollback)
        mirror = self._mirror
        upserts = self._pending_upserts
        if len(mirror) != len(states) or mirror.keys() != states.keys():
            for u in mirror.keys() - states.keys():
                upserts.pop(u, None)
                self._pending_removals.add(u)
            for u in self._pending_removals:
                mirror.pop(u, None)
        # sorted: the upsert frame's item order (hence its bytes) must not
        # depend on the states dict's insertion history
        for u, value in sorted(states.items()):
            held = mirror.get(u, _MISSING)
            if held is _MISSING or held != value:
                upserts[u] = value
                mirror[u] = value
                self._pending_removals.discard(u)

    def commit(self, new_states: Dict[int, Any]) -> None:
        if not new_states:
            return
        self._pending_upserts.update(new_states)
        self._mirror.update(new_states)
        if self._pending_removals:
            self._pending_removals.difference_update(new_states)

    def prestart(self, num_partitions: Optional[int] = None) -> None:
        """Spawn the worker pool now (benchmarks exclude spawn latency)."""
        self._ensure_workers(num_partitions)

    # -- elastic pool resize ---------------------------------------------
    def add_worker(self) -> int:
        """Grow the pool by one worker process; returns the new size.

        On a running full pool the pending mutation-opcode prologue is
        flushed to the incumbents first (so the newcomer's snapshot is not
        double-applied by the next dispatch), then the newcomer is spawned
        and streamed the live replica — the master's graph copy plus the
        state mirror — and the current program, exactly the state a sweep
        expects.  Light (array-sweep) pools carry no replica; the newcomer
        only needs the shared CSR frame meta, which the forced rebroadcast
        reships with the next sweep.  Partition ownership is computed per
        dispatch as ``partition % pool_size``, so the next barrier
        rebalances automatically and stays bit-identical (the reduce is
        sorted by vertex id either way).
        """
        if not self._workers or self._needs_init or self._init_kind is None:
            # pool not live yet: just grow the target; spawn-time init
            # covers the newcomer with everyone else
            self.procs = max(self.procs + 1, len(self._workers) + 1)
            self._needs_init = True
            return self.procs
        prologue = self._take_prologue()
        program = self._shipped_program
        if prologue is not None:
            if prologue[3] is not None:
                program = prologue[3]
            for p, conn in enumerate(self._conns):
                self._send(p, conn, ("prologue", prologue))
            for p in range(len(self._conns)):
                self._recv_ok(p)
        index = len(self._workers)
        parent, child = self._mp.Pipe()
        proc = self._mp.Process(
            target=_worker_main,
            args=(child,),
            name=f"repro-runtime-{index}",
            daemon=True,
        )
        proc.start()
        child.close()
        self._conns.append(parent)
        self._workers.append(proc)
        if self._init_kind == "full":
            self._send(index, parent,
                       ("init", self._graph.copy(), dict(self._mirror)))
            self._recv_ok(index)
            if program is not None:
                self._send(index, parent, ("prologue", ([], {}, [], program)))
                self._recv_ok(index)
        else:
            self._send(index, parent, ("init", None, {}))
            self._recv_ok(index)
        # force the frame meta down every pipe on the next csr sweep (the
        # newcomer has never mapped the segment)
        self._csr_shipped = None
        self.procs = len(self._workers)
        return self.procs

    def drain_worker(self) -> int:
        """Retire the highest-indexed worker process; returns the new size.

        The remaining workers already hold full replicas, so nothing needs
        to migrate across the pipes — ownership recomputes as
        ``partition % pool_size`` at the next dispatch.  Draining the last
        process is refused.
        """
        if not self._workers:
            if self.procs <= 1:
                raise ParallelRuntimeError(
                    "cannot drain below one worker process"
                )
            self.procs -= 1
            return self.procs
        if len(self._workers) <= 1:
            raise ParallelRuntimeError("cannot drain below one worker process")
        conn = self._conns.pop()
        proc = self._workers.pop()
        try:
            _send_msg(conn, ("close",))
        except (BrokenPipeError, OSError):
            pass
        proc.join(timeout=5)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
        try:
            conn.close()
        except OSError:
            pass
        self.procs = len(self._workers)
        return self.procs

    def close(self) -> None:
        """Stop the worker processes; the runtime stays reusable (the next
        sweep respawns and re-ships the replica)."""
        for conn in self._conns:
            try:
                _send_msg(conn, ("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._workers:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._conns = []
        self._workers = []
        self._needs_init = True
        self._init_kind = None
        self._csr_shipped = None
        self._mirror.clear()
        self._pending_ops.clear()
        self._pending_upserts.clear()
        self._pending_removals.clear()
        self._shipped_program = None
        if self._graph is not None:
            self._graph.detach_mutation_observer(self)
            self._graph = None

    def __del__(self):  # pragma: no cover - interpreter shutdown ordering
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- graph mutation observer (DynamicGraph) -------------------------
    def on_add_vertex(self, u: int) -> None:
        self._pending_ops.append((_OP_ADD_VERTEX, u))

    def on_add_edge(self, u: int, v: int) -> None:
        self._pending_ops.append((_OP_ADD_EDGE, u, v))

    def on_remove_edge(self, u: int, v: int) -> None:
        self._pending_ops.append((_OP_REMOVE_EDGE, u, v))

    def on_remove_vertex(self, u: int) -> None:
        self._pending_ops.append((_OP_REMOVE_VERTEX, u))

    # -- faults ---------------------------------------------------------
    def predraw(self, injector, superstep: int, num_workers: int) -> BarrierDraws:
        return predraw_barrier_faults(injector, superstep, num_workers)

    # -- pool management -------------------------------------------------
    def _ensure_workers(self, num_partitions: Optional[int] = None,
                        full_init: bool = True) -> None:
        if not self._workers:
            if num_partitions is None:
                if self._engine is None:
                    raise ParallelRuntimeError(
                        "runtime not bound to an engine yet"
                    )
                num_partitions = self._engine.dgraph.num_workers
            count = max(1, min(self.procs, num_partitions))
            for i in range(count):
                parent, child = self._mp.Pipe()
                proc = self._mp.Process(
                    target=_worker_main,
                    args=(child,),
                    name=f"repro-runtime-{i}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._workers.append(proc)
            self._needs_init = True
            self._init_kind = None
            self._csr_shipped = None
        needs_upgrade = (
            full_init and not self._needs_init and self._init_kind == "light"
        )
        if (self._needs_init or needs_upgrade) and self._graph is not None:
            if full_init:
                snapshot = self._graph.copy()
                self._broadcast(("init", snapshot, {}))
                for p in range(len(self._conns)):
                    self._recv_ok(p)
                # the snapshot already contains every buffered mutation; the
                # states replica starts empty and fills from the mirror-diff
                # upserts queued by begin_run — or, on an upgrade from a
                # light (array-sweeps-only) pool, from the whole mirror,
                # because light mode never shipped any states
                self._pending_ops.clear()
                self._pending_upserts = dict(self._mirror)
                self._pending_removals.clear()
                self._shipped_program = None
                self._init_kind = "full"
            else:
                # array-native sweeps need no graph/state replica at all:
                # workers map the shared CSR frame instead
                self._broadcast(("init", None, {}))
                for p in range(len(self._conns)):
                    self._recv_ok(p)
                self._shipped_program = None
                self._init_kind = "light"
            self._csr_shipped = None
            self._needs_init = False

    def _broadcast(self, msg) -> None:
        for p, conn in enumerate(self._conns):
            self._send(p, conn, msg)

    def _send(self, p: int, conn, msg) -> None:
        try:
            data = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            raise ParallelRuntimeError(
                "the process runtime requires picklable programs, states, "
                f"payloads and activation predicates: {exc}"
            ) from exc
        self.frames_sent += 1
        self.frame_bytes_sent += len(data)
        try:
            conn.send_bytes(data)
        except (BrokenPipeError, OSError) as exc:
            raise ParallelRuntimeError(
                f"worker process {p} is gone: {exc}"
            ) from exc

    def _recv_ok(self, p: int):
        conn = self._conns[p]
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise ParallelRuntimeError(
                f"worker process {p} died mid-superstep"
            ) from exc
        self.frame_bytes_received += len(data)
        reply = pickle.loads(data)
        if reply[0] != "ok":
            raise ParallelRuntimeError(
                f"worker process {p} failed:\n{reply[1]}"
            )
        return reply

    # -- dispatch helpers ------------------------------------------------
    def _take_prologue(self):
        ship_program = None
        if self._current_program is not self._shipped_program:
            ship_program = self._current_program
        if not (
            self._pending_ops
            or self._pending_upserts
            or self._pending_removals
            or ship_program is not None
        ):
            return None
        prologue = (
            self._pending_ops,
            self._pending_upserts,
            sorted(self._pending_removals),
            ship_program,
        )
        self._pending_ops = []
        self._pending_upserts = {}
        self._pending_removals = set()
        if ship_program is not None:
            self._shipped_program = ship_program
        return prologue

    def _group_active(self, active) -> List[List[Tuple[int, List[int]]]]:
        """Group the (ascending) active list by logical partition, then
        assign partition ``w`` to process ``w % N`` — the static ownership
        map every dispatch uses."""
        worker_of = self._engine.dgraph.worker_of
        nprocs = len(self._conns)
        by_lw: Dict[int, List[int]] = {}
        for u in active:
            lw = worker_of(u)
            bucket = by_lw.get(lw)
            if bucket is None:
                bucket = by_lw[lw] = []
            bucket.append(u)
        per_proc: List[List[Tuple[int, List[int]]]] = [[] for _ in range(nprocs)]
        for lw in sorted(by_lw):
            per_proc[lw % nprocs].append((lw, by_lw[lw]))
        return per_proc

    def _draw_slices(self, draws: Optional[BarrierDraws], num_workers: int):
        nprocs = len(self._conns)
        if draws is None:
            return [None] * nprocs
        slices = []
        for p in range(nprocs):
            owned = [w for w in range(num_workers) if w % nprocs == p]
            slices.append(draws.slice_for(owned))
        return slices

    @staticmethod
    def _merge_echo(
        echo_parts, draws: Optional[BarrierDraws], num_workers: int
    ):
        if draws is None:
            return None
        delays = [0.0] * num_workers
        lost: List[int] = []
        crashed: List[int] = []
        for part in echo_parts:
            if part is None:
                continue
            for w, d in part[0]:
                delays[w] = d
            lost.extend(part[1])
            crashed.extend(part[2])
        return (delays, sorted(lost), sorted(crashed))

    # -- sweeps ----------------------------------------------------------
    def sweep_scaleg(self, active, superstep: int, draws=None) -> ScaleGSweep:
        engine = self._engine
        kernel = getattr(engine, "_csr_kernel", None)
        if (
            kernel is not None
            and getattr(engine, "_csr_fast", False)
            and draws is None
        ):
            return self._sweep_scaleg_csr(engine, kernel, active, superstep)
        self._ensure_workers()
        self.sweeps_dispatched += 1
        num_workers = engine.dgraph.num_workers
        prologue = self._take_prologue()
        per_proc = self._group_active(active)
        slices = self._draw_slices(draws, num_workers)
        for p, conn in enumerate(self._conns):
            self._send(
                p, conn,
                ("sweep", "scaleg", superstep, prologue, per_proc[p], None,
                 slices[p]),
            )
        worker_work = [0] * num_workers
        compute_work = 0
        changed_pairs: List[Tuple[int, Any]] = []
        forced: List[int] = []
        requests: List[Tuple[int, List[int], List[Tuple[int, Any]]]] = []
        echo_parts = []
        for p in range(len(self._conns)):
            _, payload, echo = self._recv_ok(p)
            per_lw, cw, ch, fo, rq = payload
            compute_work += cw
            for lw, w in per_lw:
                worker_work[lw] += w
            changed_pairs.extend(ch)
            forced.extend(fo)
            requests.extend(rq)
            echo_parts.append(echo)
        # deterministic barrier reduce: ascending vertex id is exactly the
        # inline sweep order (the active list is ascending)
        changed_pairs.sort(key=itemgetter(0))
        forced.sort()
        requests.sort(key=itemgetter(0))
        return ScaleGSweep(
            new_states=dict(changed_pairs),
            changed=[u for u, _ in changed_pairs],
            forced=forced,
            requests=requests,
            compute_work=compute_work,
            worker_work=worker_work,
            fault_echo=self._merge_echo(echo_parts, draws, num_workers),
        )

    def _sweep_scaleg_csr(self, engine, kernel, active,
                          superstep: int) -> ScaleGSweep:
        """Array-native sweep over the shared-memory CSR frame.

        Down-link per barrier: the frame meta (segment name + layout, only
        when the structure changed since the last ship) plus each process's
        slice of active *row indices* and the kernel config.  Up-link:
        per-worker work, compute work, and four typed delta arrays.  No
        graph, state, program or activation objects are ever pickled.
        """
        import numpy as np

        from repro.graph.csr import CSRSweepExtras, decode_worker_sweep

        part = engine._csr
        self._ensure_workers(full_init=False)
        self.sweeps_dispatched += 1
        if self._init_kind == "light":
            # replica deltas are irrelevant to array sweeps; drop them so
            # the buffers stay bounded (the mirror stays authoritative —
            # an upgrade to a full pool reships it wholesale)
            self._pending_ops.clear()
            self._pending_upserts.clear()
            self._pending_removals.clear()
        a = part.index_of(active)
        meta = part.publish_shared()
        token = (meta[0], meta[1])
        ship_meta = meta if token != self._csr_shipped else None
        nprocs = len(self._conns)
        num_workers = engine.dgraph.num_workers
        proc_of = part.home[a] % nprocs
        cfg = kernel.config(num_workers)
        for p, conn in enumerate(self._conns):
            self._send(
                p, conn,
                ("csr_sweep", superstep, ship_meta,
                 a[proc_of == p].astype(np.int32), cfg),
            )
        self._csr_shipped = token
        worker_work = [0] * num_workers
        compute_work = 0
        idx_parts, val_parts, src_parts, tgt_parts = [], [], [], []
        for p in range(nprocs):
            reply = self._recv_ok(p)
            cw, ww, changed_idx, changed_val, req_src, req_tgt = (
                decode_worker_sweep(reply[1])
            )
            compute_work += cw
            for w in range(num_workers):
                worker_work[w] += ww[w]
            idx_parts.append(changed_idx)
            val_parts.append(changed_val)
            src_parts.append(req_src)
            tgt_parts.append(req_tgt)
        changed_idx = np.concatenate(idx_parts)
        changed_val = np.concatenate(val_parts)
        # deterministic reduce: rows are unique across processes, so the
        # argsort restores exactly the inline (ascending) order
        order = np.argsort(changed_idx)
        changed_idx = changed_idx[order]
        changed_val = changed_val[order]
        extras = CSRSweepExtras(
            changed_idx, changed_val,
            np.concatenate(src_parts), np.concatenate(tgt_parts),
        )
        changed_ids = part.ids[changed_idx].tolist()
        return ScaleGSweep(
            new_states=dict(zip(changed_ids, changed_val.tolist())),
            changed=changed_ids,
            forced=[],
            requests=[],
            compute_work=compute_work,
            worker_work=worker_work,
            csr=extras,
        )

    def sweep_pregel(
        self, states, active, superstep: int, inbox, draws=None
    ) -> PregelSweep:
        engine = self._engine
        self._ensure_workers()
        self.sweeps_dispatched += 1
        num_workers = engine.dgraph.num_workers
        prologue = self._take_prologue()
        per_proc = self._group_active(active)
        slices = self._draw_slices(draws, num_workers)
        registry = engine._aggregators
        prev_agg = {name: registry.previous(name) for name in registry.names()}
        from repro.pregel.message import Message

        for p, conn in enumerate(self._conns):
            slice_inbox = {}
            for _, vertices in per_proc[p]:
                for u in vertices:
                    payloads = inbox.get(u)
                    if payloads is not None:
                        slice_inbox[u] = payloads
            self._send(
                p, conn,
                ("sweep", "pregel", superstep, prologue, per_proc[p],
                 (slice_inbox, prev_agg), slices[p]),
            )
        worker_work = [0] * num_workers
        compute_work = 0
        merged = []
        echo_parts = []
        for p in range(len(self._conns)):
            _, payload, echo = self._recv_ok(p)
            per_lw, cw, results = payload
            compute_work += cw
            for lw, w in per_lw:
                worker_work[lw] += w
            merged.extend(results)
            echo_parts.append(echo)
        merged.sort(key=itemgetter(0))
        # replay sends and aggregator contributions in inline order, so the
        # outbox sequence and the (order-sensitive) aggregator reductions
        # are bit-identical to the serial sweep
        new_states: Dict[int, Any] = {}
        outbox = engine._outbox
        contribute = registry.contribute
        for u, was_changed, new_state, msgs, sink in merged:
            if was_changed:
                new_states[u] = new_state
            for dest, payload_value, payload_bytes in msgs:
                # master-side barrier replay (not worker code): rebuilding
                # the engine outbox in inline send order IS the sweep delta
                outbox.append(Message(u, dest, payload_value, payload_bytes))  # repro-lint: disable=P1
            for name, value in sink:
                contribute(name, value)
        return PregelSweep(
            new_states=new_states,
            compute_work=compute_work,
            worker_work=worker_work,
            fault_echo=self._merge_echo(echo_parts, draws, num_workers),
        )
