"""Pluggable execution backends for the BSP engines.

Both engines (:class:`~repro.scaleg.engine.ScaleGEngine` and
:class:`~repro.pregel.engine.PregelEngine`) drive their per-superstep
*compute sweep* through an :class:`ExecutionBackend`:

- :class:`InlineExecutor` — today's behavior and the default: all logical
  workers execute serially in the calling process.  This is the reference
  implementation every other backend must match bit-for-bit.
- :class:`~repro.runtime.parallel.ParallelRuntime` — persistent OS worker
  processes, each owning a fixed subset of the logical partitions for the
  whole run; only per-superstep deltas cross the pipe.

The contract that makes backends interchangeable: a sweep is a *pure
function* of ``(states as of the last barrier, active set, superstep)``.
Everything order-sensitive — barrier commit, sync charging, activation
filtering, fault processing, recovery — stays in the engine, fed from the
:class:`ScaleGSweep` / :class:`PregelSweep` the backend returns.  The
backend merges per-partition results in partition order (ascending vertex
id within the sweep), so members, ``members_checksum`` and every logical
meter are bit-identical across backends; ``bench-perf --check`` and the
chaos convergence oracle double as the backend-equivalence harness.

Fault injection composes through :meth:`ExecutionBackend.predraw`: a
parallel backend pre-draws the barrier's crash/loss/straggler schedule
(draws are pure keyed hashes plus a fire-once set, so drawing before the
sweep yields the same values as drawing at the barrier), ships each worker
process the slice it owns, and the engine verifies the workers' echo
against the draws before acting on them.  The inline backend returns
``None`` and the engine draws at the barrier exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class BarrierDraws:
    """One superstep's pre-drawn fault schedule (parallel backends only).

    Drawn by the engine *before* dispatching the sweep so the owning worker
    processes can observe their own faults; the engine then processes the
    same draws at the barrier in the exact order the inline path would have
    drawn them (stragglers per worker, then losses, then crashes).
    """

    #: modelled straggler delay per logical worker (0.0 = on time)
    delays: List[float]
    #: logical workers declared permanently dead at this barrier
    lost: List[int]
    #: logical workers that crash (transient) at this barrier
    crashed: List[int]

    def slice_for(self, owned: List[int]) -> Tuple[Any, ...]:
        """The portion of the schedule owned by one worker process."""
        owned_set = set(owned)
        return (
            [(w, d) for w, d in enumerate(self.delays) if d and w in owned_set],
            [w for w in self.lost if w in owned_set],
            [w for w in self.crashed if w in owned_set],
        )

    def echo(self) -> Tuple[Any, ...]:
        """What a faithful set of workers should echo back, merged."""
        return (self.delays, self.lost, self.crashed)


def predraw_barrier_faults(injector, superstep: int, num_workers: int) -> BarrierDraws:
    """Draw the barrier fault schedule ahead of the sweep.

    Every injector draw is a pure ``blake2b`` keyed lookup guarded by a
    fire-once set, so the values are independent of *when* they are drawn
    relative to the sweep; the draw order here mirrors the inline barrier
    (stragglers in worker order, then losses, then crashes) so the
    fire-once bookkeeping matches too.
    """
    delays = [
        injector.straggler_delay(superstep, w) for w in range(num_workers)
    ]
    lost = injector.lost_workers(superstep, range(num_workers))
    crashed = injector.crashed_workers(superstep, range(num_workers))
    return BarrierDraws(delays=delays, lost=lost, crashed=crashed)


@dataclass
class ScaleGSweep:
    """One ScaleG compute sweep's outcome, merged in partition order."""

    #: vertex -> new state for every vertex whose state changed
    new_states: Dict[int, Any]
    #: changed vertices in ascending id order (the inline sweep order)
    changed: List[int]
    #: unchanged vertices that called ``force_sync`` (ascending)
    forced: List[int]
    #: (source, plain activation targets, predicated targets) per requester
    requests: List[Tuple[int, List[int], List[Tuple[int, Any]]]]
    #: total compute units charged this sweep
    compute_work: int
    #: compute units per logical worker (load-balance record)
    worker_work: List[int]
    #: (delays, lost, crashed) observed inside the worker processes;
    #: ``None`` for inline sweeps (the engine draws at the barrier itself)
    fault_echo: Optional[Tuple[Any, ...]] = None
    #: :class:`~repro.graph.csr.CSRSweepExtras` when the sweep ran on the
    #: array-native fast path — the engine then charges the barrier from
    #: the typed delta arrays instead of ``requests`` (which stays empty)
    csr: Any = None


@dataclass
class PregelSweep:
    """One Pregel compute sweep's outcome, merged in partition order."""

    #: vertex -> new state for every vertex whose state changed
    new_states: Dict[int, Any]
    compute_work: int
    worker_work: List[int]
    fault_echo: Optional[Tuple[Any, ...]] = None


class ExecutionBackend:
    """Interface every execution backend implements.

    Lifecycle: ``bind(engine)`` once per run entry, ``begin_run`` after the
    engine resolved program + states, then per superstep ``predraw`` (fault
    runs only) and one ``sweep_*`` call, ``commit`` after each barrier that
    commits, and ``close`` when the owning engine/maintainer is done.
    """

    #: short name surfaced in CLI/bench output
    kind = "inline"

    def bind(self, engine) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def begin_run(self, program, states: Dict[int, Any]) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def predraw(self, injector, superstep: int, num_workers: int):
        """Pre-draw barrier faults, or ``None`` to draw at the barrier."""
        return None

    def sweep_scaleg(self, active, superstep: int, draws=None) -> ScaleGSweep:
        raise NotImplementedError  # pragma: no cover - interface

    def sweep_pregel(
        self, states, active, superstep: int, inbox, draws=None
    ) -> PregelSweep:
        raise NotImplementedError  # pragma: no cover - interface

    def commit(self, new_states: Dict[int, Any]) -> None:
        """A barrier committed ``new_states`` into the master states."""

    def close(self) -> None:
        """Release any resources (worker processes, pipes)."""


class InlineExecutor(ExecutionBackend):
    """Serial in-process execution — the reference backend.

    The sweep bodies below are the engines' original hot loops, moved
    verbatim; every instruction that touches a meter runs in the same
    order, so this backend *defines* bit-identity.
    """

    kind = "inline"

    def __init__(self) -> None:
        self._engine = None
        self._program = None
        self._ctx = None

    def bind(self, engine) -> None:
        if engine is not self._engine:
            self._engine = engine
            self._ctx = None

    def begin_run(self, program, states: Dict[int, Any]) -> None:
        self._program = program
        self._ctx = None

    # -- ScaleG ---------------------------------------------------------
    def sweep_scaleg(self, active, superstep: int, draws=None) -> ScaleGSweep:
        engine = self._engine
        kernel = getattr(engine, "_csr_kernel", None)
        if kernel is not None:
            # array-native representation: the whole sweep is a few
            # vectorized passes (bit-identical to the loop below)
            return kernel.sweep(engine, active, superstep)
        states = engine._states
        worker_of = engine.dgraph.worker_of
        ctx = self._ctx
        if ctx is None:
            # one context reused across every compute call (programs may
            # not retain it across supersteps — BSP discipline, enforced
            # by lint)
            from repro.scaleg.engine import ScaleGContext

            ctx = self._ctx = ScaleGContext(engine, 0, 0, None)
        compute = self._program.compute
        worker_work = [0] * engine.dgraph.num_workers
        compute_work = 0
        new_states: Dict[int, Any] = {}
        changed: List[int] = []
        forced: List[int] = []
        requests: List[Tuple[int, List[int], List[Tuple[int, Any]]]] = []
        for u in active:
            ctx._reset(u, superstep, states[u])
            compute(ctx)
            work = ctx._work
            compute_work += work
            worker_work[worker_of(u)] += work if work > 1 else 1
            if ctx._changed:
                new_states[u] = ctx._new
                changed.append(u)
            elif ctx._force_sync:
                forced.append(u)
            if ctx._activations or ctx._pred_activations:
                requests.append((u, ctx._activations, ctx._pred_activations))
                ctx._activations = []
                ctx._pred_activations = []
        return ScaleGSweep(
            new_states=new_states,
            changed=changed,
            forced=forced,
            requests=requests,
            compute_work=compute_work,
            worker_work=worker_work,
        )

    # -- Pregel ---------------------------------------------------------
    def sweep_pregel(
        self, states, active, superstep: int, inbox, draws=None
    ) -> PregelSweep:
        engine = self._engine
        worker_of = engine.dgraph.worker_of
        from repro.pregel.engine import PregelContext

        program_compute = self._program.compute
        worker_work = [0] * engine.dgraph.num_workers
        compute_work = 0
        new_states: Dict[int, Any] = {}
        for u in active:
            ctx = PregelContext(engine, u, superstep, inbox.get(u, []), states[u])
            program_compute(ctx)
            compute_work += ctx._work
            worker_work[worker_of(u)] += max(ctx._work, 1)
            if ctx._changed:
                new_states[u] = ctx._new_state
        return PregelSweep(
            new_states=new_states,
            compute_work=compute_work,
            worker_work=worker_work,
        )


def resolve_runtime(runtime, procs: Optional[int] = None) -> ExecutionBackend:
    """Resolve the engine constructors' ``runtime=`` argument.

    ``None`` or ``"inline"`` build an :class:`InlineExecutor`; ``"process"``
    builds a :class:`~repro.runtime.parallel.ParallelRuntime` with ``procs``
    worker processes; an :class:`ExecutionBackend` instance passes through
    (the caller owns its lifecycle and may share it across engines).
    """
    if runtime is None or runtime == "inline":
        return InlineExecutor()
    if isinstance(runtime, ExecutionBackend):
        return runtime
    if runtime == "process":
        from repro.runtime.parallel import ParallelRuntime

        return ParallelRuntime(procs=procs)
    raise ValueError(
        f"unknown runtime {runtime!r}: expected 'inline', 'process', or an "
        "ExecutionBackend instance"
    )
