"""Plain-text rendering of experiment results.

The drivers in :mod:`repro.bench.harness` return lists of dict rows; the
functions here print them the way the paper's tables/figures present them so
``pytest benchmarks/ --benchmark-only`` output can be eyeballed against the
paper directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict], columns: Sequence[str], title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                text = f"{value:.4g}"
            else:
                text = str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
        )
    return "\n".join(lines)


def format_series(series: Dict[str, List], x_name: str, title: str = "") -> str:
    """Render an x-vs-many-ys mapping (figure-style output).

    ``series`` maps a label to a list of values; the ``x_name`` entry is the
    x axis.
    """
    xs = series[x_name]
    columns = [x_name] + [k for k in series if k != x_name]
    rows = []
    for i, x in enumerate(xs):
        row = {x_name: x}
        for label in columns[1:]:
            row[label] = series[label][i]
        rows.append(row)
    return format_table(rows, columns, title=title)


def print_report(text: str) -> None:
    """Emit a report block (kept separate so tests can capture it)."""
    print()
    print(text)
    print()
