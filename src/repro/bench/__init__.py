"""Benchmark harness: workloads, experiment drivers, reporting."""

from repro.bench.harness import (
    fig10_efficiency,
    fig11_batch_size,
    fig12_machines,
    fig13_updates,
    table2_order_independence,
    table3_optimizations,
    table4_effectiveness,
)
from repro.bench.reporting import format_series, format_table, print_report
from repro.bench.workloads import (
    batched,
    delete_reinsert_workload,
    deletion_insertion_halves,
    mixed_workload,
    sample_edges,
)

__all__ = [
    "batched",
    "delete_reinsert_workload",
    "deletion_insertion_halves",
    "fig10_efficiency",
    "fig11_batch_size",
    "fig12_machines",
    "fig13_updates",
    "format_series",
    "format_table",
    "mixed_workload",
    "print_report",
    "sample_edges",
    "table2_order_independence",
    "table3_optimizations",
    "table4_effectiveness",
]
