"""Update-workload generators (the paper's experimental protocol).

Section VII: *"we randomly delete k edges and insert them back in total of
2k update operations"*.  :func:`delete_reinsert_workload` implements exactly
that; :func:`mixed_workload` generates an arbitrary valid
insertion/deletion stream (used by the property tests and the update-count
scalability sweep); :func:`batched` splits a stream into the paper's
``b``-sized batches.

All generators are deterministic under their ``seed`` and never produce an
invalid operation (deleting a missing edge / inserting a present one) when
replayed in order from the given graph.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import EdgeDeletion, EdgeInsertion, EdgeUpdate


def sample_edges(
    graph: DynamicGraph, k: int, seed: int = 0
) -> List[Tuple[int, int]]:
    """``k`` distinct random edges of ``graph`` (deterministic)."""
    edges = graph.sorted_edges()
    if k > len(edges):
        raise WorkloadError(
            f"cannot sample {k} edges from a graph with {len(edges)}"
        )
    rng = random.Random(seed)
    return rng.sample(edges, k)


def delete_reinsert_workload(
    graph: DynamicGraph, k: int, seed: int = 0
) -> List[EdgeUpdate]:
    """The paper's workload: delete ``k`` random edges, re-insert the same
    ``k`` — 2k operations total.

    Applying the whole stream returns the graph to its original state, which
    is what makes the result-consistency experiments (Table IV, "the
    independent set sizes are the same for different values of b") possible.
    """
    sampled = sample_edges(graph, k, seed=seed)
    ops: List[EdgeUpdate] = [EdgeDeletion(u, v) for u, v in sampled]
    ops.extend(EdgeInsertion(u, v) for u, v in sampled)
    return ops


def mixed_workload(
    graph: DynamicGraph,
    num_ops: int,
    insert_ratio: float = 0.5,
    seed: int = 0,
) -> List[EdgeUpdate]:
    """A valid random stream of ``num_ops`` insertions/deletions.

    The stream is generated against a scratch copy so replaying it in order
    from ``graph`` is always valid.  Insertions pick uniform random
    non-edges between existing vertices; deletions pick uniform random
    current edges.
    """
    if not 0.0 <= insert_ratio <= 1.0:
        raise WorkloadError(f"insert_ratio must be in [0, 1], got {insert_ratio}")
    rng = random.Random(seed)
    scratch = graph.copy()
    vertices = scratch.sorted_vertices()
    if len(vertices) < 2:
        raise WorkloadError("need at least two vertices to generate updates")
    ops: List[EdgeUpdate] = []
    edges = scratch.sorted_edges()
    guard = 0
    while len(ops) < num_ops:
        guard += 1
        if guard > 100 * num_ops + 1000:
            raise WorkloadError("workload generation is not making progress")
        want_insert = rng.random() < insert_ratio or not edges
        if want_insert:
            u = vertices[rng.randrange(len(vertices))]
            v = vertices[rng.randrange(len(vertices))]
            if u == v or scratch.has_edge(u, v):
                continue
            scratch.add_edge(u, v)
            edges.append((min(u, v), max(u, v)))
            ops.append(EdgeInsertion(u, v))
        else:
            idx = rng.randrange(len(edges))
            u, v = edges[idx]
            edges[idx] = edges[-1]
            edges.pop()
            scratch.remove_edge(u, v)
            ops.append(EdgeDeletion(u, v))
    return ops


def batched(
    operations: Sequence[EdgeUpdate], batch_size: int
) -> Iterator[List[EdgeUpdate]]:
    """Split an update stream into batches of ``batch_size`` (the last batch
    may be smaller)."""
    if batch_size < 1:
        raise WorkloadError(f"batch_size must be >= 1, got {batch_size}")
    for start in range(0, len(operations), batch_size):
        yield list(operations[start:start + batch_size])


def deletion_insertion_halves(
    operations: Sequence[EdgeUpdate],
) -> Tuple[List[EdgeUpdate], List[EdgeUpdate]]:
    """Split a delete-reinsert stream into its two phase batches.

    Figure 10(b) processes the 2k operations as exactly two batches: the
    deletion half and the insertion half.
    """
    deletions = [op for op in operations if isinstance(op, EdgeDeletion)]
    insertions = [op for op in operations if isinstance(op, EdgeInsertion)]
    return deletions, insertions
