"""Experiment drivers — one per table/figure of the paper's evaluation.

Every driver takes the knobs the paper varies (datasets, ``k`` updates,
batch size ``b``, machine count ``|W|``) with laptop-scale defaults, runs the
real algorithms on the simulated cluster, and returns structured rows that
:mod:`repro.bench.reporting` renders next to the paper's numbers.  The
benchmark modules under ``benchmarks/`` are thin wrappers over these
drivers; EXPERIMENTS.md records one captured run of each.

Scaling note: the paper's default workload is k = 50,000 deletions +
re-insertions on billion-edge graphs; the stand-ins are ~30,000x smaller, so
the drivers default to proportionally smaller ``k`` — override per call.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.activation import ActivationStrategy
from repro.core.baselines import make_algorithm
from repro.core.dismis import run_dismis
from repro.core.doimis import DOIMISMaintainer
from repro.core.oimis import run_oimis
from repro.core.verification import assert_valid_mis
from repro.errors import MemoryBudgetExceeded
from repro.graph.datasets import load_dataset
from repro.graph.dynamic_graph import DynamicGraph
from repro.serial.arw import arw_mis
from repro.serial.degeneracy import DGOne, DGTwo
from repro.serial.memory_model import SCALED_SINGLE_MACHINE_BUDGET_MB
from repro.serial.swap import DTSwap, LazyDTSwap
from repro.bench.workloads import (
    batched,
    delete_reinsert_workload,
    deletion_insertion_halves,
    mixed_workload,
)

#: datasets Table II / Table III report (the paper's representative picks)
TABLE2_TAGS = ("SKI", "TW", "UK07", "UK14", "CW", "GSH")
TABLE3_TAGS = TABLE2_TAGS
#: large-group datasets the efficiency figures sweep
FIG10_TAGS = ("UK02", "TW", "SK05", "FR", "UK06", "UK07")


# ---------------------------------------------------------------------------
# Table II — order independence: DisMIS vs OIMIS (static)
# ---------------------------------------------------------------------------
def table2_order_independence(
    tags: Sequence[str] = TABLE2_TAGS, num_workers: int = 10
) -> List[Dict]:
    """Static DisMIS vs OIMIS on each dataset: time / comm / memory /
    supersteps, with a result-equality assertion (Theorem 4.1).

    ``response_time_s`` is the BSP makespan model (slowest worker + wire +
    barrier per superstep) under the default Gigabit/3 GHz machine model:
    OIMIS trades some extra local re-evaluation for far less
    synchronization, which is a win exactly because cluster response time
    is communication-bound — the single-process ``wall_time_s`` (also
    reported) cannot see the network and under-credits OIMIS on the
    largest graphs.
    """
    rows: List[Dict] = []
    for tag in tags:
        dismis = run_dismis(load_dataset(tag), num_workers=num_workers)
        oimis = run_oimis(load_dataset(tag), num_workers=num_workers)
        if dismis.independent_set != oimis.independent_set:
            raise AssertionError(
                f"Theorem 4.1 violated on {tag}: DisMIS and OIMIS differ"
            )
        for name, run in (("DisMIS", dismis), ("OIMIS", oimis)):
            rows.append(
                {
                    "dataset": tag,
                    "algorithm": name,
                    "set_size": len(run.independent_set),
                    "response_time_s": run.metrics.simulated_time(),
                    "wall_time_s": run.metrics.wall_time_s,
                    "communication_mb": run.metrics.communication_mb,
                    "memory_mb": run.metrics.memory_mb,
                    "supersteps": run.metrics.supersteps,
                    "compute_work": run.metrics.compute_work,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table III — optimization techniques: OIMIS vs +LR vs +SS (static)
# ---------------------------------------------------------------------------
def table3_optimizations(
    tags: Sequence[str] = TABLE3_TAGS, num_workers: int = 10
) -> List[Dict]:
    """OIMIS with the three activation strategies; the paper reports +LR and
    +SS as percentage reductions over the previous column."""
    strategies = (
        ("OIMIS", ActivationStrategy.ALL),
        ("+LR", ActivationStrategy.LOWER_RANKING),
        ("+SS", ActivationStrategy.SAME_STATUS),
    )
    rows: List[Dict] = []
    for tag in tags:
        reference_set = None
        for name, strategy in strategies:
            run = run_oimis(
                load_dataset(tag), num_workers=num_workers, strategy=strategy
            )
            if reference_set is None:
                reference_set = run.independent_set
            elif run.independent_set != reference_set:
                raise AssertionError(
                    f"selective activation changed the result on {tag} ({name})"
                )
            rows.append(
                {
                    "dataset": tag,
                    "variant": name,
                    "response_time_s": run.metrics.wall_time_s,
                    "active_vertices": run.metrics.active_vertices,
                    "supersteps": run.metrics.supersteps,
                    "communication_mb": run.metrics.communication_mb,
                    "memory_mb": run.metrics.memory_mb,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table IV — effectiveness: DOIMIS vs centralized dynamic algorithms
# ---------------------------------------------------------------------------
def _run_serial_dynamic(factory: Callable, graph: DynamicGraph, ops, budget_mb):
    """Run a centralized maintainer over the stream; 'OOM' on budget breach."""
    try:
        algorithm = factory(graph, memory_budget_mb=budget_mb)
        for op in ops:
            algorithm.apply(op)
        return len(algorithm.independent_set())
    except MemoryBudgetExceeded:
        return None


def table4_effectiveness(
    tags: Optional[Sequence[str]] = None,
    k: int = 200,
    num_workers: int = 10,
    seed: int = 0,
    memory_budget_mb: float = SCALED_SINGLE_MACHINE_BUDGET_MB,
    batch_size: int = 100,
) -> List[Dict]:
    """Independent-set size after the delete-reinsert workload: DOIMIS vs
    ARW / DGTwo / DTSwap / LazyDTSwap, with the paper's ``prec`` column.

    Centralized algorithms run under the scaled single-machine memory
    budget and report ``None`` (rendered "OOM") where the model trips —
    reproducing Table IV's failure pattern.
    """
    from repro.graph.datasets import dataset_tags

    if tags is None:
        tags = dataset_tags()
    rows: List[Dict] = []
    for tag in tags:
        graph = load_dataset(tag)
        ops = delete_reinsert_workload(graph, min(k, graph.num_edges // 4), seed=seed)
        maintainer = DOIMISMaintainer(
            graph.copy(), num_workers=num_workers,
            strategy=ActivationStrategy.SAME_STATUS,
        )
        maintainer.apply_stream(ops, batch_size=batch_size)
        assert_valid_mis(maintainer.graph, maintainer.independent_set())
        doimis_size = len(maintainer)

        try:
            from repro.serial.memory_model import ARW_MODEL

            ARW_MODEL.check(graph, memory_budget_mb)
            arw_size = len(arw_mis(graph.copy()))
        except MemoryBudgetExceeded:
            arw_size = None
        dgtwo_size = _run_serial_dynamic(DGTwo, graph.copy(), ops, memory_budget_mb)
        dtswap_size = _run_serial_dynamic(DTSwap, graph.copy(), ops, memory_budget_mb)
        lazy_size = _run_serial_dynamic(LazyDTSwap, graph.copy(), ops, memory_budget_mb)

        row = {"dataset": tag, "DOIMIS": doimis_size}
        for name, size in (
            ("ARW", arw_size),
            ("DGTwo", dgtwo_size),
            ("DTSwap", dtswap_size),
            ("LazyDTSwap", lazy_size),
        ):
            row[name] = size if size is not None else "OOM"
            row[f"prec_{name}"] = (
                round(doimis_size / size, 4) if size else "-"
            )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 10 — efficiency: distributed algorithms over the update stream
# ---------------------------------------------------------------------------
def fig10_efficiency(
    tags: Sequence[str] = FIG10_TAGS,
    k: int = 150,
    num_workers: int = 10,
    seed: int = 0,
    include_recompute: bool = True,
) -> List[Dict]:
    """Response time and communication for the 2k-update stream.

    Single-update rows (``b=1``) cover SCALL / DOIMIS / DOIMIS+ / DOIMIS*;
    two-batch rows (``b=k``, the paper's deletion batch + insertion batch)
    additionally cover Naive and dDisMIS (which the paper omits at ``b=1``
    because they cannot finish).
    """
    rows: List[Dict] = []
    single_algos = ("SCALL", "DOIMIS", "DOIMIS+", "DOIMIS*")
    batch_algos = single_algos + (("Naive", "dDisMIS") if include_recompute else ())
    for tag in tags:
        base = load_dataset(tag)
        ops = delete_reinsert_workload(base, min(k, base.num_edges // 4), seed=seed)
        deletions, insertions = deletion_insertion_halves(ops)
        reference = None
        for name in single_algos:
            algorithm = make_algorithm(name, base.copy(), num_workers=num_workers)
            algorithm.apply_stream(ops, batch_size=1)
            result = algorithm.independent_set()
            if reference is None:
                reference = result
            elif result != reference:
                raise AssertionError(f"{name} diverged on {tag} (b=1)")
            rows.append(
                {
                    "dataset": tag,
                    "algorithm": name,
                    "mode": "single",
                    "response_time_s": algorithm.update_metrics.wall_time_s,
                    "communication_mb": algorithm.update_metrics.communication_mb,
                    "supersteps": algorithm.update_metrics.supersteps,
                    "compute_work": algorithm.update_metrics.compute_work,
                    "set_size": len(result),
                }
            )
        for name in batch_algos:
            algorithm = make_algorithm(name, base.copy(), num_workers=num_workers)
            algorithm.apply_batch(deletions)
            algorithm.apply_batch(insertions)
            result = algorithm.independent_set()
            if result != reference:
                raise AssertionError(f"{name} diverged on {tag} (b=k)")
            rows.append(
                {
                    "dataset": tag,
                    "algorithm": name,
                    "mode": "batch",
                    "response_time_s": algorithm.update_metrics.wall_time_s,
                    "communication_mb": algorithm.update_metrics.communication_mb,
                    "supersteps": algorithm.update_metrics.supersteps,
                    "compute_work": algorithm.update_metrics.compute_work,
                    "set_size": len(result),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 11 — batch size sweep (DOIMIS*)
# ---------------------------------------------------------------------------
def fig11_batch_size(
    tag: str = "TW",
    k: int = 500,
    batch_sizes: Sequence[int] = (1, 10, 100, 1000),
    num_workers: int = 10,
    seed: int = 0,
) -> List[Dict]:
    """DOIMIS* response time / communication as the batch size ``b`` grows.

    The maintained set after the full stream must be identical for every
    ``b`` (order independence, Theorem 6.1) — asserted here.
    """
    base = load_dataset(tag)
    ops = delete_reinsert_workload(base, min(k, base.num_edges // 4), seed=seed)
    rows: List[Dict] = []
    reference = None
    for b in batch_sizes:
        maintainer = DOIMISMaintainer(
            base.copy(), num_workers=num_workers,
            strategy=ActivationStrategy.SAME_STATUS,
        )
        maintainer.apply_stream(ops, batch_size=b)
        result = maintainer.independent_set()
        if reference is None:
            reference = result
        elif result != reference:
            raise AssertionError(f"batch size {b} changed the result on {tag}")
        rows.append(
            {
                "dataset": tag,
                "batch_size": b,
                "response_time_s": maintainer.update_metrics.wall_time_s,
                "communication_mb": maintainer.update_metrics.communication_mb,
                "supersteps": maintainer.update_metrics.supersteps,
                "active_vertices": maintainer.update_metrics.active_vertices,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 12 — scalability: varying the number of machines (DOIMIS*)
# ---------------------------------------------------------------------------
def fig12_machines(
    tags: Sequence[str] = ("TW", "UK07"),
    k: int = 500,
    worker_counts: Sequence[int] = (2, 4, 6, 8, 10),
    batch_size: int = 100,
    seed: int = 0,
    work_per_second: float = 1e6,
    bandwidth_bytes_per_second: float = 1.25e8,
    superstep_latency_s: float = 1e-3,
) -> List[Dict]:
    """DOIMIS* as the cluster grows.

    Wall clock in a one-process simulation cannot speed up with more
    *simulated* workers, so the response time reported here is the BSP
    makespan model (:meth:`RunMetrics.simulated_time`): slowest-worker
    compute + wire time + barrier latency per superstep.  Communication is
    measured directly and grows with |W| as in Fig. 12(b).

    The default machine model uses a slower modelled core (1M neighbour
    comparisons/s) than the static experiments: the stand-in affected sets
    are ~30000x smaller than the paper's, and keeping the per-superstep
    compute:barrier balance inside the regime the paper's cluster operates
    in is what makes the |W| trade-off (compute shrinks, traffic grows)
    visible rather than drowned in barrier latency.
    """
    rows: List[Dict] = []
    for tag in tags:
        base = load_dataset(tag)
        ops = delete_reinsert_workload(base, min(k, base.num_edges // 4), seed=seed)
        for w in worker_counts:
            maintainer = DOIMISMaintainer(
                base.copy(), num_workers=w,
                strategy=ActivationStrategy.SAME_STATUS, keep_records=True,
            )
            maintainer.apply_stream(ops, batch_size=batch_size)
            metrics = maintainer.update_metrics
            rows.append(
                {
                    "dataset": tag,
                    "workers": w,
                    "response_time_s": metrics.simulated_time(
                        work_per_second=work_per_second,
                        bandwidth_bytes_per_second=bandwidth_bytes_per_second,
                        superstep_latency_s=superstep_latency_s,
                    ),
                    "wall_time_s": metrics.wall_time_s,
                    "communication_mb": metrics.communication_mb,
                    "compute_work": metrics.compute_work,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 13 — scalability: varying the number of updates (DOIMIS*)
# ---------------------------------------------------------------------------
def fig13_updates(
    tags: Sequence[str] = ("TW", "UK07"),
    update_counts: Sequence[int] = (400, 800, 1200, 1600, 2000),
    batch_size: int = 100,
    num_workers: int = 10,
    seed: int = 0,
) -> List[Dict]:
    """DOIMIS* cost growth with the update-stream length |U| (mixed
    insert/delete stream, processed in batches of ``batch_size``)."""
    rows: List[Dict] = []
    for tag in tags:
        base = load_dataset(tag)
        full = mixed_workload(base, max(update_counts), seed=seed)
        for count in update_counts:
            maintainer = DOIMISMaintainer(
                base.copy(), num_workers=num_workers,
                strategy=ActivationStrategy.SAME_STATUS,
            )
            maintainer.apply_stream(full[:count], batch_size=batch_size)
            metrics = maintainer.update_metrics
            rows.append(
                {
                    "dataset": tag,
                    "updates": count,
                    "response_time_s": metrics.wall_time_s,
                    "communication_mb": metrics.communication_mb,
                    "supersteps": metrics.supersteps,
                    "active_vertices": metrics.active_vertices,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Chaos — fault-injection sweep with the Theorem 4.2/6.1 convergence oracle
# ---------------------------------------------------------------------------
def chaos_oracle(seeds: Sequence[int] = (0,)) -> List[Dict]:
    """One row per (workload, preset, seed) chaos case.

    DOIMIS under seeded faults (crashes, drops, duplicates, stragglers,
    reorders, permanent worker losses, silent guest-copy corruption) must
    converge to the *same* set with the *same* logical meters as the
    fault-free run — ``verdict`` is "ok" exactly when it did.
    """
    from repro.faults.chaos import chaos_suite

    rows: List[Dict] = []
    for result in chaos_suite(seeds=seeds):
        rows.append(
            {
                "workload": result.workload,
                "preset": result.preset,
                "seed": result.seed,
                "injected": result.injected_total,
                "recovery_crashes": int(
                    result.recovery.get("recovery_crashes", 0)
                ),
                "recovery_failovers": int(
                    result.recovery.get("recovery_failovers", 0)
                ),
                "recovery_resync_bytes": int(
                    result.recovery.get("recovery_resync_bytes", 0)
                ),
                "divergence_detected": int(
                    result.divergence.get("divergence_detected", 0)
                ),
                "verdict": "ok" if result.ok else "FAIL",
            }
        )
    return rows
