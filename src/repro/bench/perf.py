"""Seeded perf-regression microbenchmarks (``repro-mis bench-perf``).

The tension this suite guards: the rank-ordered adjacency cache and the
engine hot-loop work are *pure* optimizations — every logical meter
(members, supersteps, activations, state changes, messages, bytes) must be
bit-identical to the unoptimized code, while ``compute_work`` (neighbour
scans) is expected to shrink.  Each scenario is fully seeded, so the
logical section of the emitted JSON is deterministic down to the byte and
``compute_work`` is deterministic too; wall time and memory are recorded
for trend-watching but never compared.

``run_suite`` executes the scenarios, ``write_baseline`` commits the result
as ``BENCH_core.json`` at the repo root, and ``check_against`` diffs a fresh
run against the committed baseline — the CI smoke job fails on any drift in
a logical field or in ``compute_work``.

Scenario naming follows the paper's experiments: ``static_oimis_*`` are
full static computations (Table II conditions), ``fig10_single_*`` replay a
delete-reinsert stream one update at a time (Fig. 10), ``fig11_batch_*``
replay it in batches (Fig. 11).  ``runtime_static_oimis_*`` compare the
inline executor against the multi-process :mod:`repro.runtime` backend
across ``procs`` ∈ {1, 2, 4, 8}, asserting bit-identical logical meters and
recording the measured speedup curve (trend data, machine-dependent — the
entry carries ``cpu_count`` so a 1-core runner's flat curve reads as what
it is).  ``csr_*`` scenarios run the same workloads on the flat-array CSR
layout (:mod:`repro.graph.csr`), assert bit-identity against an in-scenario
dict run, and record the speedup; ``csr_frames_*`` additionally compare the
process runtime's barrier-frame byte traffic between pickled dict frames
and shared-memory CSR deltas.  ``serve_*`` scenarios push a seeded bursty
trace through the durable ingestion service (:mod:`repro.serve`) and record
sustained updates/s and per-window latency percentiles; their logical
sections are pinned too, because every serve control decision is a function
of logical meters and event time only.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Tuple

from repro.core.activation import ActivationStrategy
from repro.core.baselines import make_algorithm
from repro.core.doimis import DOIMISMaintainer
from repro.core.oimis import run_oimis
from repro.bench.workloads import delete_reinsert_workload
from repro.graph.datasets import load_dataset
from repro.pregel.metrics import RunMetrics

FORMAT = "repro-mis-bench-perf"
VERSION = 1

#: logical fields that must match the baseline bit-for-bit
LOGICAL_FIELDS = (
    "members_size", "members_checksum", "supersteps", "active_vertices",
    "state_changes", "messages", "remote_messages", "bytes_sent",
)


def members_checksum(members) -> str:
    """First 16 hex chars of sha256 over the sorted, comma-joined ids."""
    blob = ",".join(str(u) for u in sorted(members)).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _sections(members, metrics: RunMetrics, graph) -> Dict[str, Any]:
    cache = graph.rank_cache()
    active = metrics.active_vertices
    return {
        "logical": {
            "members_size": len(members),
            "members_checksum": members_checksum(members),
            "supersteps": metrics.supersteps,
            "active_vertices": active,
            "state_changes": metrics.state_changes,
            "messages": metrics.messages,
            "remote_messages": metrics.remote_messages,
            "bytes_sent": metrics.bytes_sent,
        },
        "perf": {
            "compute_work": metrics.compute_work,
            "scans_per_active_vertex": round(
                metrics.compute_work / active, 3
            ) if active else 0.0,
            "wall_time_s": round(metrics.wall_time_s, 3),
            "peak_worker_memory_bytes": metrics.peak_worker_memory_bytes,
            "rank_cache": {"rebuilds": cache.rebuilds, "repairs": cache.repairs},
        },
    }


# ---------------------------------------------------------------------------
# scenarios (each returns the params echo plus logical/perf sections)
# ---------------------------------------------------------------------------
def _static_oimis(tag: str, runtime=None, representation=None) -> Dict[str, Any]:
    graph = load_dataset(tag)
    run = run_oimis(graph, num_workers=10, strategy=ActivationStrategy.ALL,
                    runtime=runtime, representation=representation)
    result = _sections(run.independent_set, run.metrics, graph)
    result["params"] = {"kind": "static_oimis", "dataset": tag,
                        "workers": 10, "strategy": "all"}
    return result


def _fig10_single(tag: str, k: int, seed: int, runtime=None,
                  representation=None) -> Dict[str, Any]:
    base = load_dataset(tag)
    ops = delete_reinsert_workload(base, k, seed=seed)
    maintainer = DOIMISMaintainer(
        base.copy(), num_workers=10, strategy=ActivationStrategy.SAME_STATUS,
        runtime=runtime, representation=representation,
    )
    maintainer.apply_stream(ops, batch_size=1)
    result = _sections(
        maintainer.independent_set(), maintainer.update_metrics,
        maintainer.graph,
    )
    result["params"] = {"kind": "fig10_single", "dataset": tag, "k": k,
                        "seed": seed, "batch_size": 1, "workers": 10,
                        "algorithm": "DOIMIS*"}
    return result


def _fig10_single_scall(tag: str, k: int, seed: int, runtime=None,
                        representation=None) -> Dict[str, Any]:
    base = load_dataset(tag)
    ops = delete_reinsert_workload(base, k, seed=seed)
    maintainer = make_algorithm(
        "SCALL", load_dataset(tag), num_workers=10, runtime=runtime,
        representation=representation,
    )
    maintainer.apply_stream(ops, batch_size=1)
    result = _sections(
        maintainer.independent_set(), maintainer.update_metrics,
        maintainer.graph,
    )
    result["params"] = {"kind": "fig10_single", "dataset": tag, "k": k,
                        "seed": seed, "batch_size": 1, "workers": 10,
                        "algorithm": "SCALL"}
    return result


def _fig11_batch(tag: str, k: int, seed: int, batch_size: int,
                 runtime=None, representation=None) -> Dict[str, Any]:
    base = load_dataset(tag)
    ops = delete_reinsert_workload(base, k, seed=seed)
    maintainer = DOIMISMaintainer(
        base.copy(), num_workers=10, strategy=ActivationStrategy.SAME_STATUS,
        runtime=runtime, representation=representation,
    )
    maintainer.apply_stream(ops, batch_size=batch_size)
    result = _sections(
        maintainer.independent_set(), maintainer.update_metrics,
        maintainer.graph,
    )
    result["params"] = {"kind": "fig11_batch", "dataset": tag, "k": k,
                        "seed": seed, "batch_size": batch_size, "workers": 10,
                        "algorithm": "DOIMIS*"}
    return result


#: worker-process counts swept by the runtime-comparison scenarios
RUNTIME_PROC_COUNTS = (1, 2, 4, 8)


def _runtime_static_oimis(tag: str) -> Dict[str, Any]:
    """Inline-vs-process runtime comparison on one static computation.

    The inline run provides the logical section (pinned by ``--check`` like
    every other scenario); each process-runtime run must reproduce it
    bit-for-bit — any divergence raises instead of being recorded.  Wall
    times and the derived speedups are trend data only (never compared):
    they are honest measurements of *this* machine, so the recorded
    ``cpu_count`` is part of the entry — speedup curves flatten at the
    physical core count, and a 1-CPU container cannot show any.
    """
    import os

    from repro.runtime import ParallelRuntime

    graph = load_dataset(tag)
    inline = run_oimis(
        graph, num_workers=10, strategy=ActivationStrategy.ALL
    )
    result = _sections(inline.independent_set, inline.metrics, graph)
    inline_wall = inline.metrics.wall_time_s
    curve: Dict[str, Any] = {}
    for procs in RUNTIME_PROC_COUNTS:
        runtime = ParallelRuntime(procs=procs)
        try:
            runtime.prestart(num_partitions=10)  # spawn outside the timing
            run = run_oimis(
                load_dataset(tag), num_workers=10,
                strategy=ActivationStrategy.ALL, runtime=runtime,
            )
        finally:
            runtime.close()
        if run.independent_set != inline.independent_set:
            raise RuntimeError(
                f"runtime_static_oimis_{tag}: process runtime (procs="
                f"{procs}) diverged from inline members"
            )
        for field in ("supersteps", "active_vertices", "state_changes",
                      "messages", "remote_messages", "bytes_sent",
                      "compute_work"):
            if getattr(run.metrics, field) != getattr(inline.metrics, field):
                raise RuntimeError(
                    f"runtime_static_oimis_{tag}: meter {field} diverged "
                    f"under procs={procs}"
                )
        wall = run.metrics.wall_time_s
        curve[str(procs)] = {
            "wall_time_s": round(wall, 3),
            "speedup_vs_inline": round(inline_wall / wall, 3) if wall else 0.0,
        }
    result["params"] = {"kind": "runtime_static_oimis", "dataset": tag,
                        "workers": 10, "strategy": "all"}
    result["perf"]["runtime"] = {
        "backend": "process",
        "cpu_count": os.cpu_count(),
        "inline_wall_time_s": round(inline_wall, 3),
        "procs": curve,
    }
    return result


def _csr_vs_dict(build: Callable[[Any], Dict[str, Any]]) -> Dict[str, Any]:
    """Run the same workload on the dict and csr layouts.

    The csr run's sections become the scenario entry (its logical section is
    pinned by ``--check`` like any other scenario); the dict run is the
    bit-identity oracle — any divergence in a logical field or in
    ``compute_work`` raises instead of being recorded.  The dict wall time
    and the derived speedup ride along as trend data.
    """
    dict_entry = build("dict")
    entry = build("csr")
    if _stable_sections(dict_entry) != _stable_sections(entry):
        raise RuntimeError(
            "csr layout diverged from the dict reference: "
            f"dict={_stable_sections(dict_entry)!r} "
            f"csr={_stable_sections(entry)!r}"
        )
    dict_wall = dict_entry["perf"]["wall_time_s"]
    csr_wall = entry["perf"]["wall_time_s"]
    entry["params"]["representation"] = "csr"
    entry["perf"]["representation"] = {
        "dict_wall_time_s": dict_wall,
        "speedup_vs_dict": round(dict_wall / csr_wall, 3) if csr_wall else 0.0,
    }
    return entry


def _csr_frames_static_oimis(tag: str, procs: int = 2) -> Dict[str, Any]:
    """Barrier-frame traffic: pickled snapshots vs shared-memory CSR.

    Runs the same static computation over the process runtime twice — dict
    layout (graph snapshot + per-sweep pickle frames) and csr layout
    (shared-memory block + typed delta arrays) — and records each run's
    frame byte counters with the reduction factor.  The csr run's logical
    section is the pinned entry; the dict run is the bit-identity oracle.
    Byte counters are trend data (wire framing may evolve), but the
    *reduction* is the point of the scenario, so it is surfaced explicitly.
    """
    from repro.runtime import ParallelRuntime

    entries: Dict[str, Dict[str, Any]] = {}
    frames: Dict[str, Dict[str, int]] = {}
    for rep in ("dict", "csr"):
        graph = load_dataset(tag)
        runtime = ParallelRuntime(procs=procs)
        try:
            runtime.prestart(num_partitions=10)
            run = run_oimis(
                graph, num_workers=10, strategy=ActivationStrategy.ALL,
                runtime=runtime, representation=rep,
            )
            frames[rep] = runtime.frame_stats()
        finally:
            runtime.close()
        entries[rep] = _sections(run.independent_set, run.metrics, graph)
    if _stable_sections(entries["dict"]) != _stable_sections(entries["csr"]):
        raise RuntimeError(
            f"csr_frames_static_oimis_{tag}: csr layout diverged from the "
            "dict reference over the process runtime"
        )
    entry = entries["csr"]
    dict_total = (frames["dict"]["frame_bytes_sent"]
                  + frames["dict"]["frame_bytes_received"])
    csr_total = (frames["csr"]["frame_bytes_sent"]
                 + frames["csr"]["frame_bytes_received"])
    entry["params"] = {"kind": "csr_frames_static_oimis", "dataset": tag,
                       "workers": 10, "strategy": "all", "procs": procs,
                       "representation": "csr"}
    entry["perf"]["frames"] = {
        "procs": procs,
        "dict": frames["dict"],
        "csr": frames["csr"],
        "bytes_reduction_factor": round(dict_total / csr_total, 3)
        if csr_total else 0.0,
    }
    return entry


def _serve_bursty(
    tag: str,
    num_ops: int,
    seed: int,
    poison_prob: float = 0.0,
    admission_policy: str = "block",
    high_watermark: int = 512,
    low_watermark: int = 128,
    max_window: int = 64,
    backoff_s: float = 0.2,
) -> Dict[str, Any]:
    """Sustained ingestion through the durable service (ROADMAP item 2).

    Replays a seeded bursty trace through a full
    :class:`~repro.serve.service.IngestionService` — WAL, admission
    control, adaptive windowing, retry/quarantine — and records sustained
    updates/s plus per-window latency percentiles.  The logical section is
    pinned like any other scenario: every control decision (window
    boundaries, sheds, retries, quarantines) reads logical meters and
    event time only, so the applied stream is deterministic per seed even
    with poison operations in the trace.  Exactly-once accounting is
    asserted in-scenario via the WAL audit.
    """
    import shutil
    import tempfile
    from time import perf_counter

    from repro.core.maintainer import MISMaintainer
    from repro.serve import (
        AdaptiveWindowController,
        AdmissionConfig,
        IngestionService,
        RetryPolicy,
        TraceConfig,
        WindowConfig,
        audit_log,
        bursty_trace,
    )

    ops, timestamps = bursty_trace(
        load_dataset(tag),
        TraceConfig(num_ops=num_ops, seed=seed, poison_prob=poison_prob),
    )
    maintainer = MISMaintainer(
        load_dataset(tag), num_workers=10,
        strategy=ActivationStrategy.SAME_STATUS,
    )
    wal_dir = tempfile.mkdtemp(prefix="serve-bench-")
    try:
        service = IngestionService(
            maintainer, wal_dir,
            controller=AdaptiveWindowController(WindowConfig(
                min_window=4, max_window=max_window, initial_window=8,
            )),
            admission=AdmissionConfig(
                policy=admission_policy, high_watermark=high_watermark,
                low_watermark=low_watermark,
            ),
            retry=RetryPolicy(max_retries=1, backoff_base_s=backoff_s),
            checkpoint_every=0,  # checkpoint cost stays out of the timing
        )
        start = perf_counter()
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
        service.drain()
        ingest_wall = perf_counter() - start
        service.close()
        problems, audit = audit_log(wal_dir)
        if problems:
            raise RuntimeError(
                f"serve_bursty_{tag}: WAL audit failed: {problems[:3]}"
            )
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)
    entry = _sections(
        maintainer.independent_set(), maintainer.update_metrics,
        maintainer.graph,
    )
    session = service.session.totals()
    entry["params"] = {"kind": "serve_bursty", "dataset": tag,
                       "num_ops": num_ops, "seed": seed,
                       "poison_prob": poison_prob,
                       "admission": admission_policy, "workers": 10}
    entry["perf"]["serve"] = {
        # throughput/latency are trend data; the counters are deterministic
        "updates_per_s": round(audit["applied"] / ingest_wall, 1)
        if ingest_wall else 0.0,
        "ingest_wall_s": round(ingest_wall, 3),
        "window_wall_p50_s": round(session["wall_time_p50_s"], 5),
        "window_wall_p95_s": round(session["wall_time_p95_s"], 5),
        "window_wall_p99_s": round(session["wall_time_p99_s"], 5),
        "applied": audit["applied"],
        "accepted": service.admission.stats.accepted,
        "shed": service.admission.stats.shed,
        "blocked": service.admission.stats.blocked,
        "quarantined": audit["quarantined"],
        "windows": audit["commits"],
        "window_failures": service.stats.window_failures,
        "bisections": service.stats.bisections,
        "max_pending": session["max_pending"],
        "controller": service.controller.as_dict(),
    }
    return entry


def _serve_read_mix(
    tag: str,
    num_ops: int,
    seed: int,
    read_mix: float = 0.99,
    read_batch: int = 32,
    max_window: int = 64,
) -> Dict[str, Any]:
    """Mixed read/write serving through the epoch snapshot read path.

    Replays a seeded bursty trace through the ingestion service with
    ``serve_reads=True`` and interleaves a seeded query stream at
    ``read_mix`` (0.99 → 99 reads per accepted write: a read-heavy serving
    tier over a trickle of updates).  Reads are answered against the last
    committed epoch, never blocking ingestion.  The read *counters* —
    queries by kind, vertices answered, epochs published, the
    epoch-staleness distribution (admitted-but-invisible events per read)
    — are pure functions of the seed and land in the pinned logical
    section; read latency percentiles and reads/s are wall-clock trend
    data under ``perf.reads``.
    """
    import random
    import shutil
    import tempfile
    from time import perf_counter

    from repro.core.maintainer import MISMaintainer
    from repro.serve import (
        AdaptiveWindowController,
        AdmissionConfig,
        IngestionService,
        RetryPolicy,
        TraceConfig,
        WindowConfig,
        audit_log,
        bursty_trace,
    )
    from repro.util import percentile

    ops, timestamps = bursty_trace(
        load_dataset(tag), TraceConfig(num_ops=num_ops, seed=seed)
    )
    maintainer = MISMaintainer(
        load_dataset(tag), num_workers=10,
        strategy=ActivationStrategy.SAME_STATUS,
    )
    wal_dir = tempfile.mkdtemp(prefix="serve-bench-")
    rng = random.Random(seed + 0x5EED)
    ratio = read_mix / (1.0 - read_mix)
    acc = 0.0
    stale_samples: List[int] = []
    try:
        service = IngestionService(
            maintainer, wal_dir,
            controller=AdaptiveWindowController(WindowConfig(
                min_window=4, max_window=max_window, initial_window=8,
            )),
            admission=AdmissionConfig(policy="block"),
            retry=RetryPolicy(max_retries=1, backoff_base_s=0.2),
            checkpoint_every=0,
            serve_reads=True,
        )
        start = perf_counter()
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
            acc += ratio
            while acc >= 1.0:
                acc -= 1.0
                ids = service.reads.latest().ids
                if not ids.size:
                    break
                stale_samples.append(service.reads.staleness())
                draw = rng.random()
                if draw < 0.10:
                    service.query_why_not(
                        int(ids[rng.randrange(ids.size)])
                    )
                elif draw < 0.20:
                    service.query_batch([
                        int(ids[rng.randrange(ids.size)])
                        for _ in range(read_batch)
                    ])
                else:
                    service.query_point(int(ids[rng.randrange(ids.size)]))
        service.drain()
        ingest_wall = perf_counter() - start
        service.close()
        problems, audit = audit_log(wal_dir)
        if problems:
            raise RuntimeError(
                f"serve_read_mix_{tag}: WAL audit failed: {problems[:3]}"
            )
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)
    entry = _sections(
        maintainer.independent_set(), maintainer.update_metrics,
        maintainer.graph,
    )
    engine = service.query_engine
    reads_logical = dict(engine.logical_stats())
    stale_sorted = sorted(stale_samples)
    for tag_q, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
        reads_logical[f"staleness_{tag_q}"] = int(
            percentile(stale_sorted, q)
        )
    read_stats = engine.read_stats()
    reads_logical["final_epoch"] = read_stats["epoch"]
    reads_logical["final_watermark"] = read_stats["watermark"]
    entry["params"] = {"kind": "serve_read_mix", "dataset": tag,
                       "num_ops": num_ops, "seed": seed,
                       "read_mix": read_mix, "read_batch": read_batch,
                       "workers": 10}
    entry["logical"]["reads"] = reads_logical
    entry["perf"]["reads"] = {
        # latency/throughput are trend data; the counters above are pinned
        "reads_per_s": read_stats["reads_per_s"],
        "latency_p50_ms": read_stats["latency_p50_ms"],
        "latency_p95_ms": read_stats["latency_p95_ms"],
        "latency_p99_ms": read_stats["latency_p99_ms"],
        "updates_per_s": round(audit["applied"] / ingest_wall, 1)
        if ingest_wall else 0.0,
        "ingest_wall_s": round(ingest_wall, 3),
    }
    return entry


def _elastic_transitions(
    tag: str, k: int, seed: int, batch_size: int,
    joins: Tuple[Tuple[int, int], ...] = (),
    drains: Tuple[Tuple[int, int], ...] = (),
) -> Dict[str, Any]:
    """Voluntary joins/drains mid-stream vs a static-membership reference.

    The static run is the bit-identity oracle (any drift in a logical
    field or ``compute_work`` raises); the elastic run's sections become
    the entry, with the deterministic ``rebalance_*`` meters pinned inside
    the logical section (movement cost is part of the contract) and the
    per-transition trace — moved counts, modelled barrier stall,
    post-transition residency skew — recorded under ``perf.elastic``.
    ``joins``/``drains`` are ``(worker, run)`` pairs.
    """
    from repro.faults import DrainSpec, FaultInjector, FaultPlan, JoinSpec

    def run(faults):
        base = load_dataset(tag)
        ops = delete_reinsert_workload(base, k, seed=seed)
        maintainer = DOIMISMaintainer(
            base.copy(), num_workers=10,
            strategy=ActivationStrategy.SAME_STATUS, faults=faults,
        )
        maintainer.apply_stream(ops, batch_size=batch_size)
        return maintainer

    static = run(None)
    plan = FaultPlan(
        seed=0,
        joins=tuple(JoinSpec(superstep=0, worker=w, run=r)
                    for w, r in joins),
        drains=tuple(DrainSpec(superstep=0, worker=w, run=r)
                     for w, r in drains),
    )
    elastic = run(FaultInjector(plan))
    static_entry = _sections(
        static.independent_set(), static.update_metrics, static.graph
    )
    entry = _sections(
        elastic.independent_set(), elastic.update_metrics, elastic.graph
    )
    if _stable_sections(static_entry) != _stable_sections(entry):
        raise RuntimeError(
            f"elastic_transitions_{tag}: elastic membership diverged from "
            "the static-membership reference"
        )
    failover = elastic.failover
    if failover is None or not failover.transitions:
        raise RuntimeError(
            f"elastic_transitions_{tag}: no membership transition applied"
        )
    rebalance = elastic.update_metrics.rebalance_summary()
    entry["logical"]["rebalance"] = dict(rebalance)
    num_vertices = elastic.graph.num_vertices
    members = failover.view.members()
    counts = {w: 0 for w in members}
    for u in sorted(elastic.graph.vertices()):
        w = failover.worker_of(u)
        counts[w] = counts.get(w, 0) + 1
    loads = list(counts.values())
    mean = sum(loads) / len(loads) if loads else 0.0
    entry["params"] = {"kind": "elastic_transitions", "dataset": tag,
                       "k": k, "seed": seed, "batch_size": batch_size,
                       "workers": 10, "joins": [list(j) for j in joins],
                       "drains": [list(d) for d in drains]}
    entry["perf"]["elastic"] = {
        "transitions": [
            {"superstep": e.superstep, "joined": list(e.joined),
             "drained": list(e.drained), "moved": e.moved,
             "epoch": e.epoch, "stall_s": e.stall_s}
            for e in failover.transitions
        ],
        "members_after": len(members),
        "moved_fraction": round(
            rebalance["rebalance_moved_vertices"] / num_vertices, 4
        ) if num_vertices else 0.0,
        "post_skew": round(max(loads) / mean, 4) if mean else 1.0,
    }
    return entry


def _autoscale_policy_chung_lu(
    n: int = 600, avg_degree: float = 8.0, exponent: float = 2.2,
    seed: int = 3, k: int = 60, batch_size: int = 5,
) -> Dict[str, Any]:
    """Autoscale policy sweep on a Chung–Lu power-law graph.

    Runs a delete-reinsert stream on a skewed synthetic graph with
    per-superstep records kept, then replays the observed per-worker work
    through :class:`~repro.runtime.elastic.LoadBalancer` +
    :class:`~repro.runtime.elastic.AutoscalePolicy`, simulating the pool
    the decisions would produce.  Both the run and every decision are pure
    functions of logical meters, so the full decision trace is pinned in
    the logical section.
    """
    from repro.graph.generators import chung_lu
    from repro.runtime.elastic import AutoscalePolicy, LoadBalancer

    base = chung_lu(n, avg_degree, exponent=exponent, seed=seed)
    ops = delete_reinsert_workload(base, k, seed=seed)
    maintainer = DOIMISMaintainer(
        base.copy(), num_workers=10,
        strategy=ActivationStrategy.SAME_STATUS, keep_records=True,
    )
    maintainer.apply_stream(ops, batch_size=batch_size)
    entry = _sections(
        maintainer.independent_set(), maintainer.update_metrics,
        maintainer.graph,
    )
    records = maintainer.update_metrics.records
    # calibrate capacity to the observed mean so the sweep crosses both
    # hysteresis edges as the barrier load swings
    mean_work = (sum(r.compute_work for r in records) / len(records)
                 if records else 0.0)
    policy = AutoscalePolicy(
        target_utilization=0.7, hysteresis=0.15,
        worker_capacity=max(mean_work / 4.0, 1.0),
        min_workers=2, max_workers=8, cooldown=1,
    )
    balancer = LoadBalancer(window=4, skew_threshold=1.5)
    pool = 4
    pool_trace: List[int] = []
    for record in records:
        if not record.worker_work:
            continue
        balancer.observe(record.worker_work, record.active_vertices)
        decision = policy.decide(balancer, pool)
        pool = max(policy.min_workers,
                   min(policy.max_workers, pool + decision.workers_delta))
        pool_trace.append(pool)
    actions = [d.action for d in policy.decisions]
    entry["params"] = {"kind": "autoscale_policy", "model": "chung_lu",
                       "n": n, "avg_degree": avg_degree,
                       "exponent": exponent, "seed": seed, "k": k,
                       "batch_size": batch_size, "workers": 10}
    entry["logical"]["autoscale"] = {
        "decisions": len(actions),
        "scale_ups": actions.count("scale_up"),
        "scale_downs": actions.count("scale_down"),
        "rebalances": actions.count("rebalance"),
        "holds": actions.count("hold"),
        "final_pool": pool_trace[-1] if pool_trace else 4,
        "trace_checksum": hashlib.sha256(
            ",".join(actions).encode()
        ).hexdigest()[:16],
    }
    entry["perf"]["autoscale"] = {
        "pool_min": min(pool_trace) if pool_trace else 4,
        "pool_max": max(pool_trace) if pool_trace else 4,
        "final_skew": round(balancer.skew(), 4),
    }
    return entry


SCENARIOS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "static_oimis_SKI": lambda: _static_oimis("SKI"),
    "static_oimis_TW": lambda: _static_oimis("TW"),
    "fig10_single_SKI": lambda: _fig10_single("SKI", 60, 7),
    "fig10_single_scall_SKI": lambda: _fig10_single_scall("SKI", 60, 7),
    "fig11_batch_TW": lambda: _fig11_batch("TW", 150, 11, 25),
    "fig11_batch_AM": lambda: _fig11_batch("AM", 100, 13, 20),
    "runtime_static_oimis_SKI": lambda: _runtime_static_oimis("SKI"),
    "runtime_static_oimis_TW": lambda: _runtime_static_oimis("TW"),
    "csr_static_oimis_SKI": lambda: _csr_vs_dict(
        lambda rep: _static_oimis("SKI", representation=rep)),
    "csr_fig10_single_SKI": lambda: _csr_vs_dict(
        lambda rep: _fig10_single("SKI", 60, 7, representation=rep)),
    "csr_fig11_batch_TW": lambda: _csr_vs_dict(
        lambda rep: _fig11_batch("TW", 150, 11, 25, representation=rep)),
    "csr_frames_static_oimis_SKI": lambda: _csr_frames_static_oimis("SKI"),
    "serve_bursty_AM": lambda: _serve_bursty("AM", 400, 7),
    "serve_poison_SL": lambda: _serve_bursty(
        "SL", 300, 11, poison_prob=0.05, admission_policy="shed",
        high_watermark=24, low_watermark=8, max_window=16, backoff_s=0.5),
    "serve_read_mix_AM": lambda: _serve_read_mix("AM", 300, 7),
    "elastic_scale_up_TW": lambda: _elastic_transitions(
        "TW", 100, 11, 25, joins=((10, 2), (11, 3))),
    "elastic_drain_SKI": lambda: _elastic_transitions(
        "SKI", 60, 7, 10, drains=((5, 3),)),
    "autoscale_policy_chung_lu": lambda: _autoscale_policy_chung_lu(),
}


# ---------------------------------------------------------------------------
# suite driver / baseline IO / drift check
# ---------------------------------------------------------------------------
def _stable_sections(entry: Dict[str, Any]) -> Tuple[Any, Any]:
    """The deterministic parts of a scenario result (everything ``--check``
    pins): the logical section plus ``compute_work``."""
    return (entry["logical"], entry["perf"].get("compute_work"))


def _run_scenario(
    name: str, repeat: int, profile_dir: Any = None
) -> Dict[str, Any]:
    """Run one scenario ``repeat`` times (median/min wall time), optionally
    dumping a cProfile ``.pstats`` file from one extra profiled run."""
    import statistics

    fn = SCENARIOS[name]
    entry = fn()
    walls = [entry["perf"]["wall_time_s"]]
    for _ in range(repeat - 1):
        again = fn()
        if _stable_sections(again) != _stable_sections(entry):
            raise RuntimeError(
                f"{name}: logical section or compute_work changed between "
                "repeats — the scenario is not deterministic"
            )
        walls.append(again["perf"]["wall_time_s"])
    if repeat > 1:
        entry["perf"]["wall_time_s"] = round(statistics.median(walls), 3)
        entry["perf"]["wall_time_min_s"] = round(min(walls), 3)
        entry["perf"]["repeats"] = repeat
    if profile_dir is not None:
        import cProfile
        import os

        os.makedirs(profile_dir, exist_ok=True)
        profiler = cProfile.Profile()
        profiler.enable()
        profiled = fn()
        profiler.disable()
        if _stable_sections(profiled) != _stable_sections(entry):
            raise RuntimeError(
                f"{name}: logical section or compute_work changed under "
                "profiling — the scenario is not deterministic"
            )
        profiler.dump_stats(os.path.join(profile_dir, f"{name}.pstats"))
    return entry


def run_suite(
    names: Tuple[str, ...] = (),
    repeat: int = 1,
    profile_dir: Any = None,
) -> Dict[str, Any]:
    """Run the selected scenarios (default: all) and return the document.

    ``repeat`` runs each scenario that many times: the recorded
    ``wall_time_s`` becomes the median, ``wall_time_min_s`` the minimum,
    and the logical sections must be bit-identical across repeats (a
    mismatch raises — the suite's whole premise is determinism).
    ``profile_dir`` additionally profiles one extra run of each scenario
    with :mod:`cProfile` and dumps ``<scenario>.pstats`` files there; the
    profiled run is never the timed one.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    selected = names or tuple(SCENARIOS)
    unknown = [name for name in selected if name not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s): {', '.join(sorted(unknown))}")
    return {
        "format": FORMAT,
        "version": VERSION,
        "scenarios": {
            name: _run_scenario(name, repeat, profile_dir)
            for name in selected
        },
    }


def write_baseline(path: str, document: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != FORMAT:
        raise ValueError(f"{path}: not a {FORMAT} document")
    if document.get("version") != VERSION:
        raise ValueError(
            f"{path}: version {document.get('version')!r}, expected {VERSION}"
        )
    return document


def check_against(
    baseline: Dict[str, Any], fresh: Dict[str, Any]
) -> List[str]:
    """Diff a fresh run against the committed baseline.

    Logical fields and ``compute_work`` are compared exactly (both are
    deterministic); wall time and memory are never compared.  Returns a list
    of human-readable drift descriptions — empty means the check passed.
    """
    problems: List[str] = []
    base_scenarios = baseline.get("scenarios", {})
    for name, fresh_entry in fresh.get("scenarios", {}).items():
        base_entry = base_scenarios.get(name)
        if base_entry is None:
            problems.append(f"{name}: missing from baseline (re-generate it)")
            continue
        for field in LOGICAL_FIELDS:
            expected = base_entry["logical"].get(field)
            got = fresh_entry["logical"].get(field)
            if got != expected:
                problems.append(
                    f"{name}: logical field {field} drifted: "
                    f"expected {expected!r}, got {got!r}"
                )
        # scenario-specific logical sub-sections (reads, rebalance,
        # autoscale, ...) are deterministic too — pin them whole
        extras = set(base_entry["logical"]) | set(fresh_entry["logical"])
        for field in sorted(extras - set(LOGICAL_FIELDS)):
            expected = base_entry["logical"].get(field)
            got = fresh_entry["logical"].get(field)
            if got != expected:
                problems.append(
                    f"{name}: logical section {field} drifted: "
                    f"expected {expected!r}, got {got!r}"
                )
        expected_work = base_entry["perf"].get("compute_work")
        got_work = fresh_entry["perf"].get("compute_work")
        if got_work != expected_work:
            problems.append(
                f"{name}: compute_work drifted: "
                f"expected {expected_work!r}, got {got_work!r}"
            )
    return problems
