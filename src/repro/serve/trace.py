"""Seeded bursty traffic traces for the ingestion service.

Real ingestion traffic is not the paper's tidy delete-reinsert protocol:
it alternates calm stretches with bursts (an order of magnitude higher
arrival rate, heavier churn), and it occasionally carries garbage — an
operation that can never apply.  This module generates such a trace
deterministically from a seed so every serve benchmark, soak and chaos
case is bit-reproducible.

Validity bookkeeping mirrors :func:`repro.bench.workloads.mixed_workload`:
the generator tracks the edge set the stream implies, so every non-poison
operation is valid *at the moment it is applied* (in order, with earlier
poison operations quarantined — poison ops never change the tracked
state, so quarantining them keeps the rest of the stream valid).

Poison operations are deletions of edges between *reserved* vertex ids
that no insertion ever touches — invalid on arrival, invalid forever, and
recognizably so in a dead-letter log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import WorkloadError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import EdgeDeletion, EdgeInsertion, EdgeUpdate

#: poison endpoints start this far above the largest real vertex id, so no
#: generated insertion can ever legitimize them
POISON_ID_GAP = 1_000_000


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a bursty trace."""

    num_ops: int = 500
    seed: int = 0
    #: mean inter-arrival gap (event-time seconds) outside bursts
    calm_gap_s: float = 1.0
    #: mean inter-arrival gap inside bursts (an order of magnitude hotter)
    burst_gap_s: float = 0.05
    #: a calm phase lasts this many events before a burst may start
    calm_len: int = 40
    burst_len: int = 60
    insert_ratio: float = 0.5
    #: probability an event is a poison operation (0 = clean trace)
    poison_prob: float = 0.0

    def __post_init__(self):
        if self.num_ops < 1:
            raise WorkloadError(f"num_ops must be >= 1, got {self.num_ops}")
        if self.calm_gap_s <= 0 or self.burst_gap_s <= 0:
            raise WorkloadError("arrival gaps must be positive")
        if self.calm_len < 1 or self.burst_len < 1:
            raise WorkloadError("phase lengths must be >= 1")
        if not 0.0 <= self.insert_ratio <= 1.0:
            raise WorkloadError(
                f"insert_ratio must be in [0, 1], got {self.insert_ratio}"
            )
        if not 0.0 <= self.poison_prob < 1.0:
            raise WorkloadError(
                f"poison_prob must be in [0, 1), got {self.poison_prob}"
            )


def bursty_trace(
    graph: DynamicGraph, config: Optional[TraceConfig] = None, **overrides
) -> Tuple[List[EdgeUpdate], List[float]]:
    """A seeded (operations, timestamps) pair over ``graph``'s vertices.

    Timestamps are non-decreasing event-time seconds starting at 0.0;
    bursts alternate with calm phases per ``config``.  Keyword overrides
    build a :class:`TraceConfig` when none is given.
    """
    cfg = config if config is not None else TraceConfig(**overrides)
    rng = random.Random(cfg.seed)
    vertices = graph.sorted_vertices()
    if len(vertices) < 2:
        raise WorkloadError("bursty_trace needs a graph with >= 2 vertices")
    poison_base = (max(vertices) if vertices else 0) + POISON_ID_GAP
    # the edge state the stream implies, mutated only by valid operations
    present = set(graph.sorted_edges())
    ops: List[EdgeUpdate] = []
    timestamps: List[float] = []
    now = 0.0
    in_burst = False
    phase_left = cfg.calm_len
    poison_emitted = 0
    while len(ops) < cfg.num_ops:
        if phase_left <= 0:
            in_burst = not in_burst
            phase_left = cfg.burst_len if in_burst else cfg.calm_len
        phase_left -= 1
        gap = cfg.burst_gap_s if in_burst else cfg.calm_gap_s
        now += rng.expovariate(1.0 / gap)
        if cfg.poison_prob and rng.random() < cfg.poison_prob:
            # a deletion between reserved ids: invalid now, invalid forever
            u = poison_base + 2 * poison_emitted
            ops.append(EdgeDeletion(u, u + 1))
            timestamps.append(now)
            poison_emitted += 1
            continue
        op = _valid_op(rng, vertices, present, cfg.insert_ratio)
        if op is None:
            # degenerate state (complete or empty graph): skip this slot
            continue
        ops.append(op)
        timestamps.append(now)
    return ops, timestamps


def _valid_op(rng, vertices, present, insert_ratio) -> Optional[EdgeUpdate]:
    from repro.graph.dynamic_graph import normalize_edge

    want_insert = rng.random() < insert_ratio
    if want_insert:
        for _ in range(32):
            u, v = rng.sample(vertices, 2)
            edge = normalize_edge(u, v)
            if edge not in present:
                present.add(edge)
                return EdgeInsertion(*edge)
        want_insert = False  # dense neighbourhood: fall through to delete
    if present:
        # deterministic choice from the tracked edge set (sorted: set
        # iteration order must never leak into a seeded trace)
        edge = rng.choice(sorted(present))
        present.discard(edge)
        return EdgeDeletion(*edge)
    return None


def is_poison(op: EdgeUpdate, graph: DynamicGraph) -> bool:
    """Whether ``op`` references the reserved poison id space."""
    vertices = graph.sorted_vertices()
    if not vertices:
        return False
    base = max(vertices) + POISON_ID_GAP
    return op.u >= base or op.v >= base
