"""Segmented, checksummed write-ahead log for the ingestion service.

Durability contract: an event the service *accepted* (admitted, sequenced)
is appended here before it is buffered, so a process crash loses at most
the record being written when the power went — never a whole in-memory
window.  Recovery (:meth:`repro.serve.service.IngestionService.recover`)
replays the un-applied suffix against the latest maintainer checkpoint.

Format
------
A log is a directory of segments ``wal-<NNNNNNNN>.log``.  Each segment
starts with a fixed header::

    magic b"RWAL" | version u8 | base_seq u64   (big-endian)

followed by length-prefixed, checksummed records::

    payload_len u32 | crc32(payload) u32 | payload bytes

The payload is compact JSON (debuggable with ``strings``/``jq``, and JSON
round-trips ints, floats and strings exactly — which the recovery
determinism check relies on).  Record types, via the ``"t"`` key:

``ev``
    an accepted event: monotonic sequence id ``q``, kind ``k`` (``ins`` /
    ``del``), endpoints ``u``/``v``, optional timestamp ``ts``;
``cm``
    a window commit: the seq range ``[f, l]`` that just applied as one
    batch, the window index ``w``, the service's *cumulative* logical
    meters ``tot`` and the adaptive controller snapshot ``ctl`` — the
    watermark that makes replay idempotent;
``ck``
    a maintainer checkpoint: applied watermark ``q``, the checkpoint
    file's name ``file`` (relative to the log directory), plus the same
    ``tot``/``ctl``/``w`` bookkeeping as a commit;
``qr``
    a quarantined (poison) operation: its seq ``q`` and the reason —
    replay must skip it exactly like the live run did.

Torn tails vs corruption: a short or checksum-failing record at the *end
of the last segment* is the record being appended when the process died —
recovery truncates it and carries on.  The same damage anywhere else means
the log was corrupted after the fact and raises
:class:`~repro.errors.WALError`.

``fsync`` policy: ``"always"`` syncs every record (maximum durability,
slowest), ``"commit"`` (default) syncs on control records — an event may
be lost with the window it belonged to, never a committed window —
``"never"`` leaves flushing to the OS (crash-consistent, not
power-fail-safe).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import WALError, WorkloadError

MAGIC = b"RWAL"
VERSION = 1
_HEADER = struct.Struct(">4sBQ")  # magic, version, base_seq
_RECORD = struct.Struct(">II")  # payload length, crc32

FSYNC_POLICIES = ("always", "commit", "never")
#: record types that the ``commit`` fsync policy forces to disk
CONTROL_TYPES = ("cm", "ck", "qr")


@dataclass(frozen=True)
class WALRecord:
    """One decoded record plus where it lives (segment path, offset)."""

    payload: Dict[str, Any]
    segment: str
    offset: int

    @property
    def type(self) -> str:
        return self.payload.get("t", "?")


@dataclass
class ScanResult:
    """Everything a full scan learned about a log directory."""

    records: List[WALRecord]
    #: next sequence id to assign (max seen + 1; 1 for an empty log)
    next_seq: int
    #: segment file to keep appending to (None for an empty directory)
    tail_segment: Optional[str]
    #: bytes cut off a torn tail record (0 when the log ended cleanly)
    truncated_bytes: int


class WriteAheadLog:
    """Appender + scanner over one log directory.

    ``segment_bytes`` bounds how large a segment may grow before the next
    append rotates to a fresh file — recovery reads segments in name order,
    and bounded segments keep the torn-tail scan and future compaction
    cheap.
    """

    def __init__(self, directory: str, segment_bytes: int = 1 << 20,
                 fsync: str = "commit"):
        if fsync not in FSYNC_POLICIES:
            raise WorkloadError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 256:
            raise WorkloadError(
                f"segment_bytes must be >= 256, got {segment_bytes}"
            )
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self._handle = None
        self._segment_path: Optional[str] = None
        self._segment_index = 0
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, payload: Dict[str, Any]) -> None:
        """Append one record (rotating segments as needed)."""
        body = json.dumps(payload, separators=(",", ":"),
                          sort_keys=True).encode("utf-8")
        base_seq = int(payload.get("q", payload.get("l", 0)))
        handle = self._writable_handle(base_seq)
        handle.write(_RECORD.pack(len(body), zlib.crc32(body)))
        handle.write(body)
        handle.flush()
        if self.fsync == "always" or (
            self.fsync == "commit" and payload.get("t") in CONTROL_TYPES
        ):
            os.fsync(handle.fileno())
        if handle.tell() >= self.segment_bytes:
            self._close_handle()  # next append opens a fresh segment

    def close(self) -> None:
        self._close_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _writable_handle(self, base_seq: int):
        if self._handle is None:
            self._segment_index += 1
            path = os.path.join(
                self.directory, f"wal-{self._segment_index:08d}.log"
            )
            if os.path.exists(path):
                # resume appending to the segment a previous scan handed us
                self._handle = open(path, "r+b")
                self._handle.seek(0, os.SEEK_END)
                if self._handle.tell() < _HEADER.size:
                    # the torn tail ate into the header itself — rewrite it
                    self._handle.truncate(0)
                    self._handle.write(_HEADER.pack(MAGIC, VERSION, base_seq))
                    self._handle.flush()
            else:
                self._handle = open(path, "wb")
                self._handle.write(_HEADER.pack(MAGIC, VERSION, base_seq))
                self._handle.flush()
            self._segment_path = path
        return self._handle

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync != "never":
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
            self._segment_path = None

    # ------------------------------------------------------------------
    # scanning / recovery
    # ------------------------------------------------------------------
    def segments(self) -> List[str]:
        """Segment paths in append order."""
        names = sorted(
            name for name in os.listdir(self.directory)
            if name.startswith("wal-") and name.endswith(".log")
        )
        return [os.path.join(self.directory, name) for name in names]

    def scan(self) -> ScanResult:
        """Read every record, truncating a torn tail, and position the
        appender after the last good record."""
        records: List[WALRecord] = []
        truncated = 0
        segments = self.segments()
        for index, path in enumerate(segments):
            is_last = index == len(segments) - 1
            segment_records, cut = _read_segment(path, allow_torn=is_last)
            records.extend(segment_records)
            truncated += cut
        next_seq = 1
        for record in records:
            if record.type == "ev":
                next_seq = max(next_seq, int(record.payload["q"]) + 1)
        tail = segments[-1] if segments else None
        if tail is not None:
            # future appends continue in the tail segment
            self._segment_index = int(
                os.path.basename(tail)[len("wal-"):-len(".log")]
            ) - 1
            self._close_handle()
        return ScanResult(
            records=records, next_seq=next_seq,
            tail_segment=tail, truncated_bytes=truncated,
        )

    def iter_records(self) -> Iterator[WALRecord]:
        """Yield every record without mutating appender state (read-only
        audits; recovery uses :meth:`scan`)."""
        segments = self.segments()
        for index, path in enumerate(segments):
            segment_records, _ = _read_segment(
                path, allow_torn=index == len(segments) - 1, truncate=False
            )
            for record in segment_records:
                yield record


def _read_segment(
    path: str, allow_torn: bool, truncate: bool = True
) -> Tuple[List[WALRecord], int]:
    """Decode one segment; returns (records, torn bytes truncated)."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < _HEADER.size:
        if allow_torn:
            return [], _maybe_truncate(path, 0, len(blob), truncate)
        raise WALError(path, f"segment shorter than its header ({len(blob)}B)")
    magic, version, _base = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise WALError(path, f"bad magic {magic!r} (not a WAL segment)")
    if version != VERSION:
        raise WALError(
            path, f"unsupported segment version {version} (this build "
            f"reads {VERSION})"
        )
    records: List[WALRecord] = []
    offset = _HEADER.size
    while offset < len(blob):
        if offset + _RECORD.size > len(blob):
            return records, _torn(path, offset, len(blob), allow_torn,
                                  truncate, "short record header")
        length, crc = _RECORD.unpack_from(blob, offset)
        start = offset + _RECORD.size
        end = start + length
        if end > len(blob):
            return records, _torn(path, offset, len(blob), allow_torn,
                                  truncate, "short record payload")
        body = blob[start:end]
        if zlib.crc32(body) != crc:
            return records, _torn(path, offset, len(blob), allow_torn,
                                  truncate, "checksum mismatch")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WALError(
                path, f"undecodable record at offset {offset}: {exc}"
            ) from exc
        records.append(WALRecord(payload=payload, segment=path, offset=offset))
        offset = end
    return records, 0


def _torn(path: str, offset: int, total: int, allow_torn: bool,
          truncate: bool, what: str) -> int:
    if not allow_torn:
        raise WALError(
            path, f"{what} at offset {offset} in a sealed segment "
            "(corruption, not a torn tail)"
        )
    return _maybe_truncate(path, offset, total, truncate)


def _maybe_truncate(path: str, offset: int, total: int, truncate: bool) -> int:
    if truncate:
        with open(path, "r+b") as handle:
            handle.truncate(offset)
    return total - offset
