"""Durable, overload-resilient ingestion service around the maintainer.

:class:`IngestionService` is what ROADMAP item 2 calls "promoting
``StreamingSession`` into a production ingestion service".  It wraps a
checkpointable maintainer (:class:`~repro.core.maintainer.MISMaintainer`)
and a :class:`~repro.stream.StreamingSession` with four subsystems:

**Durability** — every admitted event is appended to a
:class:`~repro.serve.wal.WriteAheadLog` *before* it is buffered; every
applied window writes a commit record carrying the last applied sequence
id, the cumulative logical meters and the window controller's snapshot.
:meth:`recover` rebuilds a crashed service: load the newest maintainer
checkpoint, re-apply committed windows *with their recorded boundaries*
(idempotent — only events past the checkpoint's watermark replay, and the
recomputed cumulative meters must equal each commit's stored meters), then
re-buffer the uncommitted tail.  A clean recovery is bit-identical to a
run that never crashed: same members, same cumulative logical meters.

**Admission control** — a bounded ingress queue with block / shed / error
policies and high/low watermarks (:mod:`repro.serve.admission`).  Shed
events are dropped *before* sequencing, so the WAL never lies about what
was accepted.

**Failed-window handling** — a window whose ``apply_batch`` raises is
retried up to ``RetryPolicy.max_retries`` times with exponential backoff
(deadlines measured on the deterministic event-time clock, so seeded runs
are bit-reproducible; transient injected faults typically clear on
retry).  A window that exhausts its budget is *bisected*: halves are
applied recursively until the poison operation(s) are isolated, appended
to the dead-letter log (``dead-letter.jsonl``) and recorded as WAL
quarantine records so replay skips them too.  The stream keeps moving;
every valid event still applies exactly once.

**Adaptive windowing** — an
:class:`~repro.serve.controller.AdaptiveWindowController` grows/shrinks
the window between configured bounds from observed churn and per-window
convergence cost (the paper's Fig. 11 trade-off, closed-loop).

The service is synchronous and single-threaded, like every engine in this
repo: "blocking" a producer means resolving windows inline before its
``submit`` returns.  All control decisions read logical meters and the
event-time clock only — never the wall clock — so behaviour (window
boundaries, sheds, retries, quarantines) is deterministic per seed.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import (
    RecoveryError,
    ReproError,
    WALError,
    WorkloadError,
)
from repro.graph.updates import EdgeDeletion, EdgeInsertion, EdgeUpdate
from repro.runtime.elastic import (
    SCALE_DOWN,
    SCALE_UP,
    AutoscalePolicy,
    LoadBalancer,
    resolve_autoscale,
)
from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.controller import AdaptiveWindowController
from repro.serve.wal import WriteAheadLog
from repro.stream import StreamingSession, WindowReport

#: the logical meters whose cumulative sums are committed to the WAL — the
#: bit-identity oracle for crash recovery (same list the chaos harness
#: pins, importable without dragging the chaos module in)
LOGICAL_METERS = (
    "supersteps", "active_vertices", "state_changes",
    "messages", "remote_messages", "bytes_sent", "compute_work",
)

#: the session never cuts windows itself — the service does, through the
#: adaptive controller — so its own trigger is pushed out of reach
_UNBOUNDED_WINDOW = 1 << 62

DEAD_LETTER_NAME = "dead-letter.jsonl"


@dataclass(frozen=True)
class RetryPolicy:
    """Failed-window retry budget and backoff shape.

    Backoff is measured in *event-time* seconds (the timestamps the trace
    carries; untimed submissions tick the clock by 1.0 each), which keeps
    retry scheduling deterministic for seeded traces.  After
    ``max_retries`` failed retries the window is bisected and its poison
    operations quarantined.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise WorkloadError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise WorkloadError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise WorkloadError("backoff_factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


@dataclass
class ServeStats:
    """Operational counters (durable ones are derivable from the WAL)."""

    window_failures: int = 0
    retries_scheduled: int = 0
    bisections: int = 0
    quarantined: int = 0
    checkpoints: int = 0
    replayed_windows: int = 0
    replayed_events: int = 0
    truncated_bytes: int = 0
    scale_ups: int = 0
    scale_downs: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass(frozen=True)
class SubmitResult:
    """Fate of one submission."""

    accepted: bool
    seq: Optional[int] = None
    shed: bool = False


@dataclass
class _RecoveredState:
    """What :meth:`IngestionService.recover` hands the constructor."""

    wal: WriteAheadLog
    next_seq: int
    watermark: int
    totals: Dict[str, int]
    controller_snapshot: Dict[str, Any]
    windows_committed: int
    clock: float
    tail: List[Tuple[int, EdgeUpdate, Optional[float]]]
    replayed_windows: int
    replayed_events: int
    truncated_bytes: int
    replay_batches: List[Tuple[List[Tuple[int, EdgeUpdate, Optional[float]]],
                               Dict[str, int]]] = field(default_factory=list)


class IngestionService:
    """Durable windowed ingestion into a checkpointable MIS maintainer.

    Parameters
    ----------
    maintainer:
        Anything with the :class:`~repro.core.maintainer.MISMaintainer`
        surface — ``apply_batch`` / ``independent_set`` /
        ``update_metrics`` *plus* ``save(path)`` (checkpoints are the
        recovery floor).
    wal_dir:
        Directory for the write-ahead log, checkpoints and the
        dead-letter log.  Must not already contain a log — recover an
        existing one with :meth:`recover`.
    controller / admission / retry:
        The window controller (default adaptive), admission config and
        retry policy.
    checkpoint_every:
        Write a maintainer checkpoint every N committed windows (0 keeps
        only the initial and closing checkpoints).
    close_maintainer:
        When True (default), :meth:`close` / :meth:`abandon` also close
        the maintainer (releasing a process-runtime worker pool).
    """

    def __init__(
        self,
        maintainer,
        wal_dir: str,
        controller: Optional[AdaptiveWindowController] = None,
        admission: Optional[AdmissionConfig] = None,
        retry: Optional[RetryPolicy] = None,
        fsync: str = "commit",
        segment_bytes: int = 1 << 20,
        checkpoint_every: int = 8,
        close_maintainer: bool = True,
        autoscale=None,
        target_utilization: Optional[float] = None,
        balancer: Optional[LoadBalancer] = None,
        serve_reads: bool = False,
        _recovered: Optional[_RecoveredState] = None,
    ):
        if checkpoint_every < 0:
            raise WorkloadError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if not hasattr(maintainer, "save"):
            raise WorkloadError(
                "IngestionService needs a checkpointable maintainer "
                "(save(path) — e.g. MISMaintainer); got "
                f"{type(maintainer).__name__}"
            )
        self.maintainer = maintainer
        self.wal_dir = wal_dir
        self.controller = controller if controller is not None \
            else AdaptiveWindowController()
        self.admission = AdmissionController(admission or AdmissionConfig())
        self.retry = retry or RetryPolicy()
        self.checkpoint_every = checkpoint_every
        self.stats = ServeStats()
        self.session = StreamingSession(
            maintainer, window_size=_UNBOUNDED_WINDOW,
            close_maintainer=close_maintainer,
        )
        self._queue: Deque[Tuple[int, EdgeUpdate, Optional[float]]] = deque()
        self._window_seqs: List[int] = []
        self._attempts = 0
        self._next_retry_at = 0.0
        self._dead_letter = None
        self._closed = False
        # elastic serve loop: the policy is consulted after every committed
        # window and grows/shrinks the maintainer's *physical* process pool
        # (logical partitioning is untouched, so results stay bit-identical
        # at any pool size)
        self.autoscale: Optional[AutoscalePolicy] = resolve_autoscale(
            autoscale, target_utilization
        )
        self.balancer = balancer if balancer is not None else LoadBalancer()
        self._records_seen = 0
        self._consulted_work = 0
        self._consulted_active = 0
        # epoch-consistent read path: a snapshot registry publishing at
        # every committed window, and a query engine answering against the
        # newest epoch (see repro.serve.reads).  Staleness is measured
        # against the ingress frontier — the last *accepted* sequence id.
        self.reads = None
        self.query_engine = None
        if serve_reads:
            from repro.serve.reads import QueryEngine, SnapshotRegistry

            self.reads = SnapshotRegistry(
                maintainer, frontier_fn=lambda: self._next_seq - 1
            )
            self.query_engine = QueryEngine(self.reads)
        if _recovered is None:
            self.wal = WriteAheadLog(
                wal_dir, segment_bytes=segment_bytes, fsync=fsync
            )
            if self.wal.segments():
                raise WALError(
                    wal_dir,
                    "directory already holds a log — use "
                    "IngestionService.recover() instead of constructing "
                    "a fresh service over it",
                )
            self._next_seq = 1
            self._applied_watermark = 0
            self.windows_committed = 0
            self.totals: Dict[str, int] = {k: 0 for k in LOGICAL_METERS}
            self._clock = 0.0
            # the recovery floor: every service is recoverable from birth
            self.checkpoint()
            self._publish_epoch()
        else:
            self.wal = _recovered.wal
            self._next_seq = _recovered.next_seq
            self._applied_watermark = _recovered.watermark
            self.windows_committed = _recovered.windows_committed
            self.totals = dict(_recovered.totals)
            self._clock = _recovered.clock
            self.controller.restore(_recovered.controller_snapshot)
            self.stats.replayed_windows = _recovered.replayed_windows
            self.stats.replayed_events = _recovered.replayed_events
            self.stats.truncated_bytes = _recovered.truncated_bytes

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Accepted events not yet applied (queue + any stuck window)."""
        return len(self._queue) + self.session.pending

    @property
    def applied_watermark(self) -> int:
        """Sequence id of the last committed event."""
        return self._applied_watermark

    def submit(
        self, op: EdgeUpdate, timestamp: Optional[float] = None
    ) -> SubmitResult:
        """Admit, sequence, log and buffer one event (flushing windows as
        they fill); returns the submission's fate."""
        if self._closed:
            raise WorkloadError("ingestion service is closed")
        if not isinstance(op, (EdgeInsertion, EdgeDeletion)):
            raise WorkloadError(
                f"serve ingests edge updates only, got {type(op).__name__}"
            )
        if timestamp is not None and timestamp < self._clock:
            raise WorkloadError(
                f"timestamps must be non-decreasing "
                f"({timestamp} < {self._clock})"
            )
        verdict = self.admission.admit(self.pending)
        if verdict == "shed":
            # the event is dropped, but its timestamp still happened: move
            # the clock so a stuck window's backoff deadline can expire
            # under sustained overload (untimed sheds leave the clock
            # alone — they are not durable, so recovery could not re-tick
            # them, and the clock re-syncs on the next accepted event)
            if timestamp is not None:
                self._clock = max(self._clock, float(timestamp))
            self._pump()
            return SubmitResult(accepted=False, shed=True)
        if verdict == "drain":
            # block policy: resolve windows (deadlines ignored) until the
            # queue is back under the low watermark, then admit
            self._pump(force=True, target=self.admission.drain_target())
        self._advance_clock(timestamp)
        seq = self._next_seq
        self._next_seq += 1
        self.wal.append(_event_payload(seq, op, timestamp))
        self.admission.accepted()
        self._queue.append((seq, op, timestamp))
        self._pump()
        return SubmitResult(accepted=True, seq=seq)

    def submit_many(
        self,
        operations: List[EdgeUpdate],
        timestamps: Optional[List[float]] = None,
    ) -> List[SubmitResult]:
        return [
            self.submit(
                op, timestamps[i] if timestamps is not None else None
            )
            for i, op in enumerate(operations)
        ]

    def drain(self) -> None:
        """Apply everything pending now (retry deadlines ignored)."""
        self._pump(force=True, target=0)

    # ------------------------------------------------------------------
    # the window pump
    # ------------------------------------------------------------------
    def _advance_clock(self, timestamp: Optional[float]) -> None:
        if timestamp is None:
            self._clock += 1.0
        else:
            self._clock = max(self._clock, float(timestamp))

    def _pump(self, force: bool = False, target: int = 0) -> None:
        """Resolve windows until blocked (backoff pending / not enough
        events for a window) or — under ``force`` — drained to ``target``."""
        while True:
            total = len(self._queue) + self.session.pending
            if total == 0 or (force and total <= target):
                return
            if self.session.pending == 0:
                if not force and len(self._queue) < self.controller.window_size:
                    return
                self._cut_window()
            if (self._attempts and not force
                    and self._clock < self._next_retry_at):
                return  # stuck window waiting out its backoff
            if not self._flush_window(force):
                return

    def _cut_window(self) -> None:
        take = min(self.controller.window_size, len(self._queue))
        for _ in range(take):
            seq, op, ts = self._queue.popleft()
            self._window_seqs.append(seq)
            self.session.offer(op, timestamp=ts)
        self._attempts = 0

    def _flush_window(self, force: bool) -> bool:
        """One resolution pass over the window in the session; returns
        True when the window fully resolved (committed or quarantined)."""
        while True:
            before = self._fingerprint()
            try:
                report = self.session.flush()
            except ReproError:
                self._attempts += 1
                self.stats.window_failures += 1
                if self._attempts <= self.retry.max_retries:
                    if force:
                        continue  # blocked producer: retry immediately
                    self.stats.retries_scheduled += 1
                    self._next_retry_at = (
                        self._clock + self.retry.delay(self._attempts)
                    )
                    return False
                self._bisect_window()
                return True
            if report is not None:
                self._commit_window(report, before)
            return True

    def _fingerprint(self) -> Dict[str, int]:
        metrics = self.maintainer.update_metrics
        return {k: getattr(metrics, k, 0) for k in LOGICAL_METERS}

    def _commit_window(
        self, report: WindowReport, before: Dict[str, int]
    ) -> None:
        after = self._fingerprint()
        for name in LOGICAL_METERS:
            self.totals[name] += after[name] - before[name]
        self.windows_committed += 1
        self.controller.observe(
            report.operations, report.supersteps, report.churn
        )
        first, last = self._window_seqs[0], self._window_seqs[-1]
        self.wal.append({
            "t": "cm",
            "w": self.windows_committed,
            "f": first,
            "l": last,
            "n": report.operations,
            "tot": dict(self.totals),
            "ctl": self.controller.snapshot(),
            "ep": self._membership_epoch(),
        })
        self._applied_watermark = last
        self._window_seqs = []
        self._attempts = 0
        # readers switch to the just-committed window's epoch before
        # anything else observes the commit
        self._publish_epoch()
        if (self.checkpoint_every
                and self.windows_committed % self.checkpoint_every == 0):
            self.checkpoint()
        self._consult_autoscale()

    # ------------------------------------------------------------------
    # epoch-consistent reads
    # ------------------------------------------------------------------
    def _publish_epoch(self) -> None:
        """Publish the current committed state as a read epoch.

        Epoch ids are the committed-window count — derived from the WAL,
        so they are strictly monotonic within a service lifetime *and*
        stable across crash/recover (a recovered service resumes at the
        replayed window count, never reusing or skipping an epoch id).
        """
        if self.reads is None:
            return
        latest = self.reads.latest()
        if latest is not None and latest.epoch == self.windows_committed:
            return
        self.reads.publish(
            epoch=self.windows_committed,
            watermark=self._applied_watermark,
        )

    def _require_reads(self):
        if self.query_engine is None:
            raise WorkloadError(
                "read path disabled — construct the service with "
                "serve_reads=True"
            )
        return self.query_engine

    def query_point(self, vertex: int) -> Dict[str, Any]:
        """Point membership at the last committed epoch."""
        return self._require_reads().point(vertex)

    def query_batch(self, vertices, offload: bool = False) -> Dict[str, Any]:
        """Vectorized batch membership at the last committed epoch.

        ``offload=True`` routes the gather through the maintainer's
        process runtime (zero-copy worker-side read) when the snapshot is
        shared-memory backed; otherwise the in-process pass answers.
        """
        runtime = None
        if offload:
            runtime = getattr(self.maintainer, "runtime", None)
            if not hasattr(runtime, "read_membership"):
                runtime = None
        return self._require_reads().batch(vertices, runtime=runtime)

    def query_neighborhood(self, vertex: int, hops: int = 1) -> Dict[str, Any]:
        """In-set vertices within ``hops`` of ``vertex`` at the last
        committed epoch."""
        return self._require_reads().neighborhood(vertex, hops=hops)

    def query_why_not(self, vertex: int) -> Dict[str, Any]:
        """Membership certificate (blocking ≺-smaller in-set neighbour
        for a non-member) at the last committed epoch."""
        return self._require_reads().why_not(vertex)

    # ------------------------------------------------------------------
    # elastic membership + autoscaling
    # ------------------------------------------------------------------
    def _membership_epoch(self) -> List[int]:
        """``[cluster_size, membership_epoch]`` for WAL commit records.

        Recovery refuses to replay commits made under a different cluster
        shape (a mixed or foreign log directory) with a clear
        :class:`~repro.errors.RecoveryError` instead of the index errors a
        wrong partitioning would eventually produce.
        """
        failover = getattr(self.maintainer, "failover", None)
        epoch = failover.epoch if failover is not None else 0
        return [int(self.maintainer.num_workers), int(epoch)]

    def _pool_size(self) -> int:
        """Physical worker-process count (1 for the inline backend)."""
        runtime = getattr(self.maintainer, "runtime", None)
        return int(getattr(runtime, "procs", 1) or 1)

    def _consult_autoscale(self) -> None:
        """Fold the committed window into the balancer and apply the
        policy's decision to the maintainer's process pool."""
        if self.autoscale is None:
            return
        metrics = self.maintainer.update_metrics
        records = metrics.records
        observation = None
        if len(records) > self._records_seen:
            # per-worker vectors are available (keep_records on): sum the
            # window's barriers so the balancer sees real skew
            totals: List[int] = []
            active = 0
            for record in records[self._records_seen:]:
                for w, units in enumerate(record.worker_work):
                    if w >= len(totals):
                        totals.extend([0] * (w + 1 - len(totals)))
                    totals[w] += units
                active += record.active_vertices
            self._records_seen = len(records)
            if any(totals):
                observation = (totals, active)
        if observation is None:
            # meters only: one aggregate observation per window
            delta_work = self.totals["compute_work"] - self._consulted_work
            delta_active = (
                self.totals["active_vertices"] - self._consulted_active
            )
            observation = ([max(delta_work, 0)], max(delta_active, 0))
        self._consulted_work = self.totals["compute_work"]
        self._consulted_active = self.totals["active_vertices"]
        self.balancer.observe(*observation)
        decision = self.autoscale.decide(self.balancer, self._pool_size())
        runtime = getattr(self.maintainer, "runtime", None)
        if decision.action == SCALE_UP and hasattr(runtime, "add_worker"):
            runtime.add_worker()
            self.stats.scale_ups += 1
        elif decision.action == SCALE_DOWN \
                and hasattr(runtime, "drain_worker"):
            runtime.drain_worker()
            self.stats.scale_downs += 1

    # ------------------------------------------------------------------
    # poison handling: bisect + quarantine
    # ------------------------------------------------------------------
    def _bisect_window(self) -> None:
        """The window exhausted its retries: isolate the poison."""
        items = list(zip(self._window_seqs, self.session.take_pending()))
        self._window_seqs = []
        self._attempts = 0
        self.stats.bisections += 1
        mid = (len(items) + 1) // 2
        self._apply_fragment(items[:mid])
        self._apply_fragment(items[mid:])

    def _apply_fragment(
        self, items: List[Tuple[int, EdgeUpdate]]
    ) -> None:
        if not items:
            return
        for seq, op in items:
            self._window_seqs.append(seq)
            self.session.offer(op)
        before = self._fingerprint()
        try:
            report = self.session.flush()
        except ReproError as exc:
            self.session.take_pending()
            self._window_seqs = []
            if len(items) == 1:
                self._quarantine(items[0][0], items[0][1], exc)
            else:
                mid = (len(items) + 1) // 2
                self._apply_fragment(items[:mid])
                self._apply_fragment(items[mid:])
            return
        if report is not None:
            self._commit_window(report, before)

    def _quarantine(self, seq: int, op: EdgeUpdate, exc: Exception) -> None:
        reason = f"{type(exc).__name__}: {exc}"[:300]
        self.stats.quarantined += 1
        self.wal.append({
            "t": "qr",
            "q": seq,
            "k": "ins" if isinstance(op, EdgeInsertion) else "del",
            "u": op.u,
            "v": op.v,
            "reason": reason,
        })
        if self._dead_letter is None:
            self._dead_letter = open(
                os.path.join(self.wal_dir, DEAD_LETTER_NAME),
                "a", encoding="utf-8",
            )
        self._dead_letter.write(json.dumps({
            "seq": seq,
            "kind": "ins" if isinstance(op, EdgeInsertion) else "del",
            "u": op.u,
            "v": op.v,
            "reason": reason,
            "after_window": self.windows_committed,
        }, sort_keys=True) + "\n")
        self._dead_letter.flush()

    # ------------------------------------------------------------------
    # checkpoints / shutdown
    # ------------------------------------------------------------------
    def checkpoint(self) -> str:
        """Write a maintainer checkpoint + its WAL record; returns the
        checkpoint file's path.  Crash-ordering-safe: the file is fsynced
        into place *before* the record that announces it."""
        name = f"checkpoint-{self._applied_watermark:012d}.json"
        path = os.path.join(self.wal_dir, name)
        tmp = path + ".tmp"
        self.maintainer.save(tmp)
        os.replace(tmp, path)
        self.wal.append({
            "t": "ck",
            "q": self._applied_watermark,
            "file": name,
            "w": self.windows_committed,
            "tot": dict(self.totals),
            "ctl": self.controller.snapshot(),
        })
        self.stats.checkpoints += 1
        self._prune_checkpoints(keep=2)
        return path

    def _prune_checkpoints(self, keep: int) -> None:
        names = sorted(
            n for n in os.listdir(self.wal_dir)
            if n.startswith("checkpoint-") and n.endswith(".json")
        )
        for name in names[:-keep]:
            try:
                os.remove(os.path.join(self.wal_dir, name))
            except OSError:  # pragma: no cover - best-effort housekeeping
                pass

    def close(self) -> None:
        """Drain every pending window, checkpoint, and release resources."""
        if self._closed:
            return
        try:
            self.drain()
            self.checkpoint()
        finally:
            self._teardown()

    def abandon(self) -> None:
        """Simulate a crash: release file handles and the maintainer's
        backend WITHOUT draining, committing or checkpointing.  Pending
        events stay in the WAL for :meth:`recover` — this is what the
        chaos harness calls "kill"."""
        if self._closed:
            return
        self._teardown()

    def _teardown(self) -> None:
        self._closed = True
        if self.reads is not None:
            self.reads.close()
        try:
            self.wal.close()
        finally:
            if self._dead_letter is not None:
                self._dead_letter.close()
                self._dead_letter = None
            # seal the session without flushing (close() would re-raise a
            # poison tail); the session's _close_maintainer honours the
            # close_maintainer flag it was built with
            self.session._closed = True
            self.session._close_maintainer()

    def __enter__(self) -> "IngestionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abandon()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def logical_totals(self) -> Dict[str, int]:
        """Cumulative logical meters over every committed window — the
        numbers recovery must reproduce bit-for-bit."""
        return dict(self.totals)

    def stats_summary(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {
            "pending": self.pending,
            "applied_watermark": self._applied_watermark,
            "windows_committed": self.windows_committed,
        }
        summary.update(self.admission.stats.as_dict())
        summary.update(self.stats.as_dict())
        summary["controller"] = self.controller.as_dict()
        summary["session"] = self.session.totals()
        summary["logical_totals"] = self.logical_totals()
        if self.query_engine is not None:
            summary["reads"] = self.query_engine.read_stats()
        if self.autoscale is not None:
            last = (self.autoscale.decisions[-1]
                    if self.autoscale.decisions else None)
            summary["autoscale"] = {
                "pool_size": self._pool_size(),
                "decisions": len(self.autoscale.decisions),
                "last_action": last.action if last is not None else None,
                "last_reason": last.reason if last is not None else None,
                "utilization": round(
                    last.utilization if last is not None else 0.0, 4
                ),
                "skew": round(self.balancer.skew(), 4),
            }
        return summary

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        wal_dir: str,
        maintainer_kwargs: Optional[Dict[str, Any]] = None,
        controller: Optional[AdaptiveWindowController] = None,
        admission: Optional[AdmissionConfig] = None,
        retry: Optional[RetryPolicy] = None,
        fsync: str = "commit",
        segment_bytes: int = 1 << 20,
        checkpoint_every: int = 8,
        close_maintainer: bool = True,
        autoscale=None,
        target_utilization: Optional[float] = None,
        serve_reads: bool = False,
    ) -> "IngestionService":
        """Rebuild a crashed service from its log directory.

        The replay protocol (see DESIGN.md §13): load the newest loadable
        checkpoint, re-apply every commit past its watermark using the
        commit's *recorded* window boundaries (skipping quarantined
        seqs), assert the recomputed cumulative meters equal each
        commit's stored meters, restore the controller snapshot, then
        re-buffer the uncommitted tail.  Retry state (attempt counters,
        backoff deadlines) is deliberately not durable — a stuck window
        restarts its budget after recovery.

        ``maintainer_kwargs`` pass through to
        :meth:`~repro.core.maintainer.MISMaintainer.load` (``runtime``,
        ``representation``, ``faults``, ...).
        """
        from repro.core.maintainer import MISMaintainer

        wal = WriteAheadLog(wal_dir, segment_bytes=segment_bytes, fsync=fsync)
        scan = wal.scan()
        if not scan.records:
            raise WALError(wal_dir, "no log records to recover from")
        events: Dict[int, Tuple[EdgeUpdate, Optional[float]]] = {}
        quarantined: Set[int] = set()
        checkpoints: List[Dict[str, Any]] = []
        commits: List[Dict[str, Any]] = []
        # (record index, payload) so replay can honour log order of
        # quarantines relative to commits
        ordered: List[Dict[str, Any]] = [r.payload for r in scan.records]
        for payload in ordered:
            kind = payload.get("t")
            if kind == "ev":
                events[int(payload["q"])] = (_decode_event(payload),
                                             payload.get("ts"))
            elif kind == "qr":
                quarantined.add(int(payload["q"]))
            elif kind == "ck":
                checkpoints.append(payload)
            elif kind == "cm":
                commits.append(payload)
            else:
                raise WALError(wal_dir, f"unknown record type {kind!r}")
        maintainer = None
        base = None
        for candidate in reversed(checkpoints):
            path = os.path.join(wal_dir, candidate["file"])
            if not os.path.exists(path):
                continue
            try:
                maintainer = MISMaintainer.load(
                    path, **(maintainer_kwargs or {})
                )
            except ReproError:
                continue  # fall back to the previous checkpoint
            base = candidate
            break
        if maintainer is None or base is None:
            raise WALError(
                wal_dir, "no loadable maintainer checkpoint found"
            )
        # membership epoch guard (satellite of the elastic-membership work):
        # every commit records [cluster_size, epoch]; replaying a log whose
        # commits were made under a different cluster shape than the
        # checkpoint restores would misattribute every host/guest directory,
        # so fail loudly and early instead
        recorded_shape: Optional[Tuple[int, int]] = None
        for commit in commits:
            ep = commit.get("ep")
            if ep is not None:
                recorded_shape = (int(ep[0]), int(ep[1]))
        if recorded_shape is not None \
                and recorded_shape[0] != maintainer.num_workers:
            raise RecoveryError(
                f"{wal_dir}: membership mismatch: log commits were made "
                f"at num_workers={recorded_shape[0]} (membership epoch "
                f"{recorded_shape[1]}), but the recovered checkpoint has "
                f"num_workers={maintainer.num_workers} — recover with the "
                f"original cluster shape or start a fresh log"
            )
        if recorded_shape is not None and recorded_shape[1] > 0:
            failover = getattr(maintainer, "failover", None)
            if failover is not None:
                failover.view.restore_epoch(recorded_shape[1])
        watermark = int(base["q"])
        totals = {k: int(v) for k, v in base["tot"].items()}
        windows_committed = int(base["w"])
        controller_snapshot = dict(base["ctl"])
        replay_batches = []
        replayed_events = 0
        for commit in commits:
            last = int(commit["l"])
            if last <= watermark:
                continue  # already inside the checkpoint
            batch = []
            for seq in range(watermark + 1, last + 1):
                if seq in quarantined:
                    continue
                if seq not in events:
                    raise RecoveryError(
                        f"{wal_dir}: commit window [{commit['f']}, {last}] "
                        f"references seq {seq} with no event record"
                    )
                op, ts = events[seq]
                batch.append((seq, op, ts))
            replay_batches.append((batch, {
                k: int(v) for k, v in commit["tot"].items()
            }))
            replayed_events += len(batch)
            watermark = last
            windows_committed = int(commit["w"])
            controller_snapshot = dict(commit["ctl"])
        # the uncommitted tail goes back into the ingress queue in order
        tail = [
            (seq, events[seq][0], events[seq][1])
            for seq in sorted(events)
            if seq > watermark and seq not in quarantined
        ]
        clock = 0.0
        for seq in sorted(events):
            ts = events[seq][1]
            clock = clock + 1.0 if ts is None else max(clock, float(ts))
        recovered = _RecoveredState(
            wal=wal,
            next_seq=scan.next_seq,
            watermark=int(base["q"]),
            totals=totals,
            controller_snapshot=controller_snapshot,
            windows_committed=windows_committed,
            clock=clock,
            tail=tail,
            replayed_windows=len(replay_batches),
            replayed_events=replayed_events,
            truncated_bytes=scan.truncated_bytes,
            replay_batches=replay_batches,
        )
        service = cls(
            maintainer,
            wal_dir,
            controller=controller,
            admission=admission,
            retry=retry,
            fsync=fsync,
            segment_bytes=segment_bytes,
            checkpoint_every=checkpoint_every,
            close_maintainer=close_maintainer,
            autoscale=autoscale,
            target_utilization=target_utilization,
            serve_reads=serve_reads,
            _recovered=recovered,
        )
        service._replay(recovered)
        return service

    def _replay(self, recovered: _RecoveredState) -> None:
        """Re-apply committed windows, verify meters, re-buffer the tail."""
        for batch, expected_totals in recovered.replay_batches:
            if not batch:
                continue
            for seq, op, ts in batch:
                self._window_seqs.append(seq)
                self.session.offer(op, timestamp=ts)
            before = self._fingerprint()
            try:
                report = self.session.flush()
            except ReproError as exc:
                raise RecoveryError(
                    f"{self.wal_dir}: committed window "
                    f"[{batch[0][0]}, {batch[-1][0]}] failed to re-apply "
                    f"({type(exc).__name__}: {exc})"
                ) from exc
            after = self._fingerprint()
            for name in LOGICAL_METERS:
                self.totals[name] += after[name] - before[name]
            self._applied_watermark = batch[-1][0]
            self._window_seqs = []
            if report is None:  # pragma: no cover - batch is never empty
                continue
            if self.totals != expected_totals:
                drifted = {
                    k: (self.totals[k], expected_totals.get(k))
                    for k in self.totals
                    if self.totals[k] != expected_totals.get(k)
                }
                raise RecoveryError(
                    f"{self.wal_dir}: replay of committed window "
                    f"[{batch[0][0]}, {batch[-1][0]}] diverged from the "
                    f"recorded meters: {drifted}"
                )
        # controller state reflects every commit (snapshot restored by the
        # constructor); replaying must not observe() on top of that
        self.controller.restore(recovered.controller_snapshot)
        self._applied_watermark = max(
            self._applied_watermark,
            max((b[-1][0] for b, _ in recovered.replay_batches if b),
                default=self._applied_watermark),
        )
        # autoscale deltas start from the recovered totals, and replayed
        # superstep records never re-trigger scale decisions
        self._consulted_work = self.totals["compute_work"]
        self._consulted_active = self.totals["active_vertices"]
        self._records_seen = len(self.maintainer.update_metrics.records)
        # the read watermark survives WAL replay: the first post-recovery
        # epoch is the replayed commit watermark, published before the
        # uncommitted tail pumps any further windows
        self._publish_epoch()
        for seq, op, ts in recovered.tail:
            self._queue.append((seq, op, ts))
        self._pump()

    # ------------------------------------------------------------------
    # audit (exactly-once accounting over the log itself)
    # ------------------------------------------------------------------
    def audit(self) -> Tuple[List[str], Dict[str, int]]:
        """Audit this service's log directory; see :func:`audit_log`."""
        return audit_log(self.wal_dir)


def audit_log(wal_dir: str) -> Tuple[List[str], Dict[str, int]]:
    """Exactly-once accounting over a log directory, from the log alone.

    Checks: sequence ids are gapless ``1..N`` with no duplicates; commit
    ranges are ascending and non-overlapping; below the final watermark
    every seq is either committed exactly once or quarantined exactly
    once (never both, never neither); commit ``n`` counts match their
    ranges.  Returns ``(problems, summary)`` — an empty problem list is
    the "zero lost / zero duplicated" certificate the CI soak asserts.
    """
    wal = WriteAheadLog(wal_dir)
    seqs: List[int] = []
    quarantined: Set[int] = set()
    commit_ranges: List[Tuple[int, int, int]] = []  # (first, last, n)
    problems: List[str] = []
    for record in wal.iter_records():
        payload = record.payload
        kind = payload.get("t")
        if kind == "ev":
            seqs.append(int(payload["q"]))
        elif kind == "qr":
            seq = int(payload["q"])
            if seq in quarantined:
                problems.append(f"seq {seq} quarantined twice")
            quarantined.add(seq)
        elif kind == "cm":
            commit_ranges.append(
                (int(payload["f"]), int(payload["l"]), int(payload["n"]))
            )
    expected = list(range(1, len(seqs) + 1))
    if sorted(seqs) != expected:
        dupes = sorted({s for s in seqs if seqs.count(s) > 1})
        missing = sorted(set(expected) - set(seqs))[:5]
        problems.append(
            f"sequence ids not gapless 1..{len(seqs)}: "
            f"duplicated={dupes[:5]} missing={missing}"
        )
    applied: Set[int] = set()
    prev_last = 0
    for first, last, count in commit_ranges:
        if first <= prev_last:
            problems.append(
                f"commit [{first}, {last}] overlaps an earlier commit "
                f"(previous watermark {prev_last})"
            )
        window = [
            s for s in range(max(first, prev_last + 1), last + 1)
            if s not in quarantined
        ]
        if len(window) != count:
            problems.append(
                f"commit [{first}, {last}] claims {count} op(s) but its "
                f"range holds {len(window)} non-quarantined seq(s)"
            )
        for seq in window:
            if seq in applied:
                problems.append(f"seq {seq} committed twice")
            applied.add(seq)
        prev_last = max(prev_last, last)
    watermark = prev_last
    for seq in range(1, watermark + 1):
        in_applied = seq in applied
        in_quarantine = seq in quarantined
        if in_applied and in_quarantine:
            problems.append(f"seq {seq} both applied and quarantined")
        elif not in_applied and not in_quarantine:
            problems.append(
                f"seq {seq} below watermark {watermark} neither applied "
                "nor quarantined (lost)"
            )
    pending = [s for s in sorted(set(seqs))
               if s > watermark and s not in quarantined]
    summary = {
        "events": len(seqs),
        "applied": len(applied),
        "quarantined": len(quarantined),
        "pending": len(pending),
        "watermark": watermark,
        "commits": len(commit_ranges),
    }
    return problems, summary


def _event_payload(
    seq: int, op: EdgeUpdate, timestamp: Optional[float]
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "t": "ev",
        "q": seq,
        "k": "ins" if isinstance(op, EdgeInsertion) else "del",
        "u": op.u,
        "v": op.v,
    }
    if timestamp is not None:
        payload["ts"] = timestamp
    return payload


def _decode_event(payload: Dict[str, Any]) -> EdgeUpdate:
    kind = payload.get("k")
    if kind == "ins":
        return EdgeInsertion(int(payload["u"]), int(payload["v"]))
    if kind == "del":
        return EdgeDeletion(int(payload["u"]), int(payload["v"]))
    raise WALError("<record>", f"unknown event kind {kind!r}")
