"""Durable, overload-resilient ingestion service (ROADMAP item 2).

The :class:`IngestionService` wraps a checkpointable maintainer with a
write-ahead log + crash recovery, admission control/backpressure,
retry-with-quarantine for poison windows, and adaptive windowing.  See
DESIGN.md §13 for the architecture and the WAL format.

The read path (:mod:`repro.serve.reads`, DESIGN.md §15) publishes an
immutable epoch-tagged snapshot at every committed window and answers
point/batch/neighbourhood/why-not queries against it.
"""

from repro.serve.admission import (
    POLICIES,
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
)
from repro.serve.controller import (
    AdaptiveWindowController,
    FixedWindowController,
    WindowConfig,
)
from repro.serve.reads import (
    EpochSnapshot,
    QueryEngine,
    SnapshotRegistry,
)
from repro.serve.service import (
    DEAD_LETTER_NAME,
    LOGICAL_METERS,
    IngestionService,
    RetryPolicy,
    ServeStats,
    SubmitResult,
    audit_log,
)
from repro.serve.trace import (
    POISON_ID_GAP,
    TraceConfig,
    bursty_trace,
    is_poison,
)
from repro.serve.wal import (
    FSYNC_POLICIES,
    ScanResult,
    WALRecord,
    WriteAheadLog,
)

__all__ = [
    "AdaptiveWindowController",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "DEAD_LETTER_NAME",
    "EpochSnapshot",
    "FSYNC_POLICIES",
    "FixedWindowController",
    "IngestionService",
    "LOGICAL_METERS",
    "POISON_ID_GAP",
    "POLICIES",
    "QueryEngine",
    "RetryPolicy",
    "ScanResult",
    "ServeStats",
    "SnapshotRegistry",
    "SubmitResult",
    "TraceConfig",
    "WALRecord",
    "WindowConfig",
    "WriteAheadLog",
    "audit_log",
    "bursty_trace",
    "is_poison",
]
