"""Adaptive window-size controller (the paper's Fig. 11 knob, closed-loop).

Fig. 11 measures the batch-size trade-off: bigger windows amortize
supersteps and sync, smaller windows bound per-window latency and
staleness.  This controller turns that static sweep into a feedback loop
in the style of adadamp's batch-size damping: grow the window
geometrically while the *observed* per-window convergence cost stays under
budget, shrink it multiplicatively the moment cost or churn spikes.

Two deliberate design points:

- **Only logical observations.**  Decisions read supersteps and membership
  churn — deterministic, engine-independent meters — never wall time.
  That keeps window boundaries bit-reproducible across runs, runtimes
  (inline vs multi-process) and machines, which is what lets the chaos
  oracle and ``bench-perf --check`` pin serve scenarios at all.
- **Snapshotable.**  The full controller state is a small JSON-exact dict
  (:meth:`snapshot` / :meth:`restore`), recorded in every WAL commit, so
  crash recovery resumes windowing *exactly* where the dead process left
  off.  JSON round-trips Python floats losslessly, so a restored EMA is
  bit-identical to the live one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WindowConfig:
    """Bounds and gains for :class:`AdaptiveWindowController`.

    ``target_supersteps`` is the per-window convergence budget: the
    controller steers the *predicted* window cost (EMA supersteps/op x
    window size) toward it.  ``churn_threshold`` is the churn-per-op level
    treated as a spike — under heavy churn every operation destabilizes
    more of the set, so bounding per-window work means shrinking the
    window (the Assadi et al. motivation: bounded work per update even
    under adversarial churn).
    """

    min_window: int = 4
    max_window: int = 256
    initial_window: int = 16
    target_supersteps: float = 24.0
    #: grow when predicted cost is below this fraction of the target
    headroom: float = 0.5
    growth: float = 2.0
    shrink: float = 0.5
    #: EMA smoothing for the per-op observations
    alpha: float = 0.3
    #: membership churn per op above which the window shrinks outright
    churn_threshold: float = 1.5

    def __post_init__(self):
        if not 1 <= self.min_window <= self.max_window:
            raise WorkloadError(
                f"need 1 <= min_window <= max_window, got "
                f"[{self.min_window}, {self.max_window}]"
            )
        if not self.min_window <= self.initial_window <= self.max_window:
            raise WorkloadError(
                f"initial_window {self.initial_window} outside "
                f"[{self.min_window}, {self.max_window}]"
            )
        if self.target_supersteps <= 0:
            raise WorkloadError("target_supersteps must be positive")
        if not 0 < self.headroom < 1:
            raise WorkloadError("headroom must be in (0, 1)")
        if self.growth <= 1.0 or not 0 < self.shrink < 1.0:
            raise WorkloadError(
                f"need growth > 1 and 0 < shrink < 1, got "
                f"growth={self.growth} shrink={self.shrink}"
            )
        if not 0 < self.alpha <= 1.0:
            raise WorkloadError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.churn_threshold <= 0:
            raise WorkloadError("churn_threshold must be positive")


class AdaptiveWindowController:
    """Grows/shrinks the window size from observed per-window cost."""

    def __init__(self, config: WindowConfig = WindowConfig()):
        self.config = config
        self.window_size = config.initial_window
        self._ema_supersteps_per_op = 0.0
        self._ema_churn_per_op = 0.0
        self._observations = 0
        self.grows = 0
        self.shrinks = 0

    def observe(self, operations: int, supersteps: int, churn: int) -> int:
        """Feed one applied window's logical outcome; returns the window
        size to use for the *next* window."""
        if operations <= 0:
            return self.window_size
        cfg = self.config
        supersteps_per_op = supersteps / operations
        churn_per_op = churn / operations
        if self._observations == 0:
            self._ema_supersteps_per_op = supersteps_per_op
            self._ema_churn_per_op = churn_per_op
        else:
            a = cfg.alpha
            self._ema_supersteps_per_op += a * (
                supersteps_per_op - self._ema_supersteps_per_op
            )
            self._ema_churn_per_op += a * (
                churn_per_op - self._ema_churn_per_op
            )
        self._observations += 1
        predicted = self._ema_supersteps_per_op * self.window_size
        if (supersteps > cfg.target_supersteps
                or churn_per_op > cfg.churn_threshold):
            # the window just blew its budget (or churn spiked): back off
            # multiplicatively before the next one compounds the damage
            shrunk = max(cfg.min_window, int(self.window_size * cfg.shrink))
            if shrunk < self.window_size:
                self.shrinks += 1
            self.window_size = shrunk
        elif predicted < cfg.target_supersteps * cfg.headroom:
            # comfortably under budget: amortize more barriers per window
            grown = min(
                cfg.max_window,
                max(self.window_size + 1,
                    int(self.window_size * cfg.growth)),
            )
            if grown > self.window_size:
                self.grows += 1
            self.window_size = grown
        return self.window_size

    # ------------------------------------------------------------------
    # crash-recovery snapshots (recorded in every WAL commit)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "w": self.window_size,
            "es": self._ema_supersteps_per_op,
            "ec": self._ema_churn_per_op,
            "n": self._observations,
            "g": self.grows,
            "s": self.shrinks,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        try:
            self.window_size = int(snapshot["w"])
            self._ema_supersteps_per_op = float(snapshot["es"])
            self._ema_churn_per_op = float(snapshot["ec"])
            self._observations = int(snapshot["n"])
            self.grows = int(snapshot["g"])
            self.shrinks = int(snapshot["s"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(
                f"malformed controller snapshot {snapshot!r}: {exc}"
            ) from exc

    def as_dict(self) -> Dict[str, Any]:
        """Human-facing stats (CLI / bench reporting)."""
        return {
            "window_size": self.window_size,
            "grows": self.grows,
            "shrinks": self.shrinks,
            "ema_supersteps_per_op": round(self._ema_supersteps_per_op, 4),
            "ema_churn_per_op": round(self._ema_churn_per_op, 4),
        }


class FixedWindowController(AdaptiveWindowController):
    """Degenerate controller: a constant window size (the paper's static
    ``b``).  Lets every serve code path take a controller without
    branching on "adaptive or not"."""

    def __init__(self, window_size: int):
        if window_size < 1:
            raise WorkloadError(
                f"window_size must be >= 1, got {window_size}"
            )
        super().__init__(WindowConfig(
            min_window=window_size, max_window=window_size,
            initial_window=window_size,
        ))

    def observe(self, operations: int, supersteps: int, churn: int) -> int:
        return self.window_size
