"""Admission control and backpressure for the ingestion edge.

The ingress queue (the streaming session's buffer, plus whatever is stuck
behind a failing window) is bounded by a **high watermark**.  What happens
to a submission that arrives above it is the admission *policy*:

``block``
    the producer is held while the service synchronously resolves pending
    windows (retry / bisect / quarantine, deadlines ignored) until the
    queue drains to the **low watermark** — overload becomes producer
    latency, no event is lost;
``shed``
    the event is dropped *before* it is sequenced or logged — it never
    existed as far as durability is concerned — and counted in the shed
    account;
``error``
    :class:`~repro.errors.BackpressureError` is raised to the producer,
    which must back off and retry.

The low watermark only matters to ``block`` (drain target: hysteresis so a
blocked producer is not re-blocked by its very next event).  Shedding and
rejection are deterministic functions of queue depth, so a seeded trace
produces a bit-reproducible shed account — which is how the CI soak can
assert "clean shed accounting" at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import BackpressureError, WorkloadError

POLICIES = ("block", "shed", "error")


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables for :class:`AdmissionController`."""

    policy: str = "block"
    high_watermark: int = 512
    low_watermark: int = 128

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise WorkloadError(
                f"admission policy must be one of {POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.high_watermark < 1:
            raise WorkloadError(
                f"high_watermark must be >= 1, got {self.high_watermark}"
            )
        if not 0 <= self.low_watermark <= self.high_watermark:
            raise WorkloadError(
                f"low_watermark must be in [0, high_watermark], got "
                f"{self.low_watermark} (high {self.high_watermark})"
            )


@dataclass
class AdmissionStats:
    """The shed account: every submission's fate, by outcome."""

    accepted: int = 0
    shed: int = 0
    rejected: int = 0
    blocked: int = 0  # submissions that had to drain the queue first

    def as_dict(self) -> Dict[str, int]:
        return {
            "accepted": self.accepted,
            "shed": self.shed,
            "rejected": self.rejected,
            "blocked": self.blocked,
        }


class AdmissionController:
    """Decides one submission's fate from the current queue depth."""

    def __init__(self, config: AdmissionConfig = AdmissionConfig()):
        self.config = config
        self.stats = AdmissionStats()

    def admit(self, pending: int) -> str:
        """Classify a submission given ``pending`` already-queued events.

        Returns ``"accept"`` (count it via :meth:`accepted`), ``"shed"``
        (already counted — drop the event), or ``"drain"`` (the ``block``
        policy: drain to the low watermark, then re-admit).  The ``error``
        policy raises instead of returning.
        """
        if pending < self.config.high_watermark:
            return "accept"
        if self.config.policy == "shed":
            self.stats.shed += 1
            return "shed"
        if self.config.policy == "error":
            self.stats.rejected += 1
            raise BackpressureError(pending, self.config.high_watermark)
        self.stats.blocked += 1
        return "drain"

    def accepted(self) -> None:
        self.stats.accepted += 1

    def drain_target(self) -> int:
        return self.config.low_watermark
