"""Epoch-consistent read path: snapshot registry + query engine.

The maintenance side of this repo keeps a near-maximum independent set
converged under a stream of edge updates; this module makes the *read*
side first-class.  Two pieces:

:class:`SnapshotRegistry` publishes an immutable, epoch-tagged view of
the maintained set at each committed window (the
:class:`~repro.serve.service.IngestionService` calls :meth:`publish`
right after every WAL commit).  Two backings, chosen automatically:

- **shared** — when the maintainer already runs the array-native sweep
  path over a published shared-memory frame (process runtime +
  ``representation="csr"``), the registry *pins* the live segment via
  :meth:`CSRPartition.pin_shared`: the frame becomes the epoch, readers
  map it zero-copy, the writer detaches and republishes the next barrier
  into a fresh segment, and the pinned segment is unlinked only when the
  last reader retires its pin.  Readers never block the writer; the
  writer never mutates a published epoch.
- **local** — for dict/inline maintainers the registry keeps private
  array copies: structure arrays are re-copied only when the CSR
  mirror's ``structure_version`` moved, the membership bitmap is rebuilt
  from ``independent_set()`` per epoch.

:class:`QueryEngine` answers queries against the newest snapshot:
point membership, numpy-vectorized batch lookups (thousands of point
queries per bitmap pass), k-hop neighbourhood set queries, and "why-not"
certificates — for a non-member ``v``, the blocking neighbour is the
minimum-``≺``-key in-set neighbour ranked below ``v`` (the exact vertex
Algorithm 2's early-break scan stops at; at a fixpoint one always
exists).  Every answer is tagged with the epoch it was served from, and
the engine accounts read latency (nearest-rank percentiles via
:func:`repro.util.percentile`) and ingress staleness (events admitted
but not yet visible at the answering epoch).

Consistency model: an epoch is a committed-window barrier snapshot, so
every query result is bit-identical to querying a maintainer restored to
that window's checkpoint — the property the read-path tests pin.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.graph.csr import CSRPartition, WorkerCSRView, numpy_available
from repro.util import percentile

try:  # optional at import time, like repro.graph.csr
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None


class EpochSnapshot:
    """One immutable, epoch-tagged view of graph structure + membership.

    ``ids``/``keys``/``indptr``/``nbr`` follow the CSR mirror's layout
    (see :mod:`repro.graph.csr`); ``in_`` is the membership bitmap.  For
    shared snapshots the arrays are zero-copy views of a pinned
    shared-memory segment; for local snapshots they are private copies.
    Lifecycle is refcounted by the owning registry: the registry holds
    one reference until the snapshot is superseded, readers take more
    via :meth:`SnapshotRegistry.acquire`.
    """

    __slots__ = (
        "epoch", "watermark", "shared", "segment", "meta",
        "ids", "keys", "indptr", "nbr", "in_", "refs", "_view",
    )

    def __init__(self, epoch: int, watermark: int, shared: bool,
                 segment: Optional[str], meta, ids, keys, indptr, nbr, in_,
                 view=None):
        self.epoch = epoch
        self.watermark = watermark
        self.shared = shared
        self.segment = segment
        self.meta = meta
        self.ids = ids
        self.keys = keys
        self.indptr = indptr
        self.nbr = nbr
        self.in_ = in_
        self.refs = 0
        self._view = view

    @property
    def num_vertices(self) -> int:
        return int(self.ids.size)

    @property
    def set_size(self) -> int:
        return int(np.count_nonzero(self.in_))

    def row_of(self, vertex: int) -> Optional[int]:
        """Row index of ``vertex`` in this epoch, or None if absent."""
        ids = self.ids
        if not ids.size:
            return None
        row = int(np.searchsorted(ids, vertex))
        if row >= ids.size or int(ids[row]) != vertex:
            return None
        return row

    def members(self) -> List[int]:
        """The maintained set at this epoch, ascending."""
        return self.ids[self.in_.astype(np.bool_)].tolist()


class SnapshotRegistry:
    """Publishes and refcounts epoch-tagged snapshots of a maintainer.

    Parameters
    ----------
    maintainer:
        Anything with the :class:`~repro.core.doimis.DOIMISMaintainer`
        read surface (``dgraph``, ``independent_set()``).
    frontier_fn:
        Zero-argument callable returning the ingress frontier (the last
        *accepted* sequence id) — staleness of a snapshot is
        ``frontier - snapshot.watermark``, the number of admitted events
        not yet visible to readers.  ``None`` reports staleness 0.
    """

    def __init__(self, maintainer,
                 frontier_fn: Optional[Callable[[], int]] = None):
        if not numpy_available():
            raise QueryError(
                "the snapshot read path requires numpy, which is not "
                "installed"
            )
        self._maintainer = maintainer
        self._frontier_fn = frontier_fn
        self._part: Optional[CSRPartition] = None
        self._latest: Optional[EpochSnapshot] = None
        self._closed = False
        # local-mode structure cache: private copies remade only when the
        # mirror's structure_version moves
        self._struct_version = -1
        self._struct: Optional[Tuple[Any, Any, Any, Any]] = None
        self.epochs_published = 0
        #: every published (epoch, watermark) pair, in publish order —
        #: the monotonicity witness the chaos tests assert over
        self.history: List[Tuple[int, int]] = []

    # -- publication -----------------------------------------------------
    def _partition(self) -> CSRPartition:
        part = self._part
        if part is None:
            part = self._part = CSRPartition.attach(self._maintainer.dgraph)
        return part

    def publish(self, epoch: Optional[int] = None,
                watermark: int = 0) -> EpochSnapshot:
        """Publish the maintainer's current committed state as an epoch.

        ``epoch`` must be strictly greater than the last published one
        (defaults to a simple counter); ``watermark`` is the commit
        watermark the epoch corresponds to.  The previous epoch loses the
        registry's reference and is reclaimed once its last reader
        releases it — publication never blocks on readers.
        """
        if self._closed:
            raise QueryError("snapshot registry is closed")
        latest = self._latest
        if epoch is None:
            epoch = latest.epoch + 1 if latest is not None else 0
        if latest is not None and epoch <= latest.epoch:
            raise QueryError(
                f"epochs must be strictly monotonic: {epoch} <= "
                f"already-published {latest.epoch}"
            )
        part = self._partition()
        part.ensure()
        if part._shm is not None and part._bitmap_in_shm:
            snapshot = self._publish_shared(part, epoch, watermark)
        else:
            snapshot = self._publish_local(part, epoch, watermark)
        snapshot.refs = 1  # the registry's own reference
        self._latest = snapshot
        self.epochs_published += 1
        self.history.append((epoch, watermark))
        if latest is not None:
            self._release(latest)
        return snapshot

    def _publish_shared(self, part: CSRPartition, epoch: int,
                        watermark: int) -> EpochSnapshot:
        meta = part.pin_shared()
        view = WorkerCSRView(meta)
        return EpochSnapshot(
            epoch, watermark, True, meta[0], meta,
            view.ids, view.keys, view.indptr, view.nbr, view.in_,
            view=view,
        )

    def _publish_local(self, part: CSRPartition, epoch: int,
                       watermark: int) -> EpochSnapshot:
        if part.structure_version != self._struct_version:
            self._struct = (
                np.array(part.ids), np.array(part.keys),
                np.array(part.indptr), np.array(part.nbr),
            )
            self._struct_version = part.structure_version
        ids, keys, indptr, nbr = self._struct
        members = sorted(self._maintainer.independent_set())
        in_ = np.zeros(ids.size, np.bool_)
        if members:
            rows = np.searchsorted(
                ids, np.fromiter(members, np.int64, count=len(members))
            )
            in_[rows] = True
        return EpochSnapshot(
            epoch, watermark, False, None, None,
            ids, keys, indptr, nbr, in_,
        )

    # -- reader lifecycle ------------------------------------------------
    def latest(self) -> Optional[EpochSnapshot]:
        """The newest published snapshot (not refcounted — single-threaded
        in-process readers query it directly between publishes)."""
        return self._latest

    def acquire(self) -> EpochSnapshot:
        """Take a reference on the newest snapshot; pair with
        :meth:`release`.  A reader holding an acquired epoch keeps its
        (consistent) view even after newer epochs are published."""
        snapshot = self._latest
        if snapshot is None:
            raise QueryError("no epoch published yet")
        snapshot.refs += 1
        if snapshot.shared:
            self._partition().pin(snapshot.segment)
        return snapshot

    def release(self, snapshot: EpochSnapshot) -> None:
        """Drop a reference taken by :meth:`acquire`."""
        self._release(snapshot)

    def _release(self, snapshot: EpochSnapshot) -> None:
        if snapshot.refs <= 0:
            raise QueryError(
                f"epoch {snapshot.epoch} released more times than acquired"
            )
        snapshot.refs -= 1
        if snapshot.shared:
            # the partition's pin count mirrors the snapshot's refcount;
            # the last retire unlinks the segment
            self._partition().retire(snapshot.segment)
        if snapshot.refs == 0 and snapshot._view is not None:
            view = snapshot._view
            snapshot._view = None
            view.close()

    def staleness(self, snapshot: Optional[EpochSnapshot] = None) -> int:
        """Admitted-but-invisible event count at ``snapshot`` (latest by
        default): the ingress frontier minus the snapshot watermark."""
        if snapshot is None:
            snapshot = self._latest
        if snapshot is None or self._frontier_fn is None:
            return 0
        return max(0, int(self._frontier_fn()) - snapshot.watermark)

    def close(self) -> None:
        """Drop the registry's reference on the newest epoch.  Readers
        holding acquired epochs keep them until they release."""
        if self._closed:
            return
        self._closed = True
        latest = self._latest
        self._latest = None
        if latest is not None:
            self._release(latest)


class QueryEngine:
    """Answers membership queries against the registry's newest epoch.

    Single-threaded like everything in this repo: each call fetches the
    newest snapshot, so answers always come from the last committed
    window.  The engine keeps deterministic read counters (what the bench
    pins) and wall-clock latencies (what the bench trends).
    """

    def __init__(self, registry: SnapshotRegistry):
        self._registry = registry
        self.point_queries = 0
        self.batch_queries = 0
        self.batch_vertices = 0
        self.max_batch_size = 0
        self.neighborhood_queries = 0
        self.why_not_queries = 0
        self.staleness_max = 0
        self.staleness_sum = 0
        self.staleness_samples = 0
        self._latencies: List[float] = []

    # -- bookkeeping -----------------------------------------------------
    def _snapshot(self) -> EpochSnapshot:
        snapshot = self._registry.latest()
        if snapshot is None:
            raise QueryError("no epoch published yet")
        staleness = self._registry.staleness(snapshot)
        if staleness > self.staleness_max:
            self.staleness_max = staleness
        self.staleness_sum += staleness
        self.staleness_samples += 1
        return snapshot

    @property
    def reads_served(self) -> int:
        """Individual vertex answers served, across every query kind."""
        return (self.point_queries + self.batch_vertices
                + self.neighborhood_queries + self.why_not_queries)

    # -- queries ---------------------------------------------------------
    def point(self, vertex: int) -> Dict[str, Any]:
        """Is ``vertex`` in the maintained set at the newest epoch?

        Unknown vertices answer ``False`` (they are not in the set),
        matching ``maintainer.contains`` on a restored checkpoint.
        """
        started = time.perf_counter()
        snapshot = self._snapshot()
        row = snapshot.row_of(vertex)
        member = bool(snapshot.in_[row]) if row is not None else False
        self.point_queries += 1
        self._latencies.append(time.perf_counter() - started)
        return {
            "vertex": vertex, "member": member,
            "epoch": snapshot.epoch, "watermark": snapshot.watermark,
        }

    def batch(self, vertices, runtime=None) -> Dict[str, Any]:
        """Vectorized point membership for many vertices in one pass.

        One ``searchsorted`` + one gather answers the whole batch against
        the epoch bitmap — no per-vertex Python work, no pickling on the
        in-process path.  With ``runtime`` (a
        :class:`~repro.runtime.parallel.ParallelRuntime`) and a shared
        snapshot, the gather is offloaded to a worker process that maps
        the pinned segment zero-copy.
        """
        started = time.perf_counter()
        snapshot = self._snapshot()
        count = len(vertices)
        members = [False] * count
        if count and snapshot.ids.size:
            ids = snapshot.ids
            wanted = np.fromiter(vertices, np.int64, count=count)
            rows = np.minimum(np.searchsorted(ids, wanted), ids.size - 1)
            valid = ids[rows] == wanted
            if runtime is not None and snapshot.shared:
                hits = runtime.read_membership(
                    snapshot.meta, rows[valid].astype(np.int32)
                )
                out = np.zeros(count, np.bool_)
                out[np.flatnonzero(valid)] = hits
            else:
                out = np.where(valid, snapshot.in_[rows], False)
            members = out.tolist()
        self.batch_queries += 1
        self.batch_vertices += count
        if count > self.max_batch_size:
            self.max_batch_size = count
        self._latencies.append(time.perf_counter() - started)
        return {
            "vertices": list(vertices), "members": members,
            "epoch": snapshot.epoch, "watermark": snapshot.watermark,
        }

    def neighborhood(self, vertex: int, hops: int = 1) -> Dict[str, Any]:
        """The maintained set restricted to ``<= hops`` of ``vertex``
        (including ``vertex`` itself when it is a member), ascending."""
        if hops < 0:
            raise QueryError(f"hops must be >= 0, got {hops}")
        started = time.perf_counter()
        snapshot = self._snapshot()
        row = snapshot.row_of(vertex)
        if row is None:
            raise QueryError(
                f"vertex {vertex} is not in the graph at epoch "
                f"{snapshot.epoch}"
            )
        indptr = snapshot.indptr
        visited = np.zeros(snapshot.ids.size, np.bool_)
        visited[row] = True
        frontier = np.array([row], np.int64)
        for _ in range(hops):
            if not frontier.size:
                break
            starts = indptr[frontier]
            lens = indptr[frontier + 1] - starts
            total = int(lens.sum())
            if not total:
                break
            owners = np.repeat(
                np.arange(frontier.size, dtype=np.int64), lens
            )
            offs = np.zeros(frontier.size, np.int64)
            np.cumsum(lens[:-1], out=offs[1:])
            flat = (np.arange(total, dtype=np.int64)
                    - offs[owners] + starts[owners])
            nxt = np.unique(snapshot.nbr[flat])
            nxt = nxt[~visited[nxt]]
            visited[nxt] = True
            frontier = nxt
        members = snapshot.ids[visited & snapshot.in_.astype(np.bool_)]
        self.neighborhood_queries += 1
        self._latencies.append(time.perf_counter() - started)
        return {
            "vertex": vertex, "hops": hops, "members": members.tolist(),
            "epoch": snapshot.epoch, "watermark": snapshot.watermark,
        }

    def why_not(self, vertex: int) -> Dict[str, Any]:
        """Membership certificate for ``vertex`` at the newest epoch.

        For a member the blocker is ``None`` (it is in the set because no
        ``≺``-smaller neighbour is).  For a non-member the blocker is the
        minimum-key in-set neighbour ranked below it — exactly where the
        OIMIS early-break scan stopped, so the certificate is checkable:
        the blocker is adjacent, in the set, and ``≺``-smaller.
        """
        started = time.perf_counter()
        snapshot = self._snapshot()
        row = snapshot.row_of(vertex)
        if row is None:
            raise QueryError(
                f"vertex {vertex} is not in the graph at epoch "
                f"{snapshot.epoch}"
            )
        member = bool(snapshot.in_[row])
        blocker: Optional[int] = None
        if not member:
            nb = snapshot.nbr[
                int(snapshot.indptr[row]):int(snapshot.indptr[row + 1])
            ]
            keys = snapshot.keys
            cand = nb[(keys[nb] < keys[row])
                      & snapshot.in_[nb].astype(np.bool_)]
            if cand.size:
                blocker = int(snapshot.ids[cand[np.argmin(keys[cand])]])
        self.why_not_queries += 1
        self._latencies.append(time.perf_counter() - started)
        return {
            "vertex": vertex, "member": member, "blocker": blocker,
            "epoch": snapshot.epoch, "watermark": snapshot.watermark,
        }

    # -- reporting -------------------------------------------------------
    def logical_stats(self) -> Dict[str, int]:
        """Deterministic read counters (no wall-clock numbers): what a
        bench baseline can pin bit-identically."""
        return {
            "reads_served": self.reads_served,
            "point_queries": self.point_queries,
            "batch_queries": self.batch_queries,
            "batch_vertices": self.batch_vertices,
            "max_batch_size": self.max_batch_size,
            "neighborhood_queries": self.neighborhood_queries,
            "why_not_queries": self.why_not_queries,
            "epochs_published": self._registry.epochs_published,
            "staleness_max": self.staleness_max,
            "staleness_sum": self.staleness_sum,
            "staleness_samples": self.staleness_samples,
        }

    def read_stats(self) -> Dict[str, Any]:
        """Everything :meth:`logical_stats` has, plus the epoch frontier
        and nearest-rank read-latency percentiles (milliseconds)."""
        stats: Dict[str, Any] = dict(self.logical_stats())
        latest = self._registry.latest()
        if latest is not None:
            stats["epoch"], stats["watermark"] = (
                latest.epoch, latest.watermark,
            )
        elif self._registry.history:
            # the registry may already be closed (stats read after
            # teardown) — the publish history still names the final epoch
            stats["epoch"], stats["watermark"] = self._registry.history[-1]
        else:
            stats["epoch"] = stats["watermark"] = None
        lat = sorted(self._latencies)
        for tag, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            stats[f"latency_{tag}_ms"] = round(percentile(lat, q) * 1e3, 6)
        total = sum(lat)
        stats["reads_per_s"] = (
            round(self.reads_served / total, 3) if total > 0 else 0.0
        )
        return stats
