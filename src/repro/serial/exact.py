"""Exact maximum independent set via branch-and-bound (small graphs).

The paper's related work (§VIII-A) surveys exact MIS solvers built on
branch-and-bound with reductions; this module provides one so the test
suite and quality studies can measure *true* approximation ratios of
greedy / ARW / reducing–peeling / OIMIS on graphs small enough to solve
exactly (≲ 60 vertices comfortably).

The solver uses the standard ingredients:

- **reductions** before branching: degree-0 (take), degree-1 (take the
  pendant — always safe for *some* optimum), domination is implied by the
  degree-1 rule at this scale;
- **branching** on a maximum-degree vertex ``v``: either ``v`` is excluded,
  or ``v`` is included and ``N[v]`` removed;
- **bounds**: a greedy clique-cover upper bound prunes branches that cannot
  beat the incumbent.

Exponential in the worst case by nature (the problem is NP-hard) — the
``node_budget`` turns pathological inputs into a loud
:class:`~repro.errors.ReproError` instead of a hang.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import ReproError
from repro.graph.dynamic_graph import DynamicGraph
from repro.serial.greedy import greedy_mis


class _Search:
    def __init__(self, graph: DynamicGraph, node_budget: int):
        self.graph = graph
        self.node_budget = node_budget
        self.nodes_visited = 0
        seed = greedy_mis(graph)
        self.best: Set[int] = set(seed)

    # -- bound: greedy clique cover ------------------------------------
    def upper_bound(self, live: Set[int]) -> int:
        """Number of cliques in a greedy clique cover of ``live``.

        Any independent set takes at most one vertex per clique, so the
        cover size bounds the MIS size from above.
        """
        remaining = sorted(live, key=lambda u: -len(self.graph.neighbors(u) & live))
        assigned: Dict[int, int] = {}
        cliques: List[Set[int]] = []
        for u in remaining:
            nbrs = self.graph.neighbors(u)
            for idx, clique in enumerate(cliques):
                if clique <= nbrs:
                    clique.add(u)
                    assigned[u] = idx
                    break
            else:
                cliques.append({u})
                assigned[u] = len(cliques) - 1
        return len(cliques)

    # -- reductions ------------------------------------------------------
    def reduce(self, live: Set[int], chosen: Set[int]) -> bool:
        """Apply degree-0/1 rules exhaustively; returns False on no-op."""
        progress = False
        changed = True
        while changed:
            changed = False
            for u in sorted(live):
                if u not in live:
                    continue  # removed earlier in this pass
                degree = sum(1 for v in self.graph.neighbors(u) if v in live)
                if degree == 0:
                    chosen.add(u)
                    live.discard(u)
                    changed = progress = True
                elif degree == 1:
                    # exactly one live neighbour exists, so order is moot
                    (nbr,) = (v for v in self.graph.neighbors(u) if v in live)  # repro-lint: disable=D1
                    chosen.add(u)
                    live.discard(u)
                    live.discard(nbr)
                    changed = progress = True
        return progress

    # -- branch-and-bound ---------------------------------------------------
    def solve(self, live: Set[int], chosen: Set[int]) -> None:
        self.nodes_visited += 1
        if self.nodes_visited > self.node_budget:
            raise ReproError(
                f"exact MIS search exceeded its node budget ({self.node_budget}); "
                "the input is too large/dense for exact solving"
            )
        live = set(live)
        chosen = set(chosen)
        self.reduce(live, chosen)
        if not live:
            if len(chosen) > len(self.best):
                self.best = chosen
            return
        if len(chosen) + self.upper_bound(live) <= len(self.best):
            return  # pruned
        # branch on a maximum-degree live vertex
        pivot = max(live, key=lambda u: (
            sum(1 for v in self.graph.neighbors(u) if v in live), -u
        ))
        # include pivot
        with_pivot = live - {pivot} - self.graph.neighbors(pivot)
        self.solve(with_pivot, chosen | {pivot})
        # exclude pivot
        self.solve(live - {pivot}, chosen)


def exact_mis(graph: DynamicGraph, node_budget: int = 2_000_000) -> Set[int]:
    """An exact maximum independent set of ``graph``.

    Raises :class:`~repro.errors.ReproError` if the branch-and-bound tree
    exceeds ``node_budget`` nodes.
    """
    if graph.num_vertices == 0:
        return set()
    search = _Search(graph, node_budget)
    search.solve(set(graph.vertices()), set())
    return set(search.best)


def independence_number(graph: DynamicGraph, node_budget: int = 2_000_000) -> int:
    """α(G): the size of a maximum independent set."""
    return len(exact_mis(graph, node_budget=node_budget))


def approximation_ratio(
    graph: DynamicGraph, candidate: Set[int], node_budget: int = 2_000_000
) -> float:
    """``|candidate| / α(G)`` — the true quality of an approximate set."""
    alpha = independence_number(graph, node_budget=node_budget)
    if alpha == 0:
        return 1.0
    return len(candidate) / alpha
