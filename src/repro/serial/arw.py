"""ARW — Andrade–Resende–Werneck fast local search for MIS.

The paper uses ARW as the static quality reference in Table IV ("the static
1-swap independent set algorithm ARW adopted by DTSwap").  This module
implements the core of ARW's iterated local search:

- start from a maximal independent set (degree-order greedy by default);
- repeatedly apply **(1,2)-swaps** ("two-improvements"): remove one solution
  vertex and insert two of its *free* neighbours (neighbours whose only
  solution neighbour is the removed vertex and which are mutually
  non-adjacent), growing the set by one each time;
- between improvement rounds, insert any free vertices directly.

The implementation maintains per-vertex *tightness* (number of solution
neighbours) so candidate checks are O(deg); a work queue holds vertices
whose neighbourhood changed.  With ``perturbations > 0`` it runs ARW's
iterated variant: force a random non-solution vertex in, repair, keep the
best solution seen (deterministic under ``seed``).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.serial.greedy import greedy_mis
from repro.serial.memory_model import ARW_MODEL


class _Solution:
    """An independent set with tightness counters for O(deg) updates."""

    def __init__(self, graph: DynamicGraph, members: Iterable[int]):
        self.graph = graph
        self.members: Set[int] = set(members)
        self.tight: Dict[int, int] = {}
        for u in graph.vertices():
            self.tight[u] = sum(1 for v in graph.neighbors(u) if v in self.members)

    def insert(self, u: int) -> None:
        self.members.add(u)
        for v in self.graph.neighbors(u):
            self.tight[v] += 1

    def remove(self, u: int) -> None:
        self.members.remove(u)
        for v in self.graph.neighbors(u):
            self.tight[v] -= 1

    def is_free(self, u: int) -> bool:
        """Insertable right now: not in the set, no solution neighbours."""
        return u not in self.members and self.tight[u] == 0

    def free_vertices(self) -> List[int]:
        return sorted(
            u for u in self.graph.vertices() if self.is_free(u)
        )


def _two_improvement(solution: _Solution, x: int) -> Optional[Tuple[int, int]]:
    """Find ``(u, w)``: non-adjacent neighbours of ``x`` tight only to ``x``."""
    graph = solution.graph
    candidates = [
        v
        for v in sorted(graph.neighbors(x))
        if v not in solution.members and solution.tight[v] == 1
    ]
    for i, u in enumerate(candidates):
        u_nbrs = graph.neighbors(u)
        for w in candidates[i + 1:]:
            if w not in u_nbrs:
                return (u, w)
    return None


def _local_search_to_optimum(solution: _Solution) -> None:
    """Apply free insertions and (1,2)-swaps until locally optimal."""
    # Free insertions first (they can only help and may enable swaps).
    for u in solution.free_vertices():
        if solution.is_free(u):
            solution.insert(u)
    queue = sorted(solution.members)
    queued = set(queue)
    while queue:
        x = queue.pop()
        queued.discard(x)
        if x not in solution.members:
            continue
        found = _two_improvement(solution, x)
        if found is None:
            continue
        u, w = found
        solution.remove(x)
        solution.insert(u)
        solution.insert(w)
        # Newly insertable vertices may exist near the change.
        for y in sorted(solution.graph.neighbors(x)):
            if solution.is_free(y):
                solution.insert(y)
        # Re-examine solution vertices around the modification.
        for moved in (u, w):
            for y in sorted(solution.graph.neighbors(moved)):
                for z in sorted(solution.graph.neighbors(y)):
                    if z in solution.members and z not in queued:
                        queue.append(z)
                        queued.add(z)


def arw_mis(
    graph: DynamicGraph,
    initial: Optional[Iterable[int]] = None,
    perturbations: int = 0,
    seed: int = 0,
    memory_budget_mb: Optional[float] = None,
) -> Set[int]:
    """Compute a near-maximum independent set with ARW local search.

    Parameters
    ----------
    initial:
        Starting independent set (defaults to degree-order greedy).
    perturbations:
        Number of iterated-local-search perturbation rounds (0 = plain
        local search to the first local optimum, which is what Table IV's
        ARW column needs at our scale).
    memory_budget_mb:
        Optional modelled memory budget; raises
        :class:`~repro.errors.MemoryBudgetExceeded` when the modelled
        resident set exceeds it (reproduces Table IV's OOM entries).
    """
    ARW_MODEL.check(graph, memory_budget_mb)
    members = set(initial) if initial is not None else greedy_mis(graph)
    solution = _Solution(graph, members)
    _local_search_to_optimum(solution)
    if perturbations <= 0:
        return set(solution.members)

    rng = random.Random(seed)
    best = set(solution.members)
    outside = sorted(set(graph.vertices()) - solution.members)
    for _ in range(perturbations):
        if not outside:
            break
        forced = rng.choice(outside)
        # Force `forced` in: evict its solution neighbours.
        for v in list(graph.neighbors(forced)):
            if v in solution.members:
                solution.remove(v)
        if forced not in solution.members:
            solution.insert(forced)
        _local_search_to_optimum(solution)
        if len(solution.members) > len(best):
            best = set(solution.members)
        outside = sorted(set(graph.vertices()) - solution.members)
    if len(best) > len(solution.members):
        return best
    return set(solution.members)
