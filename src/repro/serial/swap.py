"""Swap-based dynamic MIS maintenance (Gao et al., ICDE 2022).

Gao et al. maintain a near-maximum independent set with an index of
*swaps* — local exchanges that grow the solution:

- a **one-swap** removes one solution vertex and inserts two free
  neighbours (the (1,2)-swap ARW uses);
- a **two-swap** removes a pair of solution vertices and inserts three
  vertices tight only to that pair (a (2,3)-swap), which finds improvements
  one-swaps cannot.

``DOSwap`` applies one-swaps, ``DTSwap`` also applies two-swaps (its sets
are what Table IV compares against).  The ``Lazy*`` variants keep the swap
index lazily — here: improvements are only searched in the update's affected
region, without transitive propagation — trading a sliver of quality for
much less work per update, exactly the trade the paper reports (Table IV
shows LazyDTSwap matching DTSwap's sizes while scaling one dataset class
further before OOM).

The implementation indexes per-vertex *tightness* (number of solution
neighbours), kept in lock-step with both solution moves and graph updates,
so swap candidacy tests are O(1) per neighbour — this is the in-memory
"swap index" whose footprint the memory model charges
(:mod:`repro.serial.memory_model`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import EdgeDeletion, EdgeInsertion, EdgeUpdate
from repro.serial.greedy import greedy_mis
from repro.serial.memory_model import LAZY_SWAP_MODEL, SWAP_MODEL, MemoryModel

#: candidate-pool bound for the cubic (2,3)-swap search; pools this large
#: essentially always contain an independent triple already
_TWO_SWAP_POOL_CAP = 24
#: bound on two-swap partners examined per solution vertex
_PARTNER_CAP = 12
#: bound on improvement-queue pops per update (eager variants); real
#: implementations bound their swap search similarly — quality impact is
#: negligible because improvements cluster around the update
_IMPROVE_POP_CAP = 400


class _SwapEngine:
    """Solution state + tightness index + swap searches for all variants."""

    def __init__(self, graph: DynamicGraph):
        self.graph = graph
        self.members: Set[int] = set()
        self.tight: Dict[int, int] = {u: 0 for u in graph.vertices()}
        for u in greedy_mis(graph):
            self.add_member(u)

    # -- solution mutation (keeps the tightness index consistent) ---------
    def add_member(self, u: int) -> None:
        self.members.add(u)
        for v in sorted(self.graph.neighbors(u)):
            self.tight[v] = self.tight.get(v, 0) + 1

    def remove_member(self, u: int) -> None:
        self.members.discard(u)
        for v in sorted(self.graph.neighbors(u)):
            self.tight[v] = self.tight.get(v, 0) - 1

    # -- graph mutation hooks ---------------------------------------------
    def on_edge_added(self, u: int, v: int) -> None:
        self.tight.setdefault(u, 0)
        self.tight.setdefault(v, 0)
        if u in self.members:
            self.tight[v] += 1
        if v in self.members:
            self.tight[u] += 1

    def on_edge_removed(self, u: int, v: int) -> None:
        if u in self.members:
            self.tight[v] -= 1
        if v in self.members:
            self.tight[u] -= 1

    # -- predicates ----------------------------------------------------------
    def is_free(self, u: int) -> bool:
        return u not in self.members and self.tight.get(u, 0) == 0

    def add_free(self, candidates: Iterable[int]) -> List[int]:
        added = []
        for u in sorted(set(candidates)):
            if self.graph.has_vertex(u) and self.is_free(u):
                self.add_member(u)
                added.append(u)
        return added

    # -- swap searches ---------------------------------------------------------
    def one_swap(self, x: int) -> Optional[Tuple[int, int]]:
        """A (1,2)-swap at solution vertex ``x``, if one exists."""
        if x not in self.members:
            return None
        candidates = [
            v
            for v in sorted(self.graph.neighbors(x))
            if v not in self.members and self.tight[v] == 1
        ]
        for i, a in enumerate(candidates):
            a_nbrs = self.graph.neighbors(a)
            for b in candidates[i + 1:]:
                if b not in a_nbrs:
                    return (a, b)
        return None

    def apply_one_swap(self, x: int, pair: Tuple[int, int]) -> List[int]:
        a, b = pair
        self.remove_member(x)
        self.add_member(a)
        self.add_member(b)
        return self.add_free(self.graph.neighbors(x)) + [a, b]

    def two_swap(self, x: int, y: int) -> Optional[Tuple[int, int, int]]:
        """A (2,3)-swap removing solution vertices ``x, y``, if one exists.

        Candidates are non-solution vertices whose solution neighbours all
        lie in ``{x, y}`` (an O(1) tightness test); three mutually
        non-adjacent candidates grow the set by one.
        """
        if x not in self.members or y not in self.members or x == y:
            return None
        x_nbrs = self.graph.neighbors(x)
        y_nbrs = self.graph.neighbors(y)
        pool: List[int] = []
        for v in sorted(x_nbrs | y_nbrs):
            if v in self.members:
                continue
            within = (1 if v in x_nbrs else 0) + (1 if v in y_nbrs else 0)
            if self.tight[v] == within:
                pool.append(v)
                if len(pool) >= _TWO_SWAP_POOL_CAP:
                    break
        for i, a in enumerate(pool):
            a_nbrs = self.graph.neighbors(a)
            for j in range(i + 1, len(pool)):
                b = pool[j]
                if b in a_nbrs:
                    continue
                b_nbrs = self.graph.neighbors(b)
                for c in pool[j + 1:]:
                    if c not in a_nbrs and c not in b_nbrs:
                        return (a, b, c)
        return None

    def apply_two_swap(self, x: int, y: int, triple: Tuple[int, int, int]) -> List[int]:
        self.remove_member(x)
        self.remove_member(y)
        for v in triple:
            self.add_member(v)
        touched = list(triple)
        # x (resp. y) itself can be free when the whole triple neighbours
        # only the other removed vertex — re-adding it is a bonus +1.
        touched += self.add_free({x, y})
        touched += self.add_free(self.graph.neighbors(x))
        touched += self.add_free(self.graph.neighbors(y))
        return touched

    def solution_partners(self, x: int) -> List[int]:
        """Solution vertices within two hops of ``x`` (two-swap partners),
        bounded to :data:`_PARTNER_CAP` for tractability."""
        partners: Set[int] = set()
        for v in sorted(self.graph.neighbors(x)):
            for y in self.graph.neighbors(v):
                if y != x and y in self.members:
                    partners.add(y)
            if len(partners) >= _PARTNER_CAP:
                break
        return sorted(partners)[:_PARTNER_CAP]


class DOSwap:
    """One-swap maintenance (eager: improvements propagate transitively)."""

    name = "DOSwap"
    _memory: MemoryModel = SWAP_MODEL
    _use_two_swaps = False
    _lazy = False

    def __init__(self, graph: DynamicGraph, memory_budget_mb: Optional[float] = None):
        self._memory.check(graph, memory_budget_mb)
        self._budget = memory_budget_mb
        self._engine = _SwapEngine(graph)
        self.updates_applied = 0
        self._improve(set(graph.vertices()))

    # -- public interface ---------------------------------------------------
    @property
    def graph(self) -> DynamicGraph:
        return self._engine.graph

    def independent_set(self) -> Set[int]:
        return set(self._engine.members)

    def __len__(self) -> int:
        return len(self._engine.members)

    def apply(self, op: EdgeUpdate) -> None:
        if isinstance(op, EdgeInsertion):
            self.insert_edge(op.u, op.v)
        elif isinstance(op, EdgeDeletion):
            self.delete_edge(op.u, op.v)
        else:
            raise TypeError(f"unsupported operation {op!r}")

    def apply_batch(self, operations: Sequence[EdgeUpdate]) -> None:
        for op in operations:
            self.apply(op)

    def apply_stream(self, operations: Iterable[EdgeUpdate], batch_size: int = 1) -> None:
        for op in operations:
            self.apply(op)

    def insert_edge(self, u: int, v: int) -> None:
        engine = self._engine
        graph = engine.graph
        for w in (u, v):
            if not graph.has_vertex(w):
                graph.add_vertex(w)
        graph.add_edge(u, v)
        engine.on_edge_added(u, v)
        self._memory.check(graph, self._budget)
        if u in engine.members and v in engine.members:
            # Evict the endpoint whose eviction loses less (more repairable).
            evict = max((u, v), key=lambda w: (graph.degree(w), w))
            engine.remove_member(evict)
            engine.add_free(graph.neighbors(evict))
        self._improve({u, v})
        self.updates_applied += 1

    def delete_edge(self, u: int, v: int) -> None:
        engine = self._engine
        engine.graph.remove_edge(u, v)
        engine.on_edge_removed(u, v)
        engine.add_free((u, v))
        self._improve({u, v})
        self.updates_applied += 1

    # -- improvement loop -----------------------------------------------------
    def _improve(self, seeds: Set[int]) -> None:
        engine = self._engine
        graph = engine.graph
        region: Set[int] = set()
        for s in seeds:
            if graph.has_vertex(s):
                region.add(s)
                region.update(graph.neighbors(s))
        queue = sorted(v for v in region if v in engine.members)
        queued = set(queue)
        pops = 0
        while queue:
            if pops >= _IMPROVE_POP_CAP:
                break
            pops += 1
            x = queue.pop()
            queued.discard(x)
            if x not in engine.members:
                continue
            pair = engine.one_swap(x)
            touched: List[int] = []
            if pair is not None:
                touched = engine.apply_one_swap(x, pair)
            elif self._use_two_swaps:
                for y in engine.solution_partners(x):
                    triple = engine.two_swap(x, y)
                    if triple is not None:
                        touched = engine.apply_two_swap(x, y, triple)
                        break
            if touched and not self._lazy:
                for t in touched:
                    if not graph.has_vertex(t):
                        continue
                    for y in sorted(graph.neighbors(t)):
                        if y in engine.members and y not in queued:
                            queue.append(y)
                            queued.add(y)


class DTSwap(DOSwap):
    """One- and two-swap maintenance (the paper's strongest swap variant)."""

    name = "DTSwap"
    _use_two_swaps = True


class LazyDOSwap(DOSwap):
    """One-swap maintenance with a lazy index (affected region only)."""

    name = "LazyDOSwap"
    _memory = LAZY_SWAP_MODEL
    _lazy = True


class LazyDTSwap(DTSwap):
    """One-/two-swap maintenance with a lazy index (affected region only)."""

    name = "LazyDTSwap"
    _memory = LAZY_SWAP_MODEL
    _lazy = True
