"""Single-machine comparators used in the paper's evaluation."""

from repro.serial.arw import arw_mis
from repro.serial.degeneracy import DGOne, DGTwo, degeneracy, degeneracy_order
from repro.serial.greedy import greedy_mis, greedy_mis_arbitrary_order, luby_mis
from repro.serial.memory_model import (
    MemoryModel,
    SCALED_SINGLE_MACHINE_BUDGET_MB,
)
from repro.serial.exact import approximation_ratio, exact_mis, independence_number
from repro.serial.reducing_peeling import reducing_peeling_mis
from repro.serial.swap import DOSwap, DTSwap, LazyDOSwap, LazyDTSwap

__all__ = [
    "DGOne",
    "DGTwo",
    "DOSwap",
    "DTSwap",
    "LazyDOSwap",
    "LazyDTSwap",
    "MemoryModel",
    "SCALED_SINGLE_MACHINE_BUDGET_MB",
    "approximation_ratio",
    "arw_mis",
    "exact_mis",
    "independence_number",
    "degeneracy",
    "degeneracy_order",
    "greedy_mis",
    "greedy_mis_arbitrary_order",
    "luby_mis",
    "reducing_peeling_mis",
]
