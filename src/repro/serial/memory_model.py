"""Memory modelling for the centralized (single-machine) comparators.

The paper's Table IV shows the centralized dynamic algorithms running out of
memory on the large graphs — DGTwo already on SK-2005, DTSwap on UK-2006,
ARW and LazyDTSwap on UK-2014 — because their auxiliary structures
(degeneracy graph, swap index) are resident on one 64 GB machine.  Our
stand-in graphs are thousands of vertices, so the absolute failure cannot
reproduce; instead each serial algorithm *models* its resident set as

    ``bytes = per_vertex * n + per_edge * m``

with per-algorithm constants reflecting their auxiliary structures, and a
caller-supplied budget (scaled the same way the datasets are scaled) trips
:class:`~repro.errors.MemoryBudgetExceeded` on the graphs where the paper
reports OOM.  The benchmark harness wires the scaled budget; library users
get unlimited memory by default.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MemoryBudgetExceeded
from repro.graph.dynamic_graph import DynamicGraph


class MemoryModel:
    """Modelled resident set of one centralized algorithm."""

    def __init__(self, per_vertex_bytes: float, per_edge_bytes: float):
        self.per_vertex_bytes = per_vertex_bytes
        self.per_edge_bytes = per_edge_bytes

    def bytes_for(self, graph: DynamicGraph) -> float:
        return (
            self.per_vertex_bytes * graph.num_vertices
            + self.per_edge_bytes * graph.num_edges
        )

    def mb_for(self, graph: DynamicGraph) -> float:
        return self.bytes_for(graph) / (1024.0 * 1024.0)

    def check(self, graph: DynamicGraph, budget_mb: Optional[float]) -> None:
        """Raise :class:`MemoryBudgetExceeded` when over ``budget_mb``.

        ``budget_mb=None`` means unlimited (the default for library use).
        """
        if budget_mb is None:
            return
        needed = self.mb_for(graph)
        if needed > budget_mb:
            raise MemoryBudgetExceeded(needed, budget_mb)


#: adjacency only (the plain graph a local-search algorithm keeps)
GRAPH_ONLY = MemoryModel(per_vertex_bytes=40, per_edge_bytes=16)
#: ARW keeps the graph + per-vertex tightness counters + candidate arrays
ARW_MODEL = MemoryModel(per_vertex_bytes=96, per_edge_bytes=24)
#: degeneracy graph: oriented copy + core positions + update buffers (DGOne)
DG_ONE_MODEL = MemoryModel(per_vertex_bytes=96, per_edge_bytes=40)
#: DGTwo additionally indexes two-hop repair candidates — the heaviest
DG_TWO_MODEL = MemoryModel(per_vertex_bytes=128, per_edge_bytes=64)
#: swap index over solution vertices and their candidate pairs
SWAP_MODEL = MemoryModel(per_vertex_bytes=96, per_edge_bytes=48)
#: lazy variants keep the index sparse/partially materialized
LAZY_SWAP_MODEL = MemoryModel(per_vertex_bytes=80, per_edge_bytes=28)

#: The paper's testbed machines have 64 GB each; the dataset stand-ins are
#: down-scaled by ~32768x, and so is the budget the Table IV experiment
#: hands the centralized algorithms.
SCALED_SINGLE_MACHINE_BUDGET_MB = 2.0
