"""Serial reference algorithms: the greedy oracle and Luby's algorithm.

:func:`greedy_mis` is the library's *correctness oracle*: processing vertices
in ascending ``≺`` order (degree, then id) and taking each vertex with no
already-taken neighbour yields the **unique fixpoint** of the local property

    ``u ∈ M  ⇔  no neighbour v ≺ u with v ∈ M``

— exactly the set DisMIS, OIMIS and DOIMIS compute (Theorems 4.1/4.2).
Every distributed run in the test suite is checked against it.

:func:`luby_mis` is Luby's classic randomized parallel algorithm, included
as the historical baseline DisMIS descends from (useful for quality
comparisons in examples; it is *not* degree-order deterministic).
"""

from __future__ import annotations

import random
from typing import Set

from repro.graph.dynamic_graph import DynamicGraph


def greedy_mis(graph: DynamicGraph) -> Set[int]:
    """The degree-order greedy maximal independent set (the ``≺`` fixpoint).

    Runs in O(n log n + m).  Degrees are the graph's *current* degrees, so
    calling this after each update gives the exact set DOIMIS maintains.
    """
    order = sorted(graph.vertices(), key=lambda u: (graph.degree(u), u))
    selected: Set[int] = set()
    blocked: Set[int] = set()
    for u in order:
        if u in blocked:
            continue
        selected.add(u)
        blocked.update(graph.neighbors(u))
    return selected


def greedy_mis_arbitrary_order(graph: DynamicGraph, order) -> Set[int]:
    """Greedy MIS over an explicit vertex order (ablation/testing helper)."""
    selected: Set[int] = set()
    blocked: Set[int] = set()
    for u in order:
        if u in blocked or u in selected:
            continue
        selected.add(u)
        blocked.update(graph.neighbors(u))
    return selected


def luby_mis(graph: DynamicGraph, seed: int = 0) -> Set[int]:
    """Luby's randomized parallel MIS (simulated rounds, deterministic seed).

    Each round, every live vertex draws a random priority; local minima join
    the set and are removed together with their neighbours.  Terminates in
    O(log n) rounds with high probability.
    """
    rng = random.Random(seed)
    live: Set[int] = set(graph.vertices())
    selected: Set[int] = set()
    while live:
        priority = {u: rng.random() for u in live}
        winners = {
            u
            for u in live
            if all(
                priority[u] < priority[v]
                for v in graph.neighbors(u)
                if v in live
            )
        }
        if not winners:
            # Ties are measure-zero with float priorities, but guard anyway.
            winners = {min(live, key=lambda u: (priority[u], u))}
        selected.update(winners)
        removed = set(winners)
        for u in winners:
            removed.update(v for v in graph.neighbors(u) if v in live)
        live.difference_update(removed)
    return selected
