"""Reducing–peeling near-maximum MIS (Chang, Li, Zhang — SIGMOD 2017).

The OIMIS paper cites reducing–peeling as the state-of-the-art *static*
approximate MIS and reports DisMIS/OIMIS reaching ~98% of its quality.  The
algorithm alternates:

- **reducing**: exhaustively apply exact reduction rules —
  degree-0 (take it), degree-1 (take the pendant), degree-2 triangle (take
  the apex), degree-2 **folding** (contract the path ``u - v - w`` into one
  new vertex; the fold is undone after the main loop decides whether the
  contracted vertex is in the set);
- **peeling**: when no rule applies, remove a highest-degree vertex (it is
  *unlikely* to be in a large independent set) and continue reducing.

Degree-0/1/2 reductions are exactness-preserving, so quality is lost only
at peels.  A final free-insertion pass restores maximality on the original
graph (peeled vertices occasionally turn out insertable).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph


class _Fold:
    """Record of one degree-2 fold: ``x`` replaces the path ``u - v - w``."""

    __slots__ = ("x", "v", "u", "w")

    def __init__(self, x: int, v: int, u: int, w: int):
        self.x = x
        self.v = v
        self.u = u
        self.w = w


def reducing_peeling_mis(graph: DynamicGraph) -> Set[int]:
    """Compute a near-maximum independent set by reducing and peeling.

    The input graph is not modified.  Runs in near-linear time at this
    library's scales (the working copy shrinks monotonically).
    """
    work = graph.copy()
    selected: Set[int] = set()
    folds: List[_Fold] = []
    next_id = (max(graph.vertices(), default=0)) + 1

    # Buckets would be asymptotically cleaner; a scan queue is simpler and
    # fast enough here: track vertices whose degree may have dropped.
    pending: Set[int] = set(work.vertices())

    def low_degree_vertex() -> Tuple[int, int]:
        """A vertex of degree <= 2 if any (preferring lowest), else (-1, -1)."""
        best_u, best_d = -1, 3
        for u in sorted(pending):
            if not work.has_vertex(u):
                pending.discard(u)
                continue
            d = work.degree(u)
            if d < best_d:
                best_u, best_d = u, d
                if d == 0:
                    break
        return best_u, best_d if best_u != -1 else -1

    while work.num_vertices:
        u, d = low_degree_vertex()
        if u == -1 or d > 2:
            # Peeling: drop a maximum-degree vertex.
            peel = max(work.vertices(), key=lambda v: (work.degree(v), -v))
            removed = work.remove_vertex(peel)
            pending.discard(peel)
            pending.update(v for _, v in removed)
            continue
        if d == 0:
            selected.add(u)
            work.remove_vertex(u)
            pending.discard(u)
            continue
        if d == 1:
            (nbr,) = work.neighbors(u)
            selected.add(u)
            pending.update(work.neighbors(nbr))
            work.remove_vertex(u)
            work.remove_vertex(nbr)
            pending.discard(u)
            pending.discard(nbr)
            continue
        # degree 2: v is the apex with neighbours a, b
        a, b = sorted(work.neighbors(u))
        if work.has_edge(a, b):
            # triangle rule: the apex is in an optimal solution
            selected.add(u)
            pending.update(work.neighbors(a))
            pending.update(work.neighbors(b))
            for gone in (u, a, b):
                work.remove_vertex(gone)
                pending.discard(gone)
            continue
        # folding rule: contract a - u - b into a fresh vertex x
        x = next_id
        next_id += 1
        outer = (set(work.neighbors(a)) | set(work.neighbors(b))) - {u, a, b}
        for gone in (u, a, b):
            work.remove_vertex(gone)
            pending.discard(gone)
        work.add_vertex(x)
        for y in sorted(outer):
            if work.has_vertex(y) and not work.has_edge(x, y):
                work.add_edge(x, y)
        folds.append(_Fold(x, u, a, b))
        pending.add(x)
        pending.update(outer)

    # Undo folds newest-first: x in the solution means both endpoints of the
    # folded path are; otherwise the apex is.
    for fold in reversed(folds):
        if fold.x in selected:
            selected.discard(fold.x)
            selected.add(fold.u)
            selected.add(fold.w)
        else:
            selected.add(fold.v)

    # Maximality pass on the original graph (peeled vertices may be free).
    for u in sorted(graph.vertices()):
        if u in selected:
            continue
        if not any(v in selected for v in graph.neighbors(u)):
            selected.add(u)
    return selected
