"""Degeneracy-order algorithms: DGOne and DGTwo (Zheng et al., ICDE 2019).

Zheng et al. maintain a near-maximum independent set over evolving graphs
with a *degeneracy graph*: vertices are processed along the degeneracy
(k-core peeling) order, which empirically yields larger independent sets
than the plain degree order, and updates are repaired locally.  Table IV of
the OIMIS paper compares against their stronger variant DGTwo.

This module reimplements the algorithms at the fidelity the OIMIS paper
relies on (result quality and memory blow-up):

- :func:`degeneracy_order` — standard O(n + m) min-degree peeling.
- :class:`DGOne` — maintains the greedy set over the degeneracy order;
  updates repair the affected region with direct insert/evict rules.
- :class:`DGTwo` — DGOne plus a (1,2)-swap pass over the affected region
  after each repair, which is what buys its extra quality (and its extra
  memory: the two-hop candidate index is why the paper reports DGTwo
  OOM-ing earliest).

Both classes model their memory via :mod:`repro.serial.memory_model`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import EdgeDeletion, EdgeInsertion, EdgeUpdate
from repro.serial.greedy import greedy_mis_arbitrary_order
from repro.serial.memory_model import DG_ONE_MODEL, DG_TWO_MODEL, MemoryModel


def degeneracy_order(graph: DynamicGraph) -> List[int]:
    """The min-degree peeling order (smallest-core vertices first).

    Repeatedly removes a minimum-degree vertex (ties by id); the removal
    order is the processing order the DG algorithms use for greedy
    selection.  Runs in O((n + m) log n) with a lazy-deletion heap.
    """
    degrees = {u: graph.degree(u) for u in graph.vertices()}
    heap: List[Tuple[int, int]] = [(d, u) for u, d in degrees.items()]
    heapq.heapify(heap)
    removed: Set[int] = set()
    order: List[int] = []
    while heap:
        d, u = heapq.heappop(heap)
        if u in removed or d != degrees[u]:
            continue  # stale entry
        removed.add(u)
        order.append(u)
        # push order is irrelevant: the heap pops by total (degree, id) order
        for v in graph.neighbors(u):  # repro-lint: disable=D1
            if v not in removed:
                degrees[v] -= 1
                heapq.heappush(heap, (degrees[v], v))
    return order


def degeneracy(graph: DynamicGraph) -> int:
    """The graph's degeneracy (max min-degree encountered while peeling)."""
    degrees = {u: graph.degree(u) for u in graph.vertices()}
    heap: List[Tuple[int, int]] = [(d, u) for u, d in degrees.items()]
    heapq.heapify(heap)
    removed: Set[int] = set()
    best = 0
    while heap:
        d, u = heapq.heappop(heap)
        if u in removed or d != degrees[u]:
            continue
        best = max(best, d)
        removed.add(u)
        # push order is irrelevant: the heap pops by total (degree, id) order
        for v in graph.neighbors(u):  # repro-lint: disable=D1
            if v not in removed:
                degrees[v] -= 1
                heapq.heappush(heap, (degrees[v], v))
    return best


class DGOne:
    """Degeneracy-order dynamic MIS maintenance (the lighter variant).

    The maintained invariant is maximality: after every update the set is a
    maximal independent set whose composition follows the degeneracy-order
    greedy seed, repaired locally per update.
    """

    name = "DGOne"
    _memory: MemoryModel = DG_ONE_MODEL

    def __init__(
        self,
        graph: DynamicGraph,
        memory_budget_mb: Optional[float] = None,
    ):
        self._memory.check(graph, memory_budget_mb)
        self.graph = graph
        self._budget = memory_budget_mb
        order = degeneracy_order(graph)
        self._position: Dict[int, int] = {u: i for i, u in enumerate(order)}
        self.members: Set[int] = greedy_mis_arbitrary_order(graph, order)
        self.updates_applied = 0

    # -- queries ---------------------------------------------------------
    def independent_set(self) -> Set[int]:
        return set(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def _pos(self, u: int) -> Tuple[int, int]:
        # Vertices inserted after construction get appended to the order.
        if u not in self._position:
            self._position[u] = len(self._position)
        return (self._position[u], u)

    def _is_free(self, u: int) -> bool:
        return u not in self.members and not any(
            v in self.members for v in self.graph.neighbors(u)
        )

    # -- updates -----------------------------------------------------------
    def apply(self, op: EdgeUpdate) -> None:
        if isinstance(op, EdgeInsertion):
            self.insert_edge(op.u, op.v)
        elif isinstance(op, EdgeDeletion):
            self.delete_edge(op.u, op.v)
        else:
            raise TypeError(f"unsupported operation {op!r}")

    def apply_batch(self, operations: Sequence[EdgeUpdate]) -> None:
        for op in operations:
            self.apply(op)

    def apply_stream(self, operations: Iterable[EdgeUpdate], batch_size: int = 1) -> None:
        # Centralized algorithms process updates one at a time regardless of
        # batching; the parameter exists for interface parity.
        for op in operations:
            self.apply(op)

    def insert_edge(self, u: int, v: int) -> None:
        for w in (u, v):
            if not self.graph.has_vertex(w):
                self.graph.add_vertex(w)
                self._pos(w)
        self.graph.add_edge(u, v)
        self._memory.check(self.graph, self._budget)
        if u in self.members and v in self.members:
            # Conflict: evict the later-order endpoint, repair around it.
            evict = u if self._pos(u) > self._pos(v) else v
            self.members.discard(evict)
            self._repair_around(evict)
        self.updates_applied += 1

    def delete_edge(self, u: int, v: int) -> None:
        self.graph.remove_edge(u, v)
        # Endpoints may now be insertable.
        for w in sorted((u, v), key=self._pos):
            if self._is_free(w):
                self.members.add(w)
        self.updates_applied += 1

    def _repair_around(self, evicted: int) -> None:
        """Re-add free vertices near an eviction, in degeneracy order."""
        candidates = sorted(
            set(self.graph.neighbors(evicted)) | {evicted}, key=self._pos
        )
        for w in candidates:
            if self._is_free(w):
                self.members.add(w)


class DGTwo(DGOne):
    """DGOne plus (1,2)-swap repair — the paper's quality comparator.

    After each repair, solution vertices in the affected two-hop region are
    tested for a two-improvement (one out, two free-in), which is the
    mechanism that makes DGTwo's sets slightly larger than greedy-order
    maintenance.
    """

    name = "DGTwo"
    _memory: MemoryModel = DG_TWO_MODEL

    def insert_edge(self, u: int, v: int) -> None:
        super().insert_edge(u, v)
        self._swap_pass({u, v})

    def delete_edge(self, u: int, v: int) -> None:
        super().delete_edge(u, v)
        self._swap_pass({u, v})

    def _swap_pass(self, seeds: Set[int]) -> None:
        region: Set[int] = set()
        for s in seeds:
            if not self.graph.has_vertex(s):
                continue
            region.add(s)
            region.update(self.graph.neighbors(s))
        targets = sorted(
            x for x in region if x in self.members
        )
        for x in targets:
            if x not in self.members:
                continue
            pair = self._find_two_improvement(x)
            if pair is None:
                continue
            a, b = pair
            self.members.discard(x)
            self.members.add(a)
            self.members.add(b)
            for y in self.graph.neighbors(x):
                if self._is_free(y):
                    self.members.add(y)

    def _find_two_improvement(self, x: int) -> Optional[Tuple[int, int]]:
        candidates = [
            v
            for v in sorted(self.graph.neighbors(x))
            if v not in self.members
            and all(
                w == x or w not in self.members
                for w in self.graph.neighbors(v)
            )
        ]
        for i, a in enumerate(candidates):
            a_nbrs = self.graph.neighbors(a)
            for b in candidates[i + 1:]:
                if b not in a_nbrs:
                    return (a, b)
        return None
