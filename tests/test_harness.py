"""Integration tests for the experiment drivers (scaled-down runs).

Each driver runs on the smallest datasets with tiny workloads here; the
``benchmarks/`` modules run them at reporting scale.  These tests pin the
*shapes* the paper's tables/figures rest on.
"""

import pytest

from repro.bench import harness


@pytest.fixture(scope="module")
def table2_rows():
    return harness.table2_order_independence(tags=("SL", "AM"), num_workers=4)


@pytest.fixture(scope="module")
def table3_rows():
    return harness.table3_optimizations(tags=("SL", "AM"), num_workers=4)


class TestTable2:
    def test_row_shape(self, table2_rows):
        assert len(table2_rows) == 4
        assert {r["algorithm"] for r in table2_rows} == {"DisMIS", "OIMIS"}

    def test_same_set_sizes(self, table2_rows):
        by_ds = {}
        for row in table2_rows:
            by_ds.setdefault(row["dataset"], {})[row["algorithm"]] = row
        for rows in by_ds.values():
            assert rows["DisMIS"]["set_size"] == rows["OIMIS"]["set_size"]

    def test_oimis_dominates(self, table2_rows):
        by_ds = {}
        for row in table2_rows:
            by_ds.setdefault(row["dataset"], {})[row["algorithm"]] = row
        for rows in by_ds.values():
            assert rows["OIMIS"]["communication_mb"] < rows["DisMIS"]["communication_mb"]
            assert rows["OIMIS"]["supersteps"] <= rows["DisMIS"]["supersteps"]
            assert rows["OIMIS"]["memory_mb"] <= rows["DisMIS"]["memory_mb"]


class TestTable3:
    def test_variants_present(self, table3_rows):
        assert {r["variant"] for r in table3_rows} == {"OIMIS", "+LR", "+SS"}

    def test_activation_reductions(self, table3_rows):
        by_ds = {}
        for row in table3_rows:
            by_ds.setdefault(row["dataset"], {})[row["variant"]] = row
        for rows in by_ds.values():
            assert rows["+LR"]["active_vertices"] < rows["OIMIS"]["active_vertices"]
            assert rows["+SS"]["active_vertices"] <= rows["+LR"]["active_vertices"]
            assert rows["+LR"]["communication_mb"] <= rows["OIMIS"]["communication_mb"]
            assert rows["+SS"]["supersteps"] <= rows["OIMIS"]["supersteps"]


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return harness.table4_effectiveness(
            tags=("SL", "SK05", "UK14"), k=40, batch_size=40, num_workers=4
        )

    def test_oom_pattern(self, rows):
        by_ds = {r["dataset"]: r for r in rows}
        assert by_ds["SL"]["DGTwo"] != "OOM"
        assert by_ds["SK05"]["DGTwo"] == "OOM"
        assert by_ds["SK05"]["DTSwap"] != "OOM"
        assert by_ds["UK14"]["ARW"] == "OOM"
        assert by_ds["UK14"]["LazyDTSwap"] == "OOM"

    def test_doimis_always_finishes(self, rows):
        assert all(isinstance(r["DOIMIS"], int) for r in rows)

    def test_prec_above_85_percent(self, rows):
        for row in rows:
            for key in ("prec_ARW", "prec_DGTwo", "prec_DTSwap", "prec_LazyDTSwap"):
                if row[key] != "-":
                    assert row[key] >= 0.85, (row["dataset"], key)


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return harness.fig10_efficiency(tags=("SL",), k=25, num_workers=4)

    def test_all_algorithms_present(self, rows):
        singles = {r["algorithm"] for r in rows if r["mode"] == "single"}
        batches = {r["algorithm"] for r in rows if r["mode"] == "batch"}
        assert singles == {"SCALL", "DOIMIS", "DOIMIS+", "DOIMIS*"}
        assert batches == singles | {"Naive", "dDisMIS"}

    def test_scall_doimis_equal_communication(self, rows):
        single = {r["algorithm"]: r for r in rows if r["mode"] == "single"}
        assert single["SCALL"]["communication_mb"] == pytest.approx(
            single["DOIMIS"]["communication_mb"]
        )

    def test_scall_more_work_than_doimis(self, rows):
        single = {r["algorithm"]: r for r in rows if r["mode"] == "single"}
        assert single["SCALL"]["compute_work"] > single["DOIMIS"]["compute_work"]

    def test_recompute_baselines_cost_most_work(self, rows):
        batch = {r["algorithm"]: r for r in rows if r["mode"] == "batch"}
        assert batch["Naive"]["compute_work"] > batch["DOIMIS*"]["compute_work"]
        assert batch["dDisMIS"]["compute_work"] > batch["DOIMIS*"]["compute_work"]

    def test_all_set_sizes_equal(self, rows):
        assert len({r["set_size"] for r in rows}) == 1


class TestFig11:
    def test_batching_reduces_cost(self):
        rows = harness.fig11_batch_size(
            tag="SL", k=60, batch_sizes=(1, 10, 60), num_workers=4
        )
        times = [r["supersteps"] for r in rows]
        comms = [r["communication_mb"] for r in rows]
        assert times[0] > times[-1]
        assert comms[0] >= comms[-1]


class TestFig12:
    def test_machines_tradeoff(self):
        rows = harness.fig12_machines(
            tags=("SL",), k=40, worker_counts=(2, 8), batch_size=20
        )
        two, eight = rows[0], rows[1]
        assert eight["communication_mb"] > two["communication_mb"]
        assert eight["response_time_s"] < two["response_time_s"]


class TestFig13:
    def test_costs_grow_with_updates(self):
        rows = harness.fig13_updates(
            tags=("SL",), update_counts=(40, 160), batch_size=20, num_workers=4
        )
        small, large = rows[0], rows[1]
        assert large["communication_mb"] > small["communication_mb"]
        assert large["supersteps"] >= small["supersteps"]
