"""Unit tests for the swap-based maintainers (DOSwap/DTSwap/Lazy*)."""

import random

import pytest

from repro.core.verification import is_maximal_independent_set
from repro.errors import MemoryBudgetExceeded
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi, path_graph, star_graph
from repro.graph.updates import EdgeDeletion, EdgeInsertion
from repro.serial.swap import DOSwap, DTSwap, LazyDOSwap, LazyDTSwap, _SwapEngine

ALL_VARIANTS = [DOSwap, DTSwap, LazyDOSwap, LazyDTSwap]


class TestSwapEngine:
    def test_tightness_consistent_after_moves(self):
        g = erdos_renyi(30, 90, seed=1)
        engine = _SwapEngine(g)
        # brute-force check the index
        for u in g.vertices():
            expected = sum(1 for v in g.neighbors(u) if v in engine.members)
            assert engine.tight[u] == expected

    def test_one_swap_on_star(self):
        g = star_graph(3)
        engine = _SwapEngine(g)
        # force the bad solution {0}
        for u in list(engine.members):
            engine.remove_member(u)
        engine.add_member(0)
        pair = engine.one_swap(0)
        assert pair is not None
        engine.apply_one_swap(0, pair)
        assert is_maximal_independent_set(g, engine.members)
        assert len(engine.members) == 3

    def test_one_swap_none_when_locally_optimal(self):
        g = path_graph(3)
        engine = _SwapEngine(g)  # greedy gives {0, 2}
        assert engine.one_swap(0) is None

    def test_two_swap_requires_members(self):
        g = path_graph(4)
        engine = _SwapEngine(g)
        assert engine.two_swap(1, 1) is None
        assert engine.two_swap(0, 99) is None


class TestMaintenance:
    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_initial_maximal(self, cls):
        g = erdos_renyi(40, 120, seed=2)
        alg = cls(g.copy())
        assert is_maximal_independent_set(alg.graph, alg.independent_set())

    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_maximality_through_random_stream(self, cls):
        g = erdos_renyi(40, 100, seed=3)
        alg = cls(g.copy())
        rng = random.Random(3)
        for _ in range(50):
            if rng.random() < 0.5 and alg.graph.num_edges:
                edge = rng.choice(alg.graph.sorted_edges())
                alg.apply(EdgeDeletion(*edge))
            else:
                u, v = rng.randrange(40), rng.randrange(40)
                if u == v or alg.graph.has_edge(u, v):
                    continue
                alg.apply(EdgeInsertion(u, v))
            assert is_maximal_independent_set(alg.graph, alg.independent_set())

    def test_swap_quality_beats_plain_greedy(self):
        from repro.serial.greedy import greedy_mis

        total_swap = total_greedy = 0
        for seed in range(5):
            g = erdos_renyi(60, 240, seed=seed)
            total_swap += len(DTSwap(g.copy()))
            total_greedy += len(greedy_mis(g))
        assert total_swap > total_greedy

    def test_dtswap_at_least_doswap_on_average(self):
        total_one = total_two = 0
        for seed in range(5):
            g = erdos_renyi(50, 220, seed=seed + 50)
            total_one += len(DOSwap(g.copy()))
            total_two += len(DTSwap(g.copy()))
        assert total_two >= total_one

    def test_lazy_close_to_eager(self):
        g = erdos_renyi(60, 240, seed=11)
        ops = [EdgeDeletion(*e) for e in g.sorted_edges()[:12]]
        eager, lazy = DTSwap(g.copy()), LazyDTSwap(g.copy())
        eager.apply_batch(ops)
        lazy.apply_batch(ops)
        assert abs(len(eager) - len(lazy)) <= max(2, len(eager) // 20)

    def test_new_vertex_via_edge_insert(self):
        alg = DOSwap(path_graph(3))
        alg.apply(EdgeInsertion(2, 50))
        assert alg.graph.has_vertex(50)
        assert is_maximal_independent_set(alg.graph, alg.independent_set())

    def test_unsupported_op_rejected(self):
        alg = DOSwap(path_graph(3))
        with pytest.raises(TypeError):
            alg.apply(42)

    def test_counters_and_stream(self):
        g = erdos_renyi(30, 80, seed=12)
        alg = LazyDOSwap(g.copy())
        ops = [EdgeDeletion(*e) for e in g.sorted_edges()[:5]]
        alg.apply_stream(ops)
        assert alg.updates_applied == 5


class TestMemory:
    def test_budget_on_construction(self):
        g = erdos_renyi(200, 800, seed=13)
        with pytest.raises(MemoryBudgetExceeded):
            DTSwap(g, memory_budget_mb=0.001)

    def test_lazy_model_lighter(self):
        from repro.serial.memory_model import LAZY_SWAP_MODEL, SWAP_MODEL

        g = erdos_renyi(50, 200, seed=14)
        assert LAZY_SWAP_MODEL.mb_for(g) < SWAP_MODEL.mb_for(g)

    def test_budget_checked_on_growth(self):
        g = DynamicGraph.from_edges([(0, 1)])
        from repro.serial.memory_model import SWAP_MODEL

        alg = DTSwap(g, memory_budget_mb=SWAP_MODEL.mb_for(g) * 1.01)
        with pytest.raises(MemoryBudgetExceeded):
            for v in range(2, 200):
                alg.apply(EdgeInsertion(0, v))
