"""Unit tests for combiners and aggregators in isolation."""

import pytest

from repro.pregel.aggregator import (
    AggregatorRegistry,
    AndAggregator,
    MaxAggregator,
    MinAggregator,
    OrAggregator,
    SumAggregator,
)
from repro.pregel.combiner import DedupCombiner, NullCombiner, ReduceCombiner
from repro.pregel.message import Message


def _msgs(payloads):
    return [Message(0, 1, p, 8) for p in payloads]


class TestCombiners:
    def test_null_combiner_passthrough(self):
        msgs = _msgs([1, 1, 2])
        assert NullCombiner().combine(msgs) == msgs

    def test_dedup(self):
        out = DedupCombiner().combine(_msgs([1, 1, 2, 1]))
        assert [m.payload for m in out] == [1, 2]

    def test_dedup_keeps_unhashable(self):
        out = DedupCombiner().combine(_msgs([[1], [1]]))
        assert len(out) == 2

    def test_reduce_min(self):
        out = ReduceCombiner(min).combine(_msgs([5, 2, 9]))
        assert len(out) == 1 and out[0].payload == 2

    def test_reduce_single_message(self):
        msgs = _msgs([7])
        assert ReduceCombiner(min).combine(msgs) == msgs

    def test_message_wire_bytes(self):
        assert Message(0, 1, "x", 5).wire_bytes() == 8 + 5


class TestAggregators:
    @pytest.mark.parametrize(
        "agg,values,expected",
        [
            (SumAggregator(), [1, 2, 3], 6),
            (OrAggregator(), [False, True], True),
            (OrAggregator(), [], False),
            (AndAggregator(), [True, False], False),
            (AndAggregator(), [], True),
            (MinAggregator(), [3, 1, 2], 1),
            (MaxAggregator(), [3, 1, 2], 3),
        ],
    )
    def test_reduction(self, agg, values, expected):
        acc = agg.identity()
        for v in values:
            acc = agg.reduce(acc, v)
        assert acc == expected

    def test_registry_rolls_per_superstep(self):
        reg = AggregatorRegistry({"n": SumAggregator()})
        reg.contribute("n", 2)
        reg.contribute("n", 3)
        assert reg.previous("n") == 0  # not yet published
        reg.roll()
        assert reg.previous("n") == 5
        reg.roll()
        assert reg.previous("n") == 0  # accumulator was reset

    def test_registry_unknown_name(self):
        reg = AggregatorRegistry()
        with pytest.raises(KeyError):
            reg.contribute("missing", 1)
        with pytest.raises(KeyError):
            reg.previous("missing")
