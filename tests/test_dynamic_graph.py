"""Unit tests for the dynamic graph substrate."""

import pytest

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph.dynamic_graph import DynamicGraph, normalize_edge


class TestConstruction:
    def test_empty_graph(self):
        g = DynamicGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.average_degree() == 0.0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = DynamicGraph.from_edges([(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(1, 2) and g.has_edge(2, 1)

    def test_from_edges_with_isolated_vertices(self):
        g = DynamicGraph.from_edges([(1, 2)], vertices=[5, 6])
        assert g.num_vertices == 4
        assert g.degree(5) == 0

    def test_from_edges_tolerates_duplicates(self):
        g = DynamicGraph.from_edges([(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(SelfLoopError):
            DynamicGraph.from_edges([(3, 3)])

    def test_copy_is_deep(self):
        g = DynamicGraph.from_edges([(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert not g.has_vertex(3)
        assert g != clone

    def test_equality(self):
        a = DynamicGraph.from_edges([(1, 2), (2, 3)])
        b = DynamicGraph.from_edges([(2, 3), (1, 2)])
        assert a == b
        assert (a == 42) is NotImplemented or not (a == 42)


class TestVertices:
    def test_add_vertex_idempotent(self):
        g = DynamicGraph()
        g.add_vertex(1)
        g.add_vertex(1)
        assert g.num_vertices == 1

    def test_remove_vertex_returns_incident_edges(self):
        g = DynamicGraph.from_edges([(1, 2), (1, 3), (2, 3)])
        removed = g.remove_vertex(1)
        assert removed == [(1, 2), (1, 3)]
        assert g.num_vertices == 2
        assert g.has_edge(2, 3)

    def test_remove_missing_vertex_raises(self):
        g = DynamicGraph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(9)

    def test_contains_and_len(self):
        g = DynamicGraph.from_edges([(1, 2)])
        assert 1 in g and 3 not in g
        assert len(g) == 2

    def test_sorted_vertices(self):
        g = DynamicGraph.from_edges([(5, 1), (3, 1)])
        assert g.sorted_vertices() == [1, 3, 5]


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        g = DynamicGraph()
        g.add_edge(1, 2)
        assert g.has_vertex(1) and g.has_vertex(2)

    def test_add_duplicate_edge_raises(self):
        g = DynamicGraph.from_edges([(1, 2)])
        with pytest.raises(EdgeExistsError):
            g.add_edge(2, 1)

    def test_add_self_loop_raises(self):
        g = DynamicGraph()
        with pytest.raises(SelfLoopError):
            g.add_edge(4, 4)

    def test_remove_edge(self):
        g = DynamicGraph.from_edges([(1, 2), (2, 3)])
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = DynamicGraph.from_edges([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(7, 8)

    def test_edges_canonical_and_unique(self):
        g = DynamicGraph.from_edges([(3, 1), (2, 3)])
        assert sorted(g.edges()) == [(1, 3), (2, 3)]
        assert g.sorted_edges() == [(1, 3), (2, 3)]

    def test_num_edges_consistency_under_updates(self):
        g = DynamicGraph()
        for i in range(10):
            g.add_edge(i, i + 1)
        assert g.num_edges == 10
        for i in range(0, 10, 2):
            g.remove_edge(i, i + 1)
        assert g.num_edges == 5


class TestDegrees:
    def test_degree_tracks_updates(self, path5):
        assert path5.degree(0) == 1
        assert path5.degree(2) == 2
        path5.add_edge(0, 2)
        assert path5.degree(0) == 2
        path5.remove_edge(0, 1)
        assert path5.degree(0) == 1

    def test_degree_of_missing_vertex_raises(self):
        g = DynamicGraph()
        with pytest.raises(VertexNotFoundError):
            g.degree(1)

    def test_average_degree(self, path5):
        assert path5.average_degree() == pytest.approx(2 * 4 / 5)

    def test_max_degree(self, star6):
        assert star6.max_degree() == 6
        assert DynamicGraph().max_degree() == 0

    def test_neighbors_view(self, triangle):
        assert triangle.neighbors(1) == {2, 3}


def test_normalize_edge():
    assert normalize_edge(5, 2) == (2, 5)
    assert normalize_edge(2, 5) == (2, 5)


def test_repr_mentions_sizes():
    g = DynamicGraph.from_edges([(1, 2)])
    assert "n=2" in repr(g) and "m=1" in repr(g)
