"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)


@pytest.fixture
def triangle() -> DynamicGraph:
    return DynamicGraph.from_edges([(1, 2), (2, 3), (1, 3)])


@pytest.fixture
def path5() -> DynamicGraph:
    """Path 0-1-2-3-4; greedy MIS is {0, 2, 4}."""
    return path_graph(5)


@pytest.fixture
def star6() -> DynamicGraph:
    """Star with centre 0 and leaves 1..6; greedy MIS is the leaves."""
    return star_graph(6)


@pytest.fixture
def paper_figure_graph() -> DynamicGraph:
    """The 5-vertex graph of the paper's Fig. 1.

    u1..u5 as ids 1..5: edges (u1,u2), (u2,u3), (u3,u4)... we use the layout
    where the MIS {u1, u3, u4} of Fig. 1 arises under the degree order:
    u2 adjacent to u1,u3,u5; u5 adjacent to u2,u4 is NOT in it.  Concretely:
    edges (1,2), (2,3), (2,5), (4,5).  deg: u2=3, u5=2, others 1 —
    greedy picks 1, 3, 4 then blocks 5 and 2.
    """
    return DynamicGraph.from_edges([(1, 2), (2, 3), (2, 5), (4, 5)])


@pytest.fixture
def random_graph() -> DynamicGraph:
    return erdos_renyi(60, 180, seed=7)


def random_graphs(count: int, n_range=(4, 50), density=3.0, seed: int = 0):
    """A deterministic batch of random test graphs (helper, not a fixture)."""
    rng = random.Random(seed)
    graphs = []
    for i in range(count):
        n = rng.randint(*n_range)
        m = rng.randint(0, min(n * (n - 1) // 2, int(density * n)))
        graphs.append(erdos_renyi(n, m, seed=seed * 1000 + i))
    return graphs


STRUCTURED_GRAPH_BUILDERS = {
    "path10": lambda: path_graph(10),
    "cycle9": lambda: cycle_graph(9),
    "star8": lambda: star_graph(8),
    "K6": lambda: complete_graph(6),
    "K3_4": lambda: complete_bipartite(3, 4),
}


@pytest.fixture(params=sorted(STRUCTURED_GRAPH_BUILDERS))
def structured_graph(request) -> DynamicGraph:
    return STRUCTURED_GRAPH_BUILDERS[request.param]()
