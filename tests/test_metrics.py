"""Unit tests for the cost model and run metrics."""

import pytest

from repro.pregel.metrics import RunMetrics, SuperstepRecord, fresh_metrics


def _record(superstep=0, **kw):
    rec = SuperstepRecord(superstep=superstep)
    for key, value in kw.items():
        setattr(rec, key, value)
    return rec


class TestObserve:
    def test_observe_accumulates(self):
        m = fresh_metrics(4)
        m.observe(_record(0, active_vertices=3, compute_work=10, bytes_sent=100))
        m.observe(_record(1, active_vertices=2, compute_work=5, bytes_sent=50))
        assert m.supersteps == 2
        assert m.active_vertices == 5
        assert m.compute_work == 15
        assert m.bytes_sent == 150
        assert len(m.records) == 2

    def test_observe_without_records(self):
        m = fresh_metrics(2)
        m.observe(_record(0, active_vertices=1), keep_record=False)
        assert m.supersteps == 1
        assert m.records == []

    def test_memory_keeps_peak(self):
        m = fresh_metrics(2)
        m.observe_memory({0: 100, 1: 300})
        m.observe_memory({0: 200, 1: 250})
        assert m.peak_worker_memory_bytes == 300
        assert m.total_memory_bytes == 450
        m.observe_memory({})
        assert m.peak_worker_memory_bytes == 300


class TestMerge:
    def test_merge_sums_counters(self):
        a, b = fresh_metrics(2), fresh_metrics(2)
        a.observe(_record(0, active_vertices=1, bytes_sent=10))
        b.observe(_record(0, active_vertices=2, bytes_sent=20))
        b.wall_time_s = 0.5
        a.merge(b)
        assert a.supersteps == 2
        assert a.active_vertices == 3
        assert a.bytes_sent == 30
        assert a.wall_time_s == pytest.approx(0.5)

    def test_merge_takes_max_memory(self):
        a, b = fresh_metrics(2), fresh_metrics(2)
        a.observe_memory({0: 100})
        b.observe_memory({0: 50})
        a.merge(b)
        assert a.peak_worker_memory_bytes == 100


class TestDerived:
    def test_communication_mb(self):
        m = fresh_metrics(1)
        m.bytes_sent = 2 * 1024 * 1024
        assert m.communication_mb == pytest.approx(2.0)

    def test_memory_mb(self):
        m = fresh_metrics(1)
        m.peak_worker_memory_bytes = 1024 * 1024
        assert m.memory_mb == pytest.approx(1.0)

    def test_summary_keys(self):
        m = fresh_metrics(1)
        summary = m.summary()
        for key in ("supersteps", "communication_mb", "memory_mb", "wall_time_s"):
            assert key in summary


class TestJsonExport:
    def test_summary_fields_present(self):
        import json

        m = fresh_metrics(3)
        m.observe(_record(0, active_vertices=2, bytes_sent=100))
        payload = json.loads(m.to_json())
        assert payload["num_workers"] == 3
        assert payload["supersteps"] == 1
        assert "records" not in payload

    def test_records_included_on_request(self):
        import json

        m = fresh_metrics(2)
        rec = _record(0, active_vertices=2, compute_work=5)
        rec.worker_work = [3, 2]
        m.observe(rec)
        payload = json.loads(m.to_json(include_records=True))
        assert payload["records"][0]["worker_work"] == [3, 2]

    def test_roundtrip_from_real_run(self):
        import json

        from repro.core.oimis import run_oimis
        from repro.graph.generators import erdos_renyi

        run = run_oimis(erdos_renyi(30, 90, seed=1))
        payload = json.loads(run.metrics.to_json(include_records=True))
        assert payload["supersteps"] == run.metrics.supersteps
        assert len(payload["records"]) == run.metrics.supersteps


class TestSimulatedTime:
    def test_uses_slowest_worker(self):
        m = fresh_metrics(2)
        rec = _record(0, compute_work=100)
        rec.worker_work = [90, 10]
        m.observe(rec)
        slow = m.simulated_time(work_per_second=100, bandwidth_bytes_per_second=1e9,
                                superstep_latency_s=0.0)
        assert slow == pytest.approx(0.9)

    def test_fallback_without_worker_detail(self):
        m = fresh_metrics(4)
        m.observe(_record(0, compute_work=100))
        t = m.simulated_time(work_per_second=100, bandwidth_bytes_per_second=1e9,
                             superstep_latency_s=0.0)
        assert t == pytest.approx(100 / (4 * 100))

    def test_fallback_without_records(self):
        m = fresh_metrics(2)
        m.supersteps = 3
        m.compute_work = 100
        m.bytes_sent = 1000
        t = m.simulated_time(work_per_second=100, bandwidth_bytes_per_second=1000,
                             superstep_latency_s=0.1)
        assert t == pytest.approx(100 / 200 + 1.0 + 0.3)

    def test_more_workers_is_faster_compute(self):
        few, many = fresh_metrics(2), fresh_metrics(8)
        for m in (few, many):
            m.supersteps = 1
            m.compute_work = 800
        assert many.simulated_time() < few.simulated_time()
