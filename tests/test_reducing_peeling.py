"""Unit tests for the reducing-peeling near-maximum MIS."""

import pytest

from repro.core.verification import (
    is_independent_set,
    is_maximal_independent_set,
)
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.serial.greedy import greedy_mis
from repro.serial.reducing_peeling import reducing_peeling_mis


class TestExactOnEasyGraphs:
    """Degree <= 2 graphs need no peeling: the result must be optimum."""

    def test_path_optimal(self):
        # alpha(P_n) = ceil(n / 2)
        for n in (2, 3, 4, 5, 8, 11):
            assert len(reducing_peeling_mis(path_graph(n))) == (n + 1) // 2

    def test_cycle_optimal(self):
        # alpha(C_n) = floor(n / 2)
        for n in (3, 4, 5, 8, 9):
            assert len(reducing_peeling_mis(cycle_graph(n))) == n // 2

    def test_star_optimal(self):
        assert reducing_peeling_mis(star_graph(7)) == set(range(1, 8))

    def test_isolated_vertices(self):
        g = DynamicGraph.from_edges([], vertices=[1, 2, 3])
        assert reducing_peeling_mis(g) == {1, 2, 3}

    def test_triangle_rule(self):
        assert len(reducing_peeling_mis(complete_graph(3))) == 1

    def test_empty(self):
        assert reducing_peeling_mis(DynamicGraph()) == set()


class TestFolding:
    def test_two_disjoint_paths_through_fold(self):
        # P5 forces at least one fold if reductions fire in the middle
        g = path_graph(5)
        result = reducing_peeling_mis(g)
        assert len(result) == 3
        assert is_independent_set(g, result)

    def test_fold_on_cycle_with_chord(self):
        g = cycle_graph(6)
        g.add_edge(0, 3)
        result = reducing_peeling_mis(g)
        assert is_maximal_independent_set(g, result)
        assert len(result) >= 2


class TestGeneralGraphs:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_on_random_graphs(self, seed):
        g = erdos_renyi(50, 160, seed=seed)
        result = reducing_peeling_mis(g)
        assert is_maximal_independent_set(g, result)

    def test_input_not_mutated(self):
        g = erdos_renyi(30, 90, seed=1)
        snapshot = g.copy()
        reducing_peeling_mis(g)
        assert g == snapshot

    def test_quality_competitive_with_greedy(self):
        total_rp = total_greedy = 0
        for seed in range(6):
            g = barabasi_albert(120, 3, seed=seed)
            total_rp += len(reducing_peeling_mis(g))
            total_greedy += len(greedy_mis(g))
        assert total_rp >= total_greedy

    def test_quality_reference_claim(self):
        """The paper: DOIMIS's set averages ~98% of the reducing-peeling
        reference on sparse power-law graphs.  We assert the
        scale-appropriate form on BA stand-ins: >= 90% per graph (dense
        uniform-random graphs are harder for degree-order greedy; see
        EXPERIMENTS.md)."""
        for seed in range(4):
            g = barabasi_albert(150, 3, seed=seed)
            greedy_size = len(greedy_mis(g))
            rp_size = len(reducing_peeling_mis(g))
            assert greedy_size >= 0.90 * rp_size
