"""Property tests for the rank-ordered cached adjacency.

The load-bearing invariant: after any mixed update sequence, every
materialized list equals a fresh ``sorted(neighbors, key=rank)`` — i.e. the
incremental membership edits and single-entry repositioning repairs are
indistinguishable from rebuilding from scratch.
"""

import random

import pytest

from repro.core.weighted import WeightedMISMaintainer
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert, chung_lu, erdos_renyi
from repro.graph.rank_cache import RankedAdjacency, degree_rank_key


def fresh_ranked(graph, u, key):
    return [v for _, v in sorted((key(v), v) for v in graph.neighbors(u))]


def assert_cache_consistent(graph, cache, key):
    for u in graph.sorted_vertices():
        assert cache.ranked_neighbors(u) == fresh_ranked(graph, u, key), (
            f"cache for vertex {u} diverged from a fresh sort"
        )


def random_mixed_updates(graph, rng, steps):
    """Drive ``steps`` random add-edge / remove-edge / remove-vertex /
    add-vertex operations against ``graph`` (mutating it in place)."""
    next_id = max(graph.sorted_vertices(), default=0) + 1
    for _ in range(steps):
        vertices = graph.sorted_vertices()
        op = rng.random()
        if op < 0.40 and len(vertices) >= 2:
            u, v = rng.sample(vertices, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
        elif op < 0.70:
            edges = graph.sorted_edges()
            if edges:
                u, v = edges[rng.randrange(len(edges))]
                graph.remove_edge(u, v)
        elif op < 0.85 and vertices:
            graph.remove_vertex(vertices[rng.randrange(len(vertices))])
        else:
            u = next_id
            next_id += 1
            graph.add_vertex(u)
            for v in rng.sample(vertices, min(3, len(vertices))):
                graph.add_edge(u, v)


GENERATORS = {
    "er": lambda: erdos_renyi(60, 180, seed=5),
    "ba": lambda: barabasi_albert(60, 3, seed=6),
    "chung_lu": lambda: chung_lu(60, 6.0, seed=7),
}


class TestDegreeOrderInvariant:
    @pytest.mark.parametrize("model", sorted(GENERATORS))
    def test_500_random_mixed_updates(self, model):
        graph = GENERATORS[model]()
        cache = graph.rank_cache()
        key = degree_rank_key(graph)
        # materialize everything up front so repairs (not rebuilds) carry
        # the burden of keeping the lists correct
        for u in graph.sorted_vertices():
            cache.ranked_neighbors(u)
        rng = random.Random(42)
        for checkpoint in range(10):
            random_mixed_updates(graph, rng, 50)
            assert_cache_consistent(graph, cache, key)
        assert cache.repairs > 0

    def test_vertex_removal_drops_cache_rows(self):
        graph = DynamicGraph.from_edges([(1, 2), (2, 3), (3, 1), (3, 4)])
        cache = graph.rank_cache()
        for u in graph.sorted_vertices():
            cache.ranked_neighbors(u)
        graph.remove_vertex(3)
        key = degree_rank_key(graph)
        assert_cache_consistent(graph, cache, key)
        assert 3 not in cache._entries and 3 not in cache._keys

    def test_shared_cache_bulk_builds_once(self):
        # the graph's shared cache materializes everything at creation in
        # ONE counted bulk build; queries afterwards never rebuild
        graph = erdos_renyi(30, 60, seed=1)
        cache = graph.rank_cache()
        assert cache.rebuilds == 1
        assert set(cache._entries) == set(graph.sorted_vertices())
        cache.ranked_neighbors(0)
        assert cache.rebuilds == 1
        assert_cache_consistent(graph, cache, degree_rank_key(graph))

    def test_lazy_materialization_counts_rebuilds(self):
        # a detached (custom-key) cache keeps the lazy economy: one counted
        # rebuild per first-touched vertex
        graph = erdos_renyi(30, 60, seed=1)
        cache = graph.attach_rank_cache(degree_rank_key(graph))
        assert cache.rebuilds == 0
        cache.ranked_neighbors(0)
        assert cache.rebuilds == 1
        cache.ranked_neighbors(0)  # served from cache
        assert cache.rebuilds == 1

    def test_build_all_counts_one_bulk_build(self):
        graph = erdos_renyi(30, 60, seed=1)
        cache = graph.attach_rank_cache(degree_rank_key(graph))
        cache.ranked_neighbors(0)  # one lazy materialization first
        cache.build_all()
        # rebuilds = bulk builds + lazy per-vertex materializations
        assert cache.rebuilds == 2
        assert set(cache._entries) == set(graph.sorted_vertices())
        assert_cache_consistent(graph, cache, degree_rank_key(graph))
        cache.build_all()  # idempotent on content, still counted as a build
        assert cache.rebuilds == 3
        # vertices born after the bulk pass materialize lazily again
        graph.add_edge(1000, 1001)
        cache.ranked_neighbors(1000)
        assert_cache_consistent(graph, cache, degree_rank_key(graph))


class TestCustomKey:
    def test_weighted_style_key_with_refresh(self):
        graph = erdos_renyi(40, 100, seed=3)
        weights = {u: 1.0 + (u % 5) for u in graph.sorted_vertices()}

        def key(u):
            # .get: vertices born mid-stream carry the default unit weight
            w = weights.get(u, 1.0)
            return (-w / (graph.degree(u) + 1), -w, u)

        cache = graph.attach_rank_cache(key)
        for u in graph.sorted_vertices():
            cache.ranked_neighbors(u)
        rng = random.Random(9)
        for _ in range(100):
            u = rng.choice(graph.sorted_vertices())
            weights[u] = rng.uniform(0.5, 9.5)
            cache.refresh_key(u)
        random_mixed_updates(graph, rng, 50)
        assert_cache_consistent(graph, cache, key)

    def test_weighted_maintainer_keeps_cache_after_set_weight(self):
        graph = erdos_renyi(30, 70, seed=11)
        maintainer = WeightedMISMaintainer(graph, num_workers=4)
        cache = maintainer._program._rank_cache
        assert cache is not None
        for u in sorted(maintainer.graph.sorted_vertices())[:5]:
            maintainer.set_weight(u, 3.5 + u)
        maintainer.verify()
        weights = maintainer.weights
        g = maintainer.graph

        def key(u):
            w = weights[u]
            return (-w / (g.degree(u) + 1), -w, u)

        assert_cache_consistent(g, cache, key)


class TestAttachDetachCopy:
    def test_detach_stops_repairs(self):
        graph = erdos_renyi(20, 40, seed=2)
        cache = graph.attach_rank_cache(degree_rank_key(graph))
        for u in graph.sorted_vertices():
            cache.ranked_neighbors(u)
        graph.detach_rank_cache(cache)
        before = (cache.repairs, cache.rebuilds)
        edges = graph.sorted_edges()
        graph.remove_edge(*edges[0])
        assert (cache.repairs, cache.rebuilds) == before

    def test_default_cache_detach_allows_fresh_one(self):
        graph = erdos_renyi(10, 20, seed=4)
        first = graph.rank_cache()
        graph.detach_rank_cache(first)
        second = graph.rank_cache()
        assert second is not first

    def test_copy_does_not_share_caches(self):
        graph = erdos_renyi(20, 40, seed=8)
        cache = graph.rank_cache()
        for u in graph.sorted_vertices():
            cache.ranked_neighbors(u)
        clone = graph.copy()
        edges = clone.sorted_edges()
        clone.remove_edge(*edges[0])
        # the original's cache saw no mutation and still matches its graph
        assert_cache_consistent(graph, cache, degree_rank_key(graph))
        # and the clone builds its own, matching the mutated adjacency
        assert_cache_consistent(
            clone, clone.rank_cache(), degree_rank_key(clone)
        )
