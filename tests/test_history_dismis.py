"""Tests for the Section III strawman: history-replay dynamic DisMIS."""

import random

import pytest

from repro.core.doimis import DOIMISMaintainer
from repro.core.history_dismis import HistoryDisMIS
from repro.errors import WorkloadError
from repro.graph.generators import erdos_renyi, path_graph, star_graph
from repro.graph.updates import EdgeDeletion, EdgeInsertion, VertexInsertion
from repro.serial.greedy import greedy_mis


class TestStatic:
    def test_initial_set_is_fixpoint(self):
        g = erdos_renyi(40, 120, seed=1)
        h = HistoryDisMIS(g.copy(), num_workers=4)
        assert h.independent_set() == greedy_mis(g)

    def test_rounds_recorded(self):
        h = HistoryDisMIS(path_graph(9), num_workers=2)
        # a path's rounds grow with length (the order dependency)
        assert h.rounds >= 3
        assert h.init_metrics.supersteps == 3 * h.rounds + 1

    def test_len(self):
        h = HistoryDisMIS(star_graph(5), num_workers=2)
        assert len(h) == 5


class TestDynamic:
    def test_single_updates_track_oracle(self):
        g = erdos_renyi(30, 90, seed=2)
        h = HistoryDisMIS(g.copy(), num_workers=4)
        rng = random.Random(2)
        for _ in range(40):
            if rng.random() < 0.5 and h.graph.num_edges:
                edge = rng.choice(h.graph.sorted_edges())
                h.apply_batch([EdgeDeletion(*edge)])
            else:
                u, v = rng.randrange(30), rng.randrange(30)
                if u == v or h.graph.has_edge(u, v):
                    continue
                h.apply_batch([EdgeInsertion(u, v)])
            assert h.independent_set() == greedy_mis(h.graph)

    def test_batches_track_oracle(self):
        g = erdos_renyi(30, 90, seed=3)
        h = HistoryDisMIS(g.copy(), num_workers=4)
        edges = g.sorted_edges()[:12]
        h.apply_batch([EdgeDeletion(u, v) for u, v in edges])
        assert h.independent_set() == greedy_mis(h.graph)
        h.apply_batch([EdgeInsertion(u, v) for u, v in edges])
        assert h.independent_set() == greedy_mis(h.graph)

    def test_matches_doimis(self):
        from repro.bench.workloads import delete_reinsert_workload

        g = erdos_renyi(40, 130, seed=4)
        h = HistoryDisMIS(g.copy(), num_workers=4)
        d = DOIMISMaintainer(g.copy(), num_workers=4)
        for op in delete_reinsert_workload(g, 15, seed=1):
            h.apply_batch([op])
            d.apply_batch([op])
            assert h.independent_set() == d.independent_set()

    def test_new_vertex_via_edge(self):
        h = HistoryDisMIS(path_graph(4), num_workers=2)
        h.apply_batch([EdgeInsertion(3, 99)])
        assert h.independent_set() == greedy_mis(h.graph)

    def test_empty_batch_noop(self):
        h = HistoryDisMIS(path_graph(4), num_workers=2)
        h.apply_batch([])
        assert h.batches_applied == 0

    def test_unsupported_op(self):
        h = HistoryDisMIS(path_graph(4), num_workers=2)
        with pytest.raises(WorkloadError):
            h.apply_batch([VertexInsertion(9)])

    def test_apply_stream(self):
        g = erdos_renyi(25, 70, seed=5)
        h = HistoryDisMIS(g.copy(), num_workers=4)
        ops = [EdgeDeletion(u, v) for u, v in g.sorted_edges()[:9]]
        h.apply_stream(ops, batch_size=3)
        assert h.batches_applied == 3
        assert h.independent_set() == greedy_mis(h.graph)


class TestSectionIIIDefects:
    """The two defects the paper calls out, measured."""

    @pytest.fixture(scope="class")
    def pair(self):
        from repro.bench.workloads import delete_reinsert_workload

        g = erdos_renyi(80, 320, seed=6)
        h = HistoryDisMIS(g.copy(), num_workers=4)
        d = DOIMISMaintainer(g.copy(), num_workers=4)
        for op in delete_reinsert_workload(g, 30, seed=2):
            h.apply_batch([op])
            d.apply_batch([op])
        return h, d

    def test_replay_runs_full_round_structure(self, pair):
        history, doimis = pair
        # >= 3 supersteps per round per update vs DOIMIS's few per update
        assert history.update_metrics.supersteps > 3 * doimis.update_metrics.supersteps

    def test_history_memory_is_m_times_k(self, pair):
        history, doimis = pair
        assert history.history_memory_mb > 0
        assert (
            history.update_metrics.peak_worker_memory_bytes
            > doimis.update_metrics.peak_worker_memory_bytes
        )

    def test_replay_ships_more(self, pair):
        history, doimis = pair
        assert history.update_metrics.bytes_sent > doimis.update_metrics.bytes_sent
