"""Unit tests for the partitioned graph view and guest directory."""

import pytest

from repro.graph.distributed_graph import DistributedGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi
from repro.pregel.partition import ExplicitPartitioner, HashPartitioner


def _two_worker_line():
    """0 - 1 - 2 with 0,2 on worker 0 and 1 on worker 1."""
    g = DynamicGraph.from_edges([(0, 1), (1, 2)])
    part = ExplicitPartitioner({0: 0, 1: 1, 2: 0}, num_workers=2)
    return DistributedGraph(g, part)


class TestPlacement:
    def test_worker_of_delegates(self):
        dg = _two_worker_line()
        assert dg.worker_of(0) == 0
        assert dg.worker_of(1) == 1

    def test_is_remote_pair(self):
        dg = _two_worker_line()
        assert dg.is_remote_pair(0, 1)
        assert not dg.is_remote_pair(0, 2)

    def test_guest_machines_initial(self):
        dg = _two_worker_line()
        # 1 lives on worker 1; its neighbours 0, 2 live on worker 0
        assert dg.guest_machines(1) == [0]
        assert dg.guest_machines(0) == [1]
        # 0 and 2 are not adjacent: no copies needed for 2 beyond worker 1
        assert dg.guest_machines(2) == [1]

    def test_worker_vertex_counts(self):
        dg = _two_worker_line()
        assert dg.worker_vertex_counts() == {0: 2, 1: 1}

    def test_replication_factor(self):
        dg = _two_worker_line()
        # each vertex has exactly one guest copy here
        assert dg.replication_factor() == pytest.approx(2.0)


class TestDirectoryMaintenance:
    def test_add_edge_creates_guest_copies(self):
        g = DynamicGraph.from_edges([], vertices=[0, 1])
        part = ExplicitPartitioner({0: 0, 1: 1}, num_workers=2)
        dg = DistributedGraph(g, part)
        assert dg.guest_machines(0) == []
        gained = dg.add_edge(0, 1)
        assert gained == (1, 1)
        assert dg.guest_machines(0) == [1]

    def test_second_edge_to_same_machine_is_refcounted(self):
        g = DynamicGraph.from_edges([], vertices=[0, 1, 3])
        part = ExplicitPartitioner({0: 0, 1: 1, 3: 1}, num_workers=2)
        dg = DistributedGraph(g, part)
        assert dg.add_edge(0, 1) == (1, 1)
        # 3 also lives on worker 1: no *new* copy of 0 needed there
        assert dg.add_edge(0, 3) == (0, 1)
        assert dg.num_guest_copies(0) == 1

    def test_remove_edge_garbage_collects_copies(self):
        dg = _two_worker_line()
        lost = dg.remove_edge(0, 1)
        assert lost == (1, 0)  # 0 loses its copy on worker 1; 1 keeps worker 0 (edge to 2)
        assert dg.guest_machines(0) == []
        assert dg.guest_machines(1) == [0]

    def test_local_edge_never_creates_copies(self):
        g = DynamicGraph.from_edges([], vertices=[0, 2])
        part = ExplicitPartitioner({0: 0, 2: 0}, num_workers=2)
        dg = DistributedGraph(g, part)
        assert dg.add_edge(0, 2) == (0, 0)
        assert dg.guest_machines(0) == []

    def test_remove_vertex_cleans_directory(self):
        dg = _two_worker_line()
        removed = dg.remove_vertex(1)
        assert removed == [(1, 0), (1, 2)]
        assert dg.guest_machines(0) == []
        assert not dg.has_vertex(1)

    def test_add_vertex(self):
        dg = _two_worker_line()
        dg.add_vertex(9)
        assert dg.has_vertex(9)
        assert dg.guest_machines(9) == []

    def test_directory_consistent_after_many_updates(self):
        g = erdos_renyi(30, 60, seed=4)
        dg = DistributedGraph(g, HashPartitioner(3))
        edges = g.sorted_edges()
        for u, v in edges[:30]:
            dg.remove_edge(u, v)
        for u, v in edges[:30]:
            dg.add_edge(u, v)
        # rebuild from scratch and compare the directory
        fresh = DistributedGraph(g.copy(), HashPartitioner(3))
        for u in g.vertices():
            assert sorted(dg.guest_machines(u)) == sorted(fresh.guest_machines(u))


class TestMemoryModel:
    def test_structural_memory_accounts_guests(self):
        dg = _two_worker_line()
        mem = dg.structural_memory_bytes({u: 1 for u in (0, 1, 2)})
        assert set(mem) == {0, 1}
        assert mem[0] > 0 and mem[1] > 0
        # worker 0 hosts two local vertices + one guest; worker 1 one local
        # vertex + two guests: worker 0 should be heavier (more adjacency)
        assert mem[0] > mem[1]

    def test_more_workers_more_total_memory(self):
        g = erdos_renyi(40, 120, seed=5)
        small = DistributedGraph(g.copy(), HashPartitioner(2))
        large = DistributedGraph(g.copy(), HashPartitioner(8))
        state = {u: 1 for u in g.vertices()}
        assert sum(large.structural_memory_bytes(state).values()) > sum(
            small.structural_memory_bytes(state).values()
        )
