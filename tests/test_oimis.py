"""Unit tests for OIMIS (Algorithm 2) on both engines."""

import pytest

from repro.core.activation import ActivationStrategy
from repro.core.oimis import (
    OIMISProgram,
    independent_set_from_states,
    run_oimis,
    run_oimis_pregel,
)
from repro.core.verification import is_greedy_fixpoint, is_maximal_independent_set
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.serial.greedy import greedy_mis


class TestStaticResults:
    def test_empty_graph(self):
        run = run_oimis(DynamicGraph())
        assert run.independent_set == set()
        assert run.metrics.supersteps == 0

    def test_isolated_vertices_all_in(self):
        g = DynamicGraph.from_edges([], vertices=[1, 2, 3])
        assert run_oimis(g).independent_set == {1, 2, 3}

    def test_single_edge_lower_id_wins(self):
        g = DynamicGraph.from_edges([(1, 2)])
        assert run_oimis(g).independent_set == {1}

    def test_path(self):
        assert run_oimis(path_graph(5)).independent_set == {0, 2, 4}

    def test_star_takes_leaves(self):
        assert run_oimis(star_graph(6)).independent_set == set(range(1, 7))

    def test_clique_takes_minimum(self):
        assert run_oimis(complete_graph(5)).independent_set == {0}

    def test_cycle(self):
        result = run_oimis(cycle_graph(7)).independent_set
        assert result == greedy_mis(cycle_graph(7))
        assert len(result) == 3

    def test_paper_figure_graph(self, paper_figure_graph):
        assert run_oimis(paper_figure_graph).independent_set == {1, 3, 4}

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_greedy_oracle_random(self, seed):
        g = erdos_renyi(70, 210, seed=seed)
        run = run_oimis(g)
        assert run.independent_set == greedy_mis(g)
        assert is_maximal_independent_set(g, run.independent_set)
        assert is_greedy_fixpoint(g, run.independent_set)

    def test_structured_graphs(self, structured_graph):
        assert run_oimis(structured_graph).independent_set == greedy_mis(
            structured_graph
        )


class TestInitializationIndependence:
    """The fixpoint must not depend on initial states (Section IV claim)."""

    @pytest.mark.parametrize("init", ["all_false", "alternating", "adversarial"])
    def test_any_initialization_converges_to_fixpoint(self, init):
        g = erdos_renyi(40, 120, seed=11)
        if init == "all_false":
            states = {u: False for u in g.vertices()}
        elif init == "alternating":
            states = {u: bool(u % 2) for u in g.vertices()}
        else:
            # adversarial: complement of the right answer
            right = greedy_mis(g)
            states = {u: u not in right for u in g.vertices()}
        run = run_oimis(g, initial_states=states)
        assert run.independent_set == greedy_mis(g)


class TestStrategies:
    @pytest.mark.parametrize("strategy", list(ActivationStrategy))
    def test_all_strategies_same_result(self, strategy):
        g = erdos_renyi(60, 200, seed=3)
        assert run_oimis(g, strategy=strategy).independent_set == greedy_mis(g)

    def test_lr_reduces_active_vertices(self):
        g = erdos_renyi(100, 400, seed=5)
        base = run_oimis(g, strategy=ActivationStrategy.ALL)
        lr = run_oimis(g, strategy=ActivationStrategy.LOWER_RANKING)
        assert lr.metrics.active_vertices < base.metrics.active_vertices

    def test_ss_reduces_further(self):
        g = erdos_renyi(100, 400, seed=5)
        lr = run_oimis(g, strategy=ActivationStrategy.LOWER_RANKING)
        ss = run_oimis(g, strategy=ActivationStrategy.SAME_STATUS)
        assert ss.metrics.active_vertices <= lr.metrics.active_vertices

    def test_ss_never_more_supersteps(self):
        g = erdos_renyi(100, 400, seed=6)
        base = run_oimis(g, strategy=ActivationStrategy.ALL)
        ss = run_oimis(g, strategy=ActivationStrategy.SAME_STATUS)
        assert ss.metrics.supersteps <= base.metrics.supersteps

    def test_strategy_paper_names(self):
        assert ActivationStrategy.ALL.paper_name == "DOIMIS"
        assert ActivationStrategy.LOWER_RANKING.paper_name == "DOIMIS+"
        assert ActivationStrategy.SAME_STATUS.paper_name == "DOIMIS*"


class TestFullScan:
    def test_scall_same_result_more_work(self):
        g = erdos_renyi(80, 300, seed=9)
        fast = run_oimis(g)
        dgraph_scan = run_oimis_scan = None
        from repro.graph.distributed_graph import DistributedGraph
        from repro.pregel.partition import HashPartitioner
        from repro.scaleg.engine import ScaleGEngine

        engine = ScaleGEngine(DistributedGraph(g, HashPartitioner(10)))
        scan = engine.run(OIMISProgram(full_scan=True))
        assert independent_set_from_states(scan.states) == fast.independent_set
        assert scan.metrics.compute_work > fast.metrics.compute_work
        # communication identical: the same states change in the same steps
        assert scan.metrics.bytes_sent == fast.metrics.bytes_sent


class TestPregelVariant:
    @pytest.mark.parametrize("seed", range(4))
    def test_pregel_matches_scaleg(self, seed):
        g = erdos_renyi(50, 160, seed=seed)
        assert run_oimis_pregel(g).independent_set == run_oimis(g).independent_set

    def test_pregel_costs_more_communication(self):
        g = erdos_renyi(80, 320, seed=2)
        pregel = run_oimis_pregel(g)
        scaleg = run_oimis(g)
        assert pregel.metrics.bytes_sent > scaleg.metrics.bytes_sent


class TestMetricsShape:
    def test_supersteps_bounded_by_dependency_depth(self):
        # a star's greedy dependency depth is 1: it settles in O(1)
        # supersteps regardless of size
        run = run_oimis(star_graph(60))
        assert run.metrics.supersteps <= 3

    def test_path_needs_linear_supersteps(self):
        # the greedy fixpoint of a path propagates one vertex per superstep:
        # the paper's O(n) superstep bound is tight here
        run = run_oimis(path_graph(40))
        assert run.metrics.supersteps > 30

    def test_sync_bytes_is_one_status_byte(self):
        program = OIMISProgram()
        assert program.sync_bytes(True) == 1
        assert program.state_bytes(False) == 1

    def test_run_repr(self):
        run = run_oimis(path_graph(3))
        assert "|MIS|=2" in repr(run)
