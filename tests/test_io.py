"""Unit tests for graph I/O (SNAP edge lists and adjacency format)."""

import io

import pytest

from repro.errors import GraphError
from repro.graph import io as gio
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi


class TestEdgeList:
    def test_roundtrip_string(self):
        g = erdos_renyi(20, 40, seed=1)
        text = gio.edge_list_string(g)
        back = gio.read_edge_list(io.StringIO(text))
        assert back == g

    def test_roundtrip_file(self, tmp_path):
        g = erdos_renyi(15, 30, seed=2)
        path = tmp_path / "graph.txt"
        gio.write_edge_list(g, path)
        assert gio.read_edge_list(path) == g

    def test_header_written(self, tmp_path):
        g = DynamicGraph.from_edges([(1, 2)])
        path = tmp_path / "g.txt"
        gio.write_edge_list(g, path, header=True)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#") and "Nodes: 2" in first

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\n% other comment\n1 2\n"
        g = gio.read_edge_list(io.StringIO(text))
        assert g.num_edges == 1

    def test_separator_variants(self):
        g = gio.read_edge_list(io.StringIO("1\t2\n3,4\n5 6\n"))
        assert g.num_edges == 3

    def test_duplicate_edges_collapse(self):
        g = gio.read_edge_list(io.StringIO("1 2\n2 1\n1 2\n"))
        assert g.num_edges == 1

    def test_self_loops_skipped_by_default(self):
        g = gio.read_edge_list(io.StringIO("1 1\n1 2\n"))
        assert g.num_edges == 1

    def test_self_loops_rejected_when_strict(self):
        with pytest.raises(GraphError):
            gio.read_edge_list(io.StringIO("1 1\n"), skip_self_loops=False)

    def test_malformed_line_reports_lineno(self):
        with pytest.raises(GraphError, match="line 2"):
            gio.read_edge_list(io.StringIO("1 2\nbogus\n"))

    def test_non_integer_rejected(self):
        with pytest.raises(GraphError, match="non-integer"):
            gio.read_edge_list(io.StringIO("a b\n"))

    def test_iter_edge_list_order(self):
        pairs = list(gio.iter_edge_list(io.StringIO("3 4\n1 2\n")))
        assert pairs == [(3, 4), (1, 2)]


class TestAdjacency:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(12, 20, seed=3)
        path = tmp_path / "adj.txt"
        gio.write_adjacency(g, path)
        assert gio.read_adjacency(path) == g

    def test_isolated_vertices_preserved(self, tmp_path):
        g = DynamicGraph.from_edges([(1, 2)], vertices=[7])
        path = tmp_path / "adj.txt"
        gio.write_adjacency(g, path)
        back = gio.read_adjacency(path)
        assert back.has_vertex(7) and back.degree(7) == 0

    def test_missing_colon_rejected(self):
        with pytest.raises(GraphError, match="missing ':'"):
            gio.read_adjacency(io.StringIO("1 2 3\n"))

    def test_non_integer_rejected(self):
        with pytest.raises(GraphError):
            gio.read_adjacency(io.StringIO("x: 1 2\n"))

    def test_comments_skipped(self):
        g = gio.read_adjacency(io.StringIO("# c\n1: 2\n"))
        assert g.num_edges == 1
