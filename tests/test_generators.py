"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import WorkloadError
from repro.graph import generators as gen


class TestErdosRenyi:
    def test_exact_sizes(self):
        g = gen.erdos_renyi(50, 100, seed=3)
        assert g.num_vertices == 50
        assert g.num_edges == 100

    def test_deterministic(self):
        a = gen.erdos_renyi(40, 80, seed=9)
        b = gen.erdos_renyi(40, 80, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = gen.erdos_renyi(40, 80, seed=1)
        b = gen.erdos_renyi(40, 80, seed=2)
        assert a != b

    def test_too_many_edges_rejected(self):
        with pytest.raises(WorkloadError):
            gen.erdos_renyi(4, 7, seed=0)

    def test_zero_edges(self):
        g = gen.erdos_renyi(10, 0, seed=0)
        assert g.num_edges == 0
        assert g.num_vertices == 10


class TestBarabasiAlbert:
    def test_sizes(self):
        g = gen.barabasi_albert(100, 3, seed=1)
        assert g.num_vertices == 100
        # clique seed of 4 + 3 per additional vertex
        assert g.num_edges == 6 + 3 * 96

    def test_heavy_tail(self):
        g = gen.barabasi_albert(300, 2, seed=5)
        assert g.max_degree() > 4 * g.average_degree()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            gen.barabasi_albert(3, 0, seed=0)
        with pytest.raises(WorkloadError):
            gen.barabasi_albert(2, 3, seed=0)

    def test_deterministic(self):
        assert gen.barabasi_albert(50, 2, seed=4) == gen.barabasi_albert(50, 2, seed=4)


class TestChungLu:
    def test_average_degree_close_to_target(self):
        g = gen.chung_lu(500, 10.0, seed=2)
        assert 6.0 < g.average_degree() < 12.0

    def test_skewed_degrees(self):
        g = gen.chung_lu(500, 8.0, exponent=2.2, seed=3)
        assert g.max_degree() > 3 * g.average_degree()

    def test_tiny_graph(self):
        g = gen.chung_lu(1, 2.0, seed=0)
        assert g.num_vertices == 1 and g.num_edges == 0

    def test_deterministic(self):
        assert gen.chung_lu(100, 6.0, seed=8) == gen.chung_lu(100, 6.0, seed=8)


class TestWattsStrogatz:
    def test_degree_preserved_in_expectation(self):
        g = gen.watts_strogatz(60, 4, beta=0.2, seed=1)
        assert g.num_vertices == 60
        assert g.num_edges == 120  # rewiring preserves edge count

    def test_beta_zero_is_lattice(self):
        g = gen.watts_strogatz(10, 2, beta=0.0, seed=0)
        assert all(g.degree(u) == 2 for u in g.vertices())

    def test_validation(self):
        with pytest.raises(WorkloadError):
            gen.watts_strogatz(10, 3, beta=0.1, seed=0)  # odd k
        with pytest.raises(WorkloadError):
            gen.watts_strogatz(4, 4, beta=0.1, seed=0)  # k >= n


class TestStructured:
    def test_path(self):
        g = gen.path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = gen.cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(u) == 2 for u in g.vertices())
        with pytest.raises(WorkloadError):
            gen.cycle_graph(2)

    def test_star(self):
        g = gen.star_graph(7)
        assert g.degree(0) == 7
        assert g.num_edges == 7

    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.num_edges == 15

    def test_complete_bipartite(self):
        g = gen.complete_bipartite(3, 4)
        assert g.num_edges == 12
        assert g.degree(0) == 4 and g.degree(5) == 3


class TestWithExactEdges:
    def test_trims_down(self):
        g = gen.erdos_renyi(30, 100, seed=1)
        gen.with_exact_edges(g, 50, seed=2)
        assert g.num_edges == 50

    def test_pads_up(self):
        g = gen.erdos_renyi(30, 20, seed=1)
        gen.with_exact_edges(g, 60, seed=2)
        assert g.num_edges == 60

    def test_noop_when_exact(self):
        g = gen.erdos_renyi(30, 40, seed=1)
        before = g.copy()
        gen.with_exact_edges(g, 40, seed=2)
        assert g == before

    def test_rejects_impossible_target(self):
        g = gen.erdos_renyi(4, 2, seed=1)
        with pytest.raises(WorkloadError):
            gen.with_exact_edges(g, 10, seed=0)

    def test_deterministic(self):
        a = gen.with_exact_edges(gen.erdos_renyi(30, 80, seed=1), 40, seed=5)
        b = gen.with_exact_edges(gen.erdos_renyi(30, 80, seed=1), 40, seed=5)
        assert a == b


def test_paper_example_graph_shape():
    g = gen.paper_example_graph()
    assert g.num_vertices == 6
    assert g.degree(4) == 3
