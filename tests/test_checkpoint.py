"""Tests for checkpoint save/load and update-stream file I/O."""

import io

import pytest

from repro import MISMaintainer
from repro.errors import CheckpointError, ReproError
from repro.graph.generators import erdos_renyi
from repro.graph.io import read_update_stream, write_update_stream
from repro.graph.updates import EdgeDeletion, EdgeInsertion
from repro.serial.greedy import greedy_mis
from repro.bench.workloads import delete_reinsert_workload


class TestUpdateStreamIO:
    def test_roundtrip(self):
        ops = [EdgeInsertion(1, 2), EdgeDeletion(3, 4), EdgeInsertion(5, 6)]
        buffer = io.StringIO()
        write_update_stream(ops, buffer)
        buffer.seek(0)
        assert read_update_stream(buffer) == ops

    def test_aliases_and_comments(self):
        text = "# header\ninsert 1 2\n+ 3 4\ndelete 1 2\n- 3 4\n\n"
        ops = read_update_stream(io.StringIO(text))
        assert ops == [
            EdgeInsertion(1, 2), EdgeInsertion(3, 4),
            EdgeDeletion(1, 2), EdgeDeletion(3, 4),
        ]

    def test_malformed_line(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError, match="line 1"):
            read_update_stream(io.StringIO("ins 1\n"))
        with pytest.raises(GraphError, match="unknown operation"):
            read_update_stream(io.StringIO("upsert 1 2\n"))
        with pytest.raises(GraphError, match="non-integer"):
            read_update_stream(io.StringIO("ins a b\n"))

    def test_file_roundtrip(self, tmp_path):
        ops = [EdgeInsertion(1, 2), EdgeDeletion(1, 2)]
        path = tmp_path / "ops.txt"
        write_update_stream(ops, path)
        assert read_update_stream(path) == ops


class TestCheckpoint:
    def test_roundtrip_preserves_everything(self, tmp_path):
        g = erdos_renyi(40, 120, seed=3)
        m = MISMaintainer(g.copy(), num_workers=4)
        ops = delete_reinsert_workload(g, 10, seed=1)
        m.apply_stream(ops[:10], batch_size=5)
        path = tmp_path / "ck.json"
        m.save(path)

        restored = MISMaintainer.load(path)
        assert restored.graph == m.graph
        assert restored.independent_set() == m.independent_set()
        assert restored.updates_applied == m.updates_applied
        assert restored.num_workers == m.num_workers
        assert restored.strategy == m.strategy

    def test_restore_skips_recomputation(self, tmp_path):
        g = erdos_renyi(40, 120, seed=4)
        m = MISMaintainer(g.copy(), num_workers=4)
        path = tmp_path / "ck.json"
        m.save(path)
        restored = MISMaintainer.load(path)
        # no initial OIMIS run happened: zero init supersteps
        assert restored.init_metrics.supersteps == 0

    def test_restored_maintainer_keeps_working(self, tmp_path):
        g = erdos_renyi(40, 120, seed=5)
        m = MISMaintainer(g.copy(), num_workers=4)
        path = tmp_path / "ck.json"
        m.save(path)
        restored = MISMaintainer.load(path)
        for u, v in restored.graph.sorted_edges()[:8]:
            restored.delete_edge(u, v)
        assert restored.independent_set() == greedy_mis(restored.graph)

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(CheckpointError, match="not a repro-mis-checkpoint"):
            MISMaintainer.load(path)

    def test_load_verify_catches_tampering(self, tmp_path):
        import json

        g = erdos_renyi(30, 90, seed=6)
        m = MISMaintainer(g.copy(), num_workers=4)
        path = tmp_path / "ck.json"
        m.save(path)
        payload = json.loads(path.read_text())
        # corrupt the stored set: drop a member so it is no longer maximal
        payload["independent_set"] = payload["independent_set"][1:]
        path.write_text(json.dumps(payload))
        from repro.errors import VerificationError

        with pytest.raises(VerificationError):
            MISMaintainer.load(path)
        # verify=False trusts the file (documented escape hatch)
        restored = MISMaintainer.load(path, verify=False)
        assert restored.graph == m.graph

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot load checkpoint"):
            MISMaintainer.load(tmp_path / "nope.json")

    def test_load_truncated_json(self, tmp_path):
        g = erdos_renyi(20, 40, seed=7)
        m = MISMaintainer(g, num_workers=2)
        path = tmp_path / "ck.json"
        m.save(path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupt JSON"):
            MISMaintainer.load(path)

    def test_load_rejects_future_version(self, tmp_path):
        import json

        g = erdos_renyi(20, 40, seed=7)
        m = MISMaintainer(g, num_workers=2)
        path = tmp_path / "ck.json"
        m.save(path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="version 99"):
            MISMaintainer.load(path)
        payload["version"] = "1"  # wrong type counts as unsupported too
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="unsupported checkpoint version"):
            MISMaintainer.load(path)

    def test_load_rejects_negative_vertex_ids(self, tmp_path):
        import json

        g = erdos_renyi(20, 40, seed=7)
        m = MISMaintainer(g, num_workers=2)
        path = tmp_path / "ck.json"
        m.save(path)
        payload = json.loads(path.read_text())
        payload["vertices"].append(-3)
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="negative vertex id"):
            MISMaintainer.load(path)

    def test_load_malformed_payload_is_clean(self, tmp_path):
        import json

        g = erdos_renyi(20, 40, seed=7)
        m = MISMaintainer(g, num_workers=2)
        path = tmp_path / "ck.json"
        m.save(path)
        payload = json.loads(path.read_text())
        del payload["edges"]
        path.write_text(json.dumps(payload))
        # a missing key surfaces as CheckpointError, never a bare KeyError
        with pytest.raises(CheckpointError, match="malformed payload"):
            MISMaintainer.load(path)
        assert issubclass(CheckpointError, ReproError)

    def test_load_rejects_bad_worker_count(self, tmp_path):
        import json

        g = erdos_renyi(20, 40, seed=7)
        m = MISMaintainer(g, num_workers=2)
        path = tmp_path / "ck.json"
        m.save(path)
        payload = json.loads(path.read_text())
        payload["num_workers"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="num_workers"):
            MISMaintainer.load(path)

    def test_isolated_vertices_survive_checkpoint(self, tmp_path):
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph.from_edges([(1, 2)], vertices=[9])
        m = MISMaintainer(g, num_workers=2)
        path = tmp_path / "ck.json"
        m.save(path)
        restored = MISMaintainer.load(path)
        assert restored.graph.has_vertex(9)
        assert 9 in restored.independent_set()
