"""Unit tests for the MISMaintainer public facade."""

import pytest

from repro import MISMaintainer
from repro.core.activation import ActivationStrategy
from repro.errors import VerificationError
from repro.graph.generators import erdos_renyi
from repro.graph.io import write_edge_list
from repro.serial.greedy import greedy_mis


class TestConstruction:
    def test_from_edges(self):
        m = MISMaintainer.from_edges([(1, 2), (2, 3), (3, 4)])
        assert sorted(m.independent_set()) == [1, 4]

    def test_from_edges_with_isolated_vertices(self):
        m = MISMaintainer.from_edges([(1, 2)], vertices=[9])
        assert 9 in m.independent_set()

    def test_from_edge_list_file(self, tmp_path):
        g = erdos_renyi(20, 50, seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        m = MISMaintainer.from_edge_list_file(path)
        assert m.independent_set() == greedy_mis(g)

    def test_default_strategy_is_same_status(self):
        m = MISMaintainer.from_edges([(1, 2)])
        assert m.strategy is ActivationStrategy.SAME_STATUS

    def test_num_workers_configurable(self):
        m = MISMaintainer.from_edges([(1, 2)], num_workers=3)
        assert m.num_workers == 3


class TestVerify:
    def test_verify_passes_after_updates(self):
        g = erdos_renyi(30, 90, seed=2)
        m = MISMaintainer(g.copy())
        for u, v in g.sorted_edges()[:5]:
            m.delete_edge(u, v)
            m.verify()

    def test_verify_detects_corruption(self):
        m = MISMaintainer.from_edges([(1, 2), (2, 3)])
        m._states[2] = True  # corrupt: 2 is adjacent to members
        with pytest.raises(VerificationError):
            m.verify()


class TestStats:
    def test_stats_snapshot(self):
        g = erdos_renyi(25, 60, seed=3)
        m = MISMaintainer(g.copy())
        edge = g.sorted_edges()[0]
        m.delete_edge(*edge)
        stats = m.stats()
        assert stats["vertices"] == g.num_vertices
        assert stats["edges"] == g.num_edges - 1
        assert stats["updates_applied"] == 1.0
        assert stats["set_size"] == float(len(m))
        assert stats["supersteps"] >= 0
        assert "communication_mb" in stats and "wall_time_s" in stats


class TestDocExample:
    def test_maintainer_docstring_example(self):
        m = MISMaintainer.from_edges([(1, 2), (2, 3), (3, 4)])
        assert sorted(m.independent_set()) == [1, 4]
        m.delete_edge(2, 3)
        assert sorted(m.independent_set()) == [1, 3]
        m.verify()

    def test_package_docstring_example(self):
        m = MISMaintainer.from_edges([(1, 2), (2, 3), (3, 4), (4, 5)])
        assert sorted(m.independent_set()) == [1, 3, 5]
        m.insert_edge(3, 5)
        assert sorted(m.independent_set()) == [1, 4]
