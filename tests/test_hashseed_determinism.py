"""Cross-process determinism: same MIS under different PYTHONHASHSEEDs.

Python's set iteration order depends on hash internals, which
``PYTHONHASHSEED`` perturbs.  After the D1 sweep (sorted iteration wherever
order can leak into results), the same update batch must produce the
identical maintained MIS — and the identical cost meters — in any process.
"""

import os
import subprocess
import sys
from pathlib import Path

import repro

_SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])

_SCRIPT = """
from repro.bench.workloads import delete_reinsert_workload
from repro.core.maintainer import MISMaintainer
from repro.graph import generators

graph = generators.barabasi_albert(120, 3, seed=11)
maintainer = MISMaintainer(graph, num_workers=4)
ops = delete_reinsert_workload(maintainer.graph, 30, seed=7)
maintainer.apply_stream(ops, batch_size=5)
maintainer.verify()
members = ",".join(map(str, sorted(maintainer.independent_set())))
meters = maintainer.update_metrics.summary()
print(members)
print(meters["supersteps"], meters["communication_mb"])
"""


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = _SRC_ROOT
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_same_mis_under_different_hash_seeds():
    out_a = _run_with_hashseed("0")
    out_b = _run_with_hashseed("1")
    assert out_a == out_b
    members_line = out_a.splitlines()[0]
    assert members_line  # non-empty independent set
