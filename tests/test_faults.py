"""Tests for the fault-injection layer: plans, injector, recovery, chaos.

The central claim under test is the chaos oracle: because the maintained
set is the unique greedy fixpoint (Theorems 4.2/6.1) and recovery aborts a
crashed superstep *before* its barrier commit, a run that survives injected
faults must produce a bit-identical final set AND bit-identical logical
meters — all overhead lands on the ``recovery_*`` family.
"""

import pytest

from repro.core.activation import ActivationStrategy
from repro.core.dismis import DisMISPregelProgram
from repro.core.doimis import DOIMISMaintainer
from repro.core.maintainer import MISMaintainer
from repro.core.oimis import OIMISProgram, independent_set_from_states
from repro.errors import (
    CheckpointError,
    SyncRetryExhausted,
    SuperstepLimitExceeded,
    WorkerFailure,
    WorkloadError,
)
from repro.faults import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    StragglerSpec,
    SuperstepCheckpoint,
    SyncDropSpec,
    SyncDuplicateSpec,
    resolve_faults,
)
from repro.graph.distributed_graph import DistributedGraph
from repro.graph.generators import erdos_renyi, path_graph
from repro.pregel.engine import PregelEngine
from repro.pregel.partition import HashPartitioner
from repro.scaleg.engine import ScaleGEngine


def _dgraph(graph, workers=4):
    return DistributedGraph(graph, HashPartitioner(workers))


def _logical(metrics):
    return (
        metrics.supersteps, metrics.active_vertices, metrics.state_changes,
        metrics.messages, metrics.remote_messages, metrics.bytes_sent,
        metrics.compute_work,
    )


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(WorkloadError, match="crash_prob"):
            FaultPlan(crash_prob=1.5)
        with pytest.raises(WorkloadError, match="drop_prob"):
            FaultPlan(drop_prob=-0.1)
        with pytest.raises(WorkloadError, match="max_drop_attempts"):
            FaultPlan(max_drop_attempts=0)
        with pytest.raises(WorkloadError, match="max_drop_attempts"):
            FaultPlan(max_drop_attempts=99)

    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(crash_prob=0.1).is_empty
        assert not FaultPlan(crashes=(CrashSpec(0, 0),)).is_empty

    def test_draws_are_deterministic(self):
        a = FaultPlan(seed=7, crash_prob=0.5)
        b = FaultPlan(seed=7, crash_prob=0.5)
        coords = [(r, s, w) for r in range(3) for s in range(5) for w in range(4)]
        assert [a.crash_at(*c) for c in coords] == [b.crash_at(*c) for c in coords]

    def test_seed_changes_schedule(self):
        coords = [(r, s, w) for r in range(4) for s in range(8) for w in range(4)]
        a = [FaultPlan(seed=1, crash_prob=0.5).crash_at(*c) for c in coords]
        b = [FaultPlan(seed=2, crash_prob=0.5).crash_at(*c) for c in coords]
        assert a != b

    def test_explicit_specs_pin_coordinates(self):
        plan = FaultPlan(
            crashes=(CrashSpec(superstep=2, worker=1, run=0),),
            drops=(SyncDropSpec(superstep=1, vertex=5, attempts=2),),
            duplicates=(SyncDuplicateSpec(superstep=0, vertex=3, copies=4,
                                          machine=2),),
            stragglers=(StragglerSpec(superstep=1, worker=0, delay_s=0.5),),
        )
        assert plan.crash_at(0, 2, 1)
        assert not plan.crash_at(1, 2, 1)  # run pinned
        assert not plan.crash_at(0, 2, 0)
        # drop matches any run / any machine when unpinned
        assert plan.sync_drops(9, 1, 5, 0) == 2
        assert plan.sync_drops(9, 1, 5, 3) == 2
        assert plan.sync_drops(9, 0, 5, 3) == 0
        assert plan.sync_duplicates(0, 0, 3, 2) == 4
        assert plan.sync_duplicates(0, 0, 3, 1) == 0  # machine pinned
        assert plan.straggler_delay(4, 1, 0) == 0.5
        assert plan.straggler_delay(4, 1, 1) == 0.0

    def test_seeded_drop_attempts_bounded(self):
        plan = FaultPlan(seed=3, drop_prob=1.0, max_drop_attempts=4)
        attempts = {plan.sync_drops(0, s, v, 0)
                    for s in range(10) for v in range(50)}
        assert attempts  # every record drops at prob 1.0
        assert all(1 <= a <= 4 for a in attempts)

    def test_reorder_seed_is_stable(self):
        plan = FaultPlan(seed=5, reorder_prob=1.0)
        assert plan.reorder_seed(0, 3) == plan.reorder_seed(0, 3)
        assert plan.reorder_seed(0, 3) != plan.reorder_seed(0, 4)


class TestFaultInjector:
    def test_resolve_faults(self):
        assert resolve_faults(None) is None
        assert resolve_faults(FaultPlan()) is None  # empty plan disables
        assert resolve_faults(FaultInjector(FaultPlan())) is None
        injector = FaultInjector(FaultPlan(crash_prob=0.1))
        assert resolve_faults(injector) is injector
        resolved = resolve_faults(FaultPlan(crash_prob=0.1))
        assert isinstance(resolved, FaultInjector)

    def test_faults_fire_once_per_coordinate(self):
        injector = FaultInjector(FaultPlan(crashes=(CrashSpec(1, 2),)))
        injector.begin_run()
        assert injector.crashed_workers(1, range(4)) == [2]
        # the replayed superstep must not crash again
        assert injector.crashed_workers(1, range(4)) == []
        assert injector.stats.crashes == 1

    def test_run_counter_separates_runs(self):
        injector = FaultInjector(FaultPlan(crashes=(CrashSpec(0, 1, run=None),)))
        injector.begin_run()  # run 0
        assert injector.crashed_workers(0, range(4)) == [1]
        injector.begin_run()  # run 1: same superstep coordinate fires again
        assert injector.crashed_workers(0, range(4)) == [1]
        assert injector.stats.crashes == 2

    def test_backoff_series(self):
        injector = FaultInjector(FaultPlan(drop_prob=0.1), backoff_base_s=0.01)
        assert injector.backoff_time(1) == pytest.approx(0.01)
        assert injector.backoff_time(2) == pytest.approx(0.03)
        assert injector.backoff_time(3) == pytest.approx(0.07)

    def test_permute_requires_reorder_and_size(self):
        injector = FaultInjector(FaultPlan(seed=2, reorder_prob=1.0))
        injector.begin_run()
        single = [42]
        assert injector.permute(0, single) is single  # <2 items: no-op
        items = list(range(12))
        shuffled = injector.permute(1, items)
        assert shuffled is not items
        assert sorted(shuffled) == items
        # deterministic under the same plan seed
        other = FaultInjector(FaultPlan(seed=2, reorder_prob=1.0))
        other.begin_run()
        assert other.permute(1, list(range(12))) == shuffled

    def test_permute_noop_without_reorder(self):
        injector = FaultInjector(FaultPlan(crash_prob=0.5))
        injector.begin_run()
        items = [3, 1, 2]
        assert injector.permute(0, items) is items


class TestSuperstepCheckpoint:
    def test_capture_isolates_mutable_state(self):
        states = {1: {"in": True}, 2: {"in": False}}
        ck = SuperstepCheckpoint.capture(3, states, [1, 2])
        states[1]["in"] = False  # mutate after capture
        states[2] = {"in": True}
        active = ck.restore(states)
        assert active == [1, 2]
        assert states == {1: {"in": True}, 2: {"in": False}}

    def test_restore_drops_vertices_added_after_capture(self):
        states = {1: True}
        ck = SuperstepCheckpoint.capture(0, states, [1])
        states[9] = True
        ck.restore(states)
        assert 9 not in states

    def test_payload_roundtrip(self):
        states = {2: True, 1: False}
        ck = SuperstepCheckpoint.capture(5, states, [1, 2])
        payload = ck.to_payload()
        assert payload["format"] == "repro-mis-superstep-checkpoint"
        assert payload["version"] == 1
        back = SuperstepCheckpoint.from_payload(payload)
        assert back.superstep == 5
        assert back.states == states
        assert back.active == [1, 2]

    def test_payload_validation(self):
        with pytest.raises(CheckpointError, match="not a"):
            SuperstepCheckpoint.from_payload({"format": "something-else"})
        good = SuperstepCheckpoint.capture(0, {1: True}, [1]).to_payload()
        bad_version = dict(good, version=99)
        with pytest.raises(CheckpointError, match="version 99"):
            SuperstepCheckpoint.from_payload(bad_version)
        del good["states"]
        with pytest.raises(CheckpointError, match="malformed"):
            SuperstepCheckpoint.from_payload(good)


class TestScaleGRecovery:
    def test_crash_replay_matches_fault_free(self):
        graph = erdos_renyi(60, 180, seed=11)
        program = OIMISProgram(strategy=ActivationStrategy.ALL)
        reference = ScaleGEngine(_dgraph(graph.copy())).run(program)

        injector = FaultInjector(
            FaultPlan(crashes=(CrashSpec(superstep=0, worker=1, run=0),))
        )
        faulted = ScaleGEngine(_dgraph(graph.copy()), faults=injector).run(program)

        assert injector.stats.crashes == 1
        assert faulted.metrics.recovery_crashes == 1
        assert faulted.metrics.recovery_replayed_supersteps == 1
        assert faulted.metrics.recovery_resync_messages > 0  # guest rebuild
        assert (independent_set_from_states(faulted.states)
                == independent_set_from_states(reference.states))
        assert _logical(faulted.metrics) == _logical(reference.metrics)

    def test_drop_retries_charged_to_recovery(self):
        graph = erdos_renyi(40, 120, seed=12)
        program = OIMISProgram(strategy=ActivationStrategy.ALL)
        reference = ScaleGEngine(_dgraph(graph.copy())).run(program)

        injector = FaultInjector(FaultPlan(seed=1, drop_prob=0.3,
                                           duplicate_prob=0.3))
        faulted = ScaleGEngine(_dgraph(graph.copy()), faults=injector).run(program)

        assert injector.stats.drops > 0
        assert injector.stats.duplicates > 0
        assert faulted.metrics.recovery_sync_retries > 0
        assert faulted.metrics.recovery_sync_duplicates > 0
        assert faulted.metrics.recovery_backoff_s > 0
        assert _logical(faulted.metrics) == _logical(reference.metrics)

    def test_straggler_charges_wall_time_only(self):
        graph = erdos_renyi(40, 120, seed=13)
        program = OIMISProgram(strategy=ActivationStrategy.ALL)
        reference = ScaleGEngine(_dgraph(graph.copy())).run(program)
        injector = FaultInjector(
            FaultPlan(stragglers=(StragglerSpec(superstep=0, worker=0,
                                                delay_s=0.25),))
        )
        faulted = ScaleGEngine(_dgraph(graph.copy()), faults=injector).run(program)
        assert faulted.metrics.recovery_straggler_s == pytest.approx(0.25)
        assert faulted.metrics.wall_time_s >= 0.25
        assert _logical(faulted.metrics) == _logical(reference.metrics)

    def test_exhausted_retries_escalate(self):
        graph = erdos_renyi(40, 120, seed=14)
        program = OIMISProgram(strategy=ActivationStrategy.ALL)
        injector = FaultInjector(FaultPlan(seed=1, drop_prob=1.0),
                                 max_retries=0)
        engine = ScaleGEngine(_dgraph(graph.copy()), faults=injector)
        with pytest.raises(SyncRetryExhausted) as exc_info:
            engine.run(program)
        assert isinstance(exc_info.value, WorkerFailure)  # typed hierarchy

    def test_superstep_limit_restores_states(self):
        graph = erdos_renyi(40, 120, seed=15)
        dgraph = _dgraph(graph)
        program = OIMISProgram(strategy=ActivationStrategy.ALL)
        states = {u: program.initial_state(dgraph, u)
                  for u in graph.vertices()}
        original = dict(states)
        engine = ScaleGEngine(dgraph)
        with pytest.raises(SuperstepLimitExceeded):
            engine.run(program, states=states, max_supersteps=1)
        # no partially converged superstep leaks into the caller's states
        assert states == original


class TestPregelRecovery:
    def test_crash_replay_matches_fault_free(self):
        graph = erdos_renyi(60, 180, seed=21)
        program = DisMISPregelProgram()
        reference = PregelEngine(_dgraph(graph.copy())).run(program)

        injector = FaultInjector(
            FaultPlan(crashes=(CrashSpec(superstep=1, worker=0, run=0),))
        )
        faulted = PregelEngine(_dgraph(graph.copy()), faults=injector).run(program)

        assert injector.stats.crashes == 1
        assert faulted.metrics.recovery_crashes == 1
        assert faulted.metrics.recovery_replayed_supersteps == 1
        assert (program.contract_members(faulted.states)
                == program.contract_members(reference.states))
        assert _logical(faulted.metrics) == _logical(reference.metrics)

    def test_seeded_mixed_faults_match_fault_free(self):
        graph = erdos_renyi(50, 150, seed=22)
        program = DisMISPregelProgram()
        reference = PregelEngine(_dgraph(graph.copy())).run(program)
        injector = FaultInjector(FaultPlan(
            seed=4, crash_prob=0.05, drop_prob=0.02, duplicate_prob=0.02,
            reorder_prob=1.0,
        ))
        faulted = PregelEngine(_dgraph(graph.copy()), faults=injector).run(program)
        assert injector.stats.total > 0
        assert (program.contract_members(faulted.states)
                == program.contract_members(reference.states))
        assert _logical(faulted.metrics) == _logical(reference.metrics)

    def test_aggregates_survive_crash_replay(self):
        # DisMIS uses a SumAggregator; the aborted sweep's contributions
        # must not double-count after rollback-and-replay
        graph = erdos_renyi(50, 150, seed=23)
        program = DisMISPregelProgram()
        reference = PregelEngine(_dgraph(graph.copy())).run(program)
        injector = FaultInjector(
            FaultPlan(crashes=(CrashSpec(superstep=2, worker=1, run=0),))
        )
        faulted = PregelEngine(_dgraph(graph.copy()), faults=injector).run(program)
        assert faulted.aggregates == reference.aggregates

    def test_superstep_limit_restores_states(self):
        graph = erdos_renyi(40, 120, seed=24)
        dgraph = _dgraph(graph)
        program = DisMISPregelProgram()
        states = {u: program.initial_state(dgraph, u)
                  for u in graph.vertices()}
        original = {u: s for u, s in states.items()}
        engine = PregelEngine(dgraph)
        with pytest.raises(SuperstepLimitExceeded):
            engine.run(program, states=states, max_supersteps=1)
        assert states == original


class TestMaintainerUnderFaults:
    def _fixpoint_states(self, graph, workers=2):
        ref = DOIMISMaintainer(graph.copy(), num_workers=workers)
        return {u: ref.contains(u) for u in graph.vertices()}

    def test_maintenance_stream_with_faults_matches(self):
        graph = erdos_renyi(40, 120, seed=31)
        from repro.bench.workloads import delete_reinsert_workload

        ops = delete_reinsert_workload(graph, 8, seed=2)
        reference = DOIMISMaintainer(graph.copy(), num_workers=4)
        reference.apply_stream(ops, batch_size=4)

        injector = FaultInjector(FaultPlan(
            seed=9, crash_prob=0.05, drop_prob=0.02, duplicate_prob=0.05,
        ))
        faulted = DOIMISMaintainer(graph.copy(), num_workers=4,
                                   faults=injector)
        faulted.apply_stream(ops, batch_size=4)

        assert injector.stats.total > 0
        assert faulted.independent_set() == reference.independent_set()
        assert (_logical(faulted.update_metrics)
                == _logical(reference.update_metrics))
        faulted.verify()

    def test_failed_batch_rolls_back_graph_and_set(self):
        # P4 path: deleting (0,1) flips vertex 1 into the set and must sync
        graph = path_graph(4)
        states = self._fixpoint_states(graph)
        injector = FaultInjector(FaultPlan(seed=1, drop_prob=1.0),
                                 max_retries=0)
        maintainer = DOIMISMaintainer(
            graph.copy(), num_workers=2, resume_states=states,
            faults=injector,
        )
        before_set = maintainer.independent_set()
        before_edges = maintainer.graph.sorted_edges()
        with pytest.raises(SyncRetryExhausted):
            maintainer.delete_edge(0, 1)
        # graph, set, and counters exactly as before the failed batch
        assert maintainer.graph.sorted_edges() == before_edges
        assert maintainer.independent_set() == before_set
        assert maintainer.updates_applied == 0
        assert maintainer.batches_applied == 0
        maintainer.verify()

    def test_failed_batch_removes_implicitly_created_vertices(self):
        graph = path_graph(4)
        states = self._fixpoint_states(graph)
        injector = FaultInjector(FaultPlan(seed=1, drop_prob=1.0),
                                 max_retries=0)
        maintainer = DOIMISMaintainer(
            graph.copy(), num_workers=2, resume_states=states,
            faults=injector,
        )
        with pytest.raises(SyncRetryExhausted):
            maintainer.insert_edge(0, 99)  # 99 would be auto-created
        assert not maintainer.graph.has_vertex(99)
        assert not maintainer.contains(99)
        maintainer.verify()

    def test_empty_plan_leaves_maintainer_untouched(self):
        graph = erdos_renyi(30, 90, seed=33)
        reference = MISMaintainer(graph.copy(), num_workers=3)
        faulted = MISMaintainer(graph.copy(), num_workers=3,
                                faults=FaultPlan())
        assert faulted.independent_set() == reference.independent_set()
        assert (_logical(faulted.init_metrics)
                == _logical(reference.init_metrics))
        assert faulted.init_metrics.recovery_events == 0


class TestChaosHarness:
    def test_presets_cover_fault_kinds(self):
        from repro.faults.chaos import PLAN_PRESETS

        assert set(PLAN_PRESETS) == {
            "none", "crash", "drop", "duplicate", "straggler", "reorder",
            "composed", "worker-loss", "cascading-loss", "loss-under-stream",
            "corrupt-guest", "drain-under-stream", "elastic",
            "drain-crash-race",
        }

    def test_unknown_preset_rejected(self):
        from repro.faults.chaos import chaos_suite, plan_for

        with pytest.raises(WorkloadError, match="unknown chaos preset"):
            plan_for("nope", 0)
        with pytest.raises(WorkloadError, match="unknown chaos preset"):
            chaos_suite(presets=("nope",))

    def test_cases_hold_oracle_on_small_workload(self):
        from repro.faults.chaos import ChaosWorkload, reference_run, run_chaos_case

        workload = ChaosWorkload(tag="AM", k=6, batch_size=3, workload_seed=1)
        reference = reference_run(workload)
        for preset in ("none", "crash", "composed"):
            result = run_chaos_case(workload, preset, seed=1,
                                    reference=reference)
            assert result.ok, result.failures
            if preset == "none":
                assert result.injected_total == 0
                assert sum(result.recovery.values()) == 0
            if preset == "crash":
                assert result.injected["crashes"] > 0
