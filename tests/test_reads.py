"""Tests for the epoch-consistent read path (:mod:`repro.serve.reads`).

The contract under test: every published epoch is an immutable barrier
snapshot of a committed window, so any query answered at epoch ``e`` is
bit-identical to querying a maintainer restored to that window's
checkpoint — across local (dict/inline) and shared (process + csr)
backings, across crash-rollback-replay, and across drain/join
membership transitions.  Epochs are strictly monotonic, staleness is
bounded by admission control, and the shared path serves reads with
zero per-query pickling.
"""

from __future__ import annotations

import pickle

import pytest

np = pytest.importorskip("numpy")

from repro.core.maintainer import MISMaintainer
from repro.bench.workloads import delete_reinsert_workload
from repro.errors import QueryError, WorkloadError
from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi
from repro.serve import (
    AdaptiveWindowController,
    AdmissionConfig,
    IngestionService,
    QueryEngine,
    SnapshotRegistry,
    TraceConfig,
    WindowConfig,
    bursty_trace,
)

_HIGH_WATERMARK = 64


def _maintainer(tag="AM", **kw):
    return MISMaintainer(load_dataset(tag), num_workers=6, **kw)


def _service(tmp_path, name="wal", tag="AM", serve_reads=True, **kw):
    kw.setdefault("controller", AdaptiveWindowController(WindowConfig(
        min_window=4, max_window=32, initial_window=8,
    )))
    kw.setdefault("admission", AdmissionConfig(
        policy="block", high_watermark=_HIGH_WATERMARK, low_watermark=16,
    ))
    kw.setdefault("checkpoint_every", 0)
    return IngestionService(
        _maintainer(tag, **kw.pop("maintainer_kw", {})),
        str(tmp_path / name), serve_reads=serve_reads, **kw,
    )


def _snapshot_point(snapshot, vertex):
    """Point membership answered directly against a held snapshot."""
    row = snapshot.row_of(vertex)
    return bool(snapshot.in_[row]) if row is not None else False


# ---------------------------------------------------------------------------
# registry lifecycle
# ---------------------------------------------------------------------------
class TestSnapshotRegistry:
    def _registry(self):
        maintainer = _maintainer()
        return maintainer, SnapshotRegistry(maintainer)

    def test_publish_default_counter_and_monotonicity(self):
        _, registry = self._registry()
        assert registry.latest() is None
        first = registry.publish(watermark=0)
        second = registry.publish(watermark=5)
        assert (first.epoch, second.epoch) == (0, 1)
        assert registry.history == [(0, 0), (1, 5)]
        with pytest.raises(QueryError, match="strictly monotonic"):
            registry.publish(epoch=1, watermark=9)
        registry.close()

    def test_local_snapshot_matches_maintainer(self):
        maintainer, registry = self._registry()
        snapshot = registry.publish(watermark=0)
        assert snapshot.members() == sorted(maintainer.independent_set())
        assert snapshot.set_size == len(maintainer.independent_set())
        registry.close()

    def test_acquire_release_refcounting(self):
        _, registry = self._registry()
        with pytest.raises(QueryError, match="no epoch published"):
            registry.acquire()
        registry.publish(watermark=0)
        held = registry.acquire()
        assert held.refs == 2  # registry + reader
        registry.release(held)
        assert held.refs == 1  # the registry still holds its own
        registry.close()       # ... which close() drops
        with pytest.raises(QueryError, match="released more times"):
            registry.release(held)

    def test_superseded_epoch_survives_while_acquired(self):
        maintainer, registry = self._registry()
        registry.publish(watermark=0)
        held = registry.acquire()
        before = held.members()
        ops = delete_reinsert_workload(maintainer.graph, 10, seed=3)
        maintainer.apply_stream(ops, batch_size=5)
        registry.publish(watermark=20)
        assert held.members() == before  # the old epoch did not move
        assert registry.latest().epoch == 1
        registry.release(held)
        registry.close()

    def test_closed_registry_rejects_publish(self):
        _, registry = self._registry()
        registry.close()
        with pytest.raises(QueryError, match="closed"):
            registry.publish(watermark=0)

    def test_staleness_is_frontier_minus_watermark(self):
        maintainer = _maintainer()
        frontier = {"seq": 0}
        registry = SnapshotRegistry(
            maintainer, frontier_fn=lambda: frontier["seq"]
        )
        registry.publish(watermark=0)
        assert registry.staleness() == 0
        frontier["seq"] = 7
        assert registry.staleness() == 7
        registry.publish(watermark=7)
        assert registry.staleness() == 0
        registry.close()


# ---------------------------------------------------------------------------
# query semantics (local backing)
# ---------------------------------------------------------------------------
class TestQueryEngine:
    @pytest.fixture()
    def served(self):
        graph = erdos_renyi(60, 180, seed=17)
        maintainer = MISMaintainer(graph, num_workers=5)
        ops = delete_reinsert_workload(graph, 12, seed=17)
        maintainer.apply_stream(ops, batch_size=4)
        registry = SnapshotRegistry(maintainer)
        registry.publish(watermark=maintainer.updates_applied)
        yield maintainer, QueryEngine(registry)
        registry.close()

    def test_point_matches_maintainer(self, served):
        maintainer, engine = served
        members = set(maintainer.independent_set())
        for v in sorted(maintainer.graph.vertices()):
            answer = engine.point(v)
            assert answer["member"] == (v in members)
            assert answer["epoch"] == 0
        # unknown vertices are simply not in the set
        assert engine.point(10 ** 9)["member"] is False

    def test_batch_matches_point(self, served):
        maintainer, engine = served
        vertices = sorted(maintainer.graph.vertices())[:40] + [10 ** 9]
        batch = engine.batch(vertices)
        assert batch["members"] == [
            engine.point(v)["member"] for v in vertices
        ]
        assert engine.batch([])["members"] == []

    def test_neighborhood_matches_bfs_reference(self, served):
        maintainer, engine = served
        members = set(maintainer.independent_set())
        graph = maintainer.graph
        start = sorted(graph.vertices())[0]
        for hops in (0, 1, 2):
            frontier, seen = {start}, {start}
            for _ in range(hops):
                frontier = {
                    w for v in frontier for w in graph.neighbors(v)
                } - seen
                seen |= frontier
            expected = sorted(seen & members)
            answer = engine.neighborhood(start, hops=hops)
            assert answer["members"] == expected

    def test_neighborhood_validation(self, served):
        _, engine = served
        with pytest.raises(QueryError, match="not in the graph"):
            engine.neighborhood(10 ** 9)
        with pytest.raises(QueryError, match="hops"):
            engine.neighborhood(0, hops=-1)

    def test_why_not_certificates_are_checkable(self, served):
        maintainer, engine = served
        members = set(maintainer.independent_set())
        graph = maintainer.graph

        def key(v):
            return (graph.degree(v), v)

        for v in sorted(graph.vertices()):
            cert = engine.why_not(v)
            if v in members:
                assert cert["member"] and cert["blocker"] is None
            else:
                blocker = cert["blocker"]
                # at a fixpoint every non-member has a blocking witness:
                # an adjacent member ranked ≺-below it
                assert blocker in graph.neighbors(v)
                assert blocker in members
                assert key(blocker) < key(v)
        with pytest.raises(QueryError, match="not in the graph"):
            engine.why_not(10 ** 9)

    def test_counters_and_stats(self, served):
        _, engine = served
        engine.point(0)
        engine.batch([0, 1, 2])
        engine.why_not(0)
        logical = engine.logical_stats()
        assert logical["point_queries"] == 1
        assert logical["batch_queries"] == 1
        assert logical["batch_vertices"] == 3
        assert logical["max_batch_size"] == 3
        assert logical["why_not_queries"] == 1
        assert logical["reads_served"] == 5
        stats = engine.read_stats()
        assert stats["epoch"] == 0
        for tag in ("p50", "p95", "p99"):
            assert stats[f"latency_{tag}_ms"] >= 0.0


# ---------------------------------------------------------------------------
# service wiring: epochs at commits, recovery, staleness, membership
# ---------------------------------------------------------------------------
class TestServiceReadPath:
    def test_initial_epoch_published_at_birth(self, tmp_path):
        service = _service(tmp_path)
        snapshot = service.reads.latest()
        assert (snapshot.epoch, snapshot.watermark) == (0, 0)
        assert (snapshot.members()
                == sorted(service.maintainer.independent_set()))
        service.close()

    def test_read_path_disabled_raises(self, tmp_path):
        service = _service(tmp_path, serve_reads=False)
        assert service.reads is None
        with pytest.raises(WorkloadError, match="serve_reads=True"):
            service.query_point(0)
        service.close()

    def test_every_epoch_bit_identical_to_restored_checkpoint(
        self, tmp_path
    ):
        """The tentpole oracle: hold every published epoch, checkpoint the
        maintainer at each commit, and post-hoc compare each held snapshot
        (members + point queries) against a maintainer restored to that
        epoch's checkpoint."""
        service = _service(tmp_path)
        ops, timestamps = bursty_trace(
            load_dataset("AM"), TraceConfig(num_ops=160, seed=7))
        held = {}  # epoch -> (snapshot, checkpoint path)
        sample = sorted(service.maintainer.graph.vertices())[:25]

        def capture():
            snapshot = service.reads.latest()
            if snapshot.epoch not in held:
                path = tmp_path / f"epoch-{snapshot.epoch}.json"
                service.maintainer.save(str(path))
                held[snapshot.epoch] = (service.reads.acquire(), path)

        capture()
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
            capture()
        service.drain()
        capture()
        assert len(held) >= 3

        epochs = [e for e, _ in service.reads.history]
        assert epochs == sorted(set(epochs))  # strictly monotonic

        for epoch, (snapshot, path) in sorted(held.items()):
            restored = MISMaintainer.load(str(path))
            members = set(restored.independent_set())
            assert snapshot.members() == sorted(members), (
                f"epoch {epoch} diverged from its checkpoint"
            )
            for v in sample:
                assert _snapshot_point(snapshot, v) == (v in members)
            service.reads.release(snapshot)
        service.close()

    def test_staleness_bounded_by_admission_control(self, tmp_path):
        service = _service(tmp_path)
        ops, timestamps = bursty_trace(
            load_dataset("AM"), TraceConfig(num_ops=200, seed=11))
        vertex = sorted(service.maintainer.graph.vertices())[0]
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
            answer = service.query_point(vertex)
            # the answering epoch is always the last committed window
            assert answer["watermark"] == service.applied_watermark
            # the block policy drains above the high watermark, so no
            # read can ever be more than that many events stale
            assert service.reads.staleness() <= _HIGH_WATERMARK
        service.drain()
        stats = service.query_engine.logical_stats()
        assert 0 < stats["staleness_max"] <= _HIGH_WATERMARK
        service.close()

    def test_stats_summary_reports_committed_reads(self, tmp_path):
        service = _service(tmp_path)
        ops, timestamps = bursty_trace(
            load_dataset("AM"), TraceConfig(num_ops=80, seed=3))
        vertex = sorted(service.maintainer.graph.vertices())[0]
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
            service.query_point(vertex)
        service.drain()
        service.close()
        summary = service.stats_summary()
        reads = summary["reads"]
        assert reads["reads_served"] == 80
        assert reads["watermark"] == summary["applied_watermark"]
        assert reads["epochs_published"] == len(service.reads.history)

    def test_crash_recovery_restores_read_watermark(self, tmp_path):
        """The read watermark survives WAL replay: a recovered service
        serves from an epoch equal to its replayed commit watermark, and
        queries keep matching the maintainer."""
        ops, timestamps = bursty_trace(
            load_dataset("AM"), TraceConfig(num_ops=160, seed=7))
        crashed = _service(tmp_path, name="crashed")
        cut = None
        for i, (op, ts) in enumerate(zip(ops, timestamps)):
            crashed.submit(op, ts)
            if crashed.windows_committed >= 3 and crashed.pending >= 2:
                crashed.abandon()
                cut = i + 1
                break
        assert cut is not None

        recovered = IngestionService.recover(
            crashed.wal_dir, serve_reads=True,
            controller=AdaptiveWindowController(WindowConfig(
                min_window=4, max_window=32, initial_window=8,
            )),
            checkpoint_every=0,
        )
        snapshot = recovered.reads.latest()
        assert snapshot.watermark == recovered.applied_watermark > 0
        assert (snapshot.members()
                == sorted(recovered.maintainer.independent_set()))

        before = recovered.reads.latest().epoch
        for op, ts in zip(ops[cut:], timestamps[cut:]):
            recovered.submit(op, ts)
        recovered.drain()
        assert recovered.reads.latest().epoch > before
        epochs = [e for e, _ in recovered.reads.history]
        assert epochs == sorted(set(epochs))
        members = set(recovered.maintainer.independent_set())
        for v in sorted(recovered.maintainer.graph.vertices())[:25]:
            assert recovered.query_point(v)["member"] == (v in members)
        recovered.close()

    def test_reads_consistent_across_drain_join_transitions(self, tmp_path):
        from repro.faults import (
            DrainSpec,
            FaultInjector,
            FaultPlan,
            JoinSpec,
        )

        plan = FaultPlan(
            seed=0,
            joins=(JoinSpec(superstep=0, worker=6, run=2),),
            drains=(DrainSpec(superstep=0, worker=2, run=4),),
        )
        service = _service(
            tmp_path, maintainer_kw={"faults": FaultInjector(plan)},
        )
        ops, timestamps = bursty_trace(
            load_dataset("AM"), TraceConfig(num_ops=120, seed=5))
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
        service.drain()
        failover = service.maintainer.failover
        assert failover is not None and failover.transitions
        epochs = [e for e, _ in service.reads.history]
        assert epochs == sorted(set(epochs))
        members = set(service.maintainer.independent_set())
        for v in sorted(service.maintainer.graph.vertices())[:25]:
            assert service.query_point(v)["member"] == (v in members)
        snapshot = service.reads.latest()
        assert snapshot.watermark == service.applied_watermark
        service.close()


# ---------------------------------------------------------------------------
# shared-memory backing: zero-copy, zero-pickle, worker offload
# ---------------------------------------------------------------------------
class TestSharedReadPath:
    @pytest.fixture()
    def shared_service(self, tmp_path):
        from repro.runtime import ParallelRuntime

        runtime = ParallelRuntime(procs=2, start_method="fork")
        service = _service(
            tmp_path,
            maintainer_kw={"runtime": runtime, "representation": "csr"},
        )
        yield service
        service.close()
        runtime.close()

    def test_snapshots_are_shared_and_queries_match(self, shared_service):
        service = shared_service
        assert service.reads.latest().shared
        ops, timestamps = bursty_trace(
            load_dataset("AM"), TraceConfig(num_ops=80, seed=7))
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
        service.drain()
        snapshot = service.reads.latest()
        assert snapshot.shared and snapshot.segment is not None
        members = set(service.maintainer.independent_set())
        assert snapshot.members() == sorted(members)
        for v in sorted(service.maintainer.graph.vertices())[:25]:
            assert service.query_point(v)["member"] == (v in members)

    def test_pinned_epoch_immutable_after_republish(self, shared_service):
        service = shared_service
        held = service.reads.acquire()
        segment = held.segment
        frozen = np.array(held.in_)  # private copy to compare against
        ops, timestamps = bursty_trace(
            load_dataset("AM"), TraceConfig(num_ops=60, seed=9))
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
        service.drain()
        fresh = service.reads.latest()
        assert fresh.epoch > held.epoch
        assert fresh.segment != segment  # writer moved to a new segment
        assert np.array_equal(held.in_, frozen)  # held epoch unchanged
        service.reads.release(held)

    def test_zero_pickling_on_in_process_reads(self, shared_service,
                                               monkeypatch):
        service = shared_service
        ops, timestamps = bursty_trace(
            load_dataset("AM"), TraceConfig(num_ops=40, seed=3))
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
        service.drain()
        vertices = sorted(service.maintainer.graph.vertices())
        counter = {"dumps": 0}
        real_dumps = pickle.dumps

        def counting_dumps(*args, **kwargs):
            counter["dumps"] += 1
            return real_dumps(*args, **kwargs)

        monkeypatch.setattr(pickle, "dumps", counting_dumps)
        for v in vertices[:100]:
            service.query_point(v)
        service.query_batch(vertices[:200])
        service.query_why_not(vertices[0])
        assert counter["dumps"] == 0  # pure numpy over the mapped segment

    def test_worker_offload_matches_in_process(self, shared_service):
        service = shared_service
        ops, timestamps = bursty_trace(
            load_dataset("AM"), TraceConfig(num_ops=40, seed=5))
        for op, ts in zip(ops, timestamps):
            service.submit(op, ts)
        service.drain()
        vertices = sorted(service.maintainer.graph.vertices())[:300]
        inproc = service.query_batch(vertices)
        offloaded = service.query_batch(vertices, offload=True)
        assert offloaded["members"] == inproc["members"]
        assert offloaded["epoch"] == inproc["epoch"]
        runtime = service.maintainer.runtime
        assert runtime.reads_dispatched >= 1
